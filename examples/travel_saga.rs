//! Optimistic travel bookings with compensation (COMPE, §4).
//!
//! ```text
//! cargo run --example travel_saga
//! ```
//!
//! A travel agency books seats and rooms *optimistically*: every replica
//! applies the reservation MSet before the itinerary globally commits
//! (customers see seats held immediately). If payment later fails, the
//! coordinator broadcasts an abort and each replica compensates —
//! directly when the intervening bookings commute, or by rolling back
//! and replaying the log suffix when they don't.

use esr::core::{EpsilonSpec, ObjectId, ObjectOp, Operation, SiteId};
use esr::replica::cluster::{ClusterConfig, Method, SimCluster};
use esr::runtime::{Cluster, RtMethod};
use esr::sim::time::VirtualTime;

const FLIGHT_SEATS: ObjectId = ObjectId(0);
const HOTEL_ROOMS: ObjectId = ObjectId(1);

fn main() {
    println!("== simulated cluster: random payment failures ==");
    // 30% of itineraries fail payment after a 20ms authorization delay.
    let cfg = ClusterConfig::new(Method::Compe)
        .with_sites(3)
        .with_seed(31)
        .with_abort_prob(0.3);
    let mut agency = SimCluster::new(cfg);

    println!("booking 30 itineraries (1 seat + 1 room each)…");
    for i in 0..30u64 {
        agency.advance_to(VirtualTime::from_millis(i * 3));
        agency.submit_update(
            SiteId(i % 3),
            vec![
                ObjectOp::new(FLIGHT_SEATS, Operation::Decr(1)),
                ObjectOp::new(HOTEL_ROOMS, Operation::Decr(1)),
            ],
        );
    }

    // A capacity dashboard reads mid-flight: the charge counts the
    // bookings still at risk of compensation (§4.2's conservative bound).
    let dash = agency.try_query(
        SiteId(1),
        &[FLIGHT_SEATS, HOTEL_ROOMS],
        EpsilonSpec::UNBOUNDED,
    );
    println!(
        "dashboard: seats={} rooms={} (bookings still at risk: {})",
        dash.values[0], dash.values[1], dash.charged
    );

    agency.run_until_quiescent();
    assert!(agency.converged());
    assert!(agency.matches_oracle());
    let s = agency.stats();
    println!(
        "payments failed: {} — compensated via fast path {} times, suffix rollback {} times",
        s.aborts, s.fast_compensations, s.suffix_rollbacks
    );
    let snap = agency.snapshot_of(SiteId(2));
    println!(
        "final inventory deltas: seats={} rooms={} (only paid bookings remain)",
        snap[&FLIGHT_SEATS], snap[&HOTEL_ROOMS]
    );
    assert_eq!(
        snap[&FLIGHT_SEATS], snap[&HOTEL_ROOMS],
        "every surviving itinerary took one of each"
    );

    println!();
    println!("== thread runtime: the client drives commit/abort ==");
    let rt = Cluster::new(RtMethod::Compe, 3);
    let holiday = rt.submit_update(
        SiteId(0),
        vec![
            ObjectOp::new(FLIGHT_SEATS, Operation::Decr(2)),
            ObjectOp::new(HOTEL_ROOMS, Operation::Decr(1)),
        ],
    );
    let business = rt.submit_update(
        SiteId(1),
        vec![ObjectOp::new(FLIGHT_SEATS, Operation::Decr(1))],
    );
    // Payment clears for the holiday, bounces for the business trip.
    rt.commit(holiday);
    rt.abort(business);
    rt.quiesce();
    assert!(rt.converged());
    let seats = rt.snapshot_of(SiteId(2))[&FLIGHT_SEATS].clone();
    let rooms = rt.snapshot_of(SiteId(2))[&HOTEL_ROOMS].clone();
    println!("after commit(holiday) + abort(business): seats={seats} rooms={rooms}");
    assert_eq!(seats.as_int(), Some(-2), "only the holiday's 2 seats held");
    assert_eq!(rooms.as_int(), Some(-1));
    println!("the aborted booking left no trace on any replica");
}
