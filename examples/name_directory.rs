//! A replicated name directory with RITU — the Clearinghouse/Grapevine
//! scenario of the paper's related work (§5.4).
//!
//! ```text
//! cargo run --example name_directory
//! ```
//!
//! Directory bindings (name → address) are *read-independent* updates:
//! rebinding a name does not depend on the previous address, so RITU's
//! timestamped blind writes propagate in any order and every replica
//! converges to the newest binding. The multiversion variant adds VTNC
//! visibility: a resolver can insist on a serializable (stable) answer
//! or spend inconsistency budget on a fresher one.

use esr::core::{EpsilonSpec, ObjectId, SiteId, Value};
use esr::replica::cluster::{ClusterConfig, Method, SimCluster};
use esr::sim::time::VirtualTime;

// Names are objects; addresses are text values.
const ALICE: ObjectId = ObjectId(0);
const BOB: ObjectId = ObjectId(1);

fn main() {
    println!("== RITU overwrite mode: last-writer-wins directory ==");
    let cfg = ClusterConfig::new(Method::RituOverwrite)
        .with_sites(3)
        .with_seed(11);
    let mut dir = SimCluster::new(cfg);

    // Administrators at different sites rebind names concurrently; the
    // global version clock arbitrates.
    dir.advance_to(VirtualTime::from_millis(1));
    dir.submit_blind_write(SiteId(0), ALICE, Value::from("alice@lab-a"));
    dir.advance_to(VirtualTime::from_millis(2));
    dir.submit_blind_write(SiteId(2), BOB, Value::from("bob@mailhub"));
    dir.advance_to(VirtualTime::from_millis(3));
    dir.submit_blind_write(SiteId(1), ALICE, Value::from("alice@workstation-7"));

    dir.run_until_quiescent();
    assert!(dir.converged());
    let site0 = dir.snapshot_of(SiteId(0));
    println!("  alice -> {}", site0[&ALICE]);
    println!("  bob   -> {}", site0[&BOB]);
    assert_eq!(site0[&ALICE], Value::from("alice@workstation-7"));

    println!();
    println!("== RITU multiversion mode: VTNC-stable vs fresh reads ==");
    let cfg = ClusterConfig::new(Method::RituMv).with_sites(3).with_seed(12);
    let mut dir = SimCluster::new(cfg);

    dir.advance_to(VirtualTime::from_millis(1));
    dir.submit_blind_write(SiteId(0), ALICE, Value::from("alice@lab-a"));
    // Let the first binding fully propagate and certify.
    dir.run_until_quiescent();

    // A rebind is in flight: replicas hold two versions for a while.
    dir.advance_to(VirtualTime::from_millis(100));
    dir.submit_blind_write(SiteId(1), ALICE, Value::from("alice@workstation-7"));
    // Process a couple of events so the new version reaches some
    // replicas but is not yet certified below the VTNC.
    for _ in 0..2 {
        dir.step();
    }

    // A strict resolver gets the stable (certified) binding.
    let stable = dir.try_query(SiteId(1), &[ALICE], EpsilonSpec::STRICT);
    println!(
        "  strict resolve   : {} (charged {})",
        stable.values[0], stable.charged
    );
    assert_eq!(stable.charged, 0, "strict reads never import inconsistency");

    // A fresh resolver spends one unit to read past the VTNC.
    let fresh = dir.try_query(SiteId(1), &[ALICE], EpsilonSpec::bounded(1));
    println!(
        "  fresh resolve    : {} (charged {})",
        fresh.values[0], fresh.charged
    );

    dir.run_until_quiescent();
    assert!(dir.converged());
    let final_state = dir.snapshot_of(SiteId(2));
    println!("  after quiescence : {}", final_state[&ALICE]);
    assert_eq!(final_state[&ALICE], Value::from("alice@workstation-7"));

    // At quiescence the VTNC has caught up: strict reads see the newest
    // binding with zero charge.
    let done = dir.try_query(SiteId(0), &[ALICE], EpsilonSpec::STRICT);
    assert_eq!(done.values[0], Value::from("alice@workstation-7"));
    assert_eq!(done.charged, 0);
    println!("  strict resolve now returns the new binding at zero cost");
}
