//! A replicated bank ledger on the **thread runtime** (real concurrency).
//!
//! ```text
//! cargo run --example bank_ledger
//! ```
//!
//! The scenario the paper's introduction motivates: branches of a bank
//! keep replicas of account balances. Deposits and withdrawals are
//! commutative (`Inc`/`Dec`), so COMMU lets every branch accept them
//! locally and propagate asynchronously — no commit protocol, full
//! autonomy — while an auditor chooses how much inconsistency each
//! balance inquiry may see.

use std::sync::Arc;
use std::thread;

use esr::core::{EpsilonSpec, ObjectId, ObjectOp, Operation, SiteId};
use esr::runtime::{Cluster, RtMethod};

const BRANCHES: usize = 4;
const ACCOUNTS: u64 = 8;
const TELLERS: u64 = 8;
const TXNS_PER_TELLER: u64 = 50;

fn main() {
    let cluster = Arc::new(Cluster::new(RtMethod::Commu, BRANCHES));

    // Tellers at every branch hammer the ledger concurrently: each
    // transaction moves money between two accounts (a deposit and a
    // withdrawal — both commutative).
    println!("{TELLERS} tellers × {TXNS_PER_TELLER} transfers across {BRANCHES} branches…");
    let mut handles = Vec::new();
    for teller in 0..TELLERS {
        let cluster = Arc::clone(&cluster);
        handles.push(thread::spawn(move || {
            let branch = SiteId(teller % BRANCHES as u64);
            for i in 0..TXNS_PER_TELLER {
                let from = ObjectId((teller + i) % ACCOUNTS);
                let to = ObjectId((teller + i + 1) % ACCOUNTS);
                cluster.submit_update(
                    branch,
                    vec![
                        ObjectOp::new(from, Operation::Decr(10)),
                        ObjectOp::new(to, Operation::Incr(10)),
                    ],
                );
            }
        }));
    }

    // Meanwhile the auditor polls a balance with a small inconsistency
    // budget: answers come back immediately whenever the visible
    // in-flight inconsistency fits within 3 units.
    let auditor = {
        let cluster = Arc::clone(&cluster);
        thread::spawn(move || {
            let mut admitted = 0;
            let mut rejected = 0;
            for _ in 0..200 {
                let out = cluster.query(SiteId(0), &[ObjectId(0)], EpsilonSpec::bounded(3));
                if out.admitted {
                    admitted += 1;
                } else {
                    rejected += 1;
                }
                thread::yield_now();
            }
            (admitted, rejected)
        })
    };

    for h in handles {
        h.join().expect("teller finished");
    }
    let (admitted, rejected) = auditor.join().expect("auditor finished");
    println!("auditor(eps=3): {admitted} answers served live, {rejected} deferred");

    // Drain the replication streams, then run the strict end-of-day audit.
    cluster.quiesce();
    assert!(cluster.converged(), "all branches must agree at quiescence");

    let accounts: Vec<ObjectId> = (0..ACCOUNTS).map(ObjectId).collect();
    let audit = cluster.query_blocking(SiteId(0), &accounts, EpsilonSpec::STRICT);
    let total: i64 = audit.values.iter().filter_map(|v| v.as_int()).sum();
    println!("end-of-day strict audit (eps=0):");
    for (a, v) in accounts.iter().zip(&audit.values) {
        println!("  account {a}: {v}");
    }
    println!("  ledger total: {total}");
    assert_eq!(total, 0, "transfers conserve money");
    println!("invariant holds: transfers conserved the total balance");
}
