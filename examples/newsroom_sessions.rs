//! The high-level ET interface: sessions, budgets, and propagation
//! specifications (§2.1's "users need not explicitly deal with the
//! theoretical conditions" + §5.1's propagation classes).
//!
//! ```text
//! cargo run --example newsroom_sessions
//! ```
//!
//! A newsroom tracks page-view counters. Three producers with different
//! propagation contracts feed the same replicated counters:
//!
//! * the live site uses **immediate** propagation;
//! * the mobile app batches under a **deadline** (deferred);
//! * the archive crawler reports **periodically** (independent).
//!
//! Editors read through the fluent query builder at whatever consistency
//! they need.

use esr::core::{ObjectId, ObjectOp, Operation, SiteId};
use esr::replica::api::Session;
use esr::replica::cluster::{ClusterConfig, Method, SimCluster};
use esr::replica::etspec::{PropagationClass, SpecPipe};
use esr::sim::time::{Duration, VirtualTime};

const FRONT_PAGE: ObjectId = ObjectId(0);
const ARTICLE: ObjectId = ObjectId(1);

fn main() {
    let cluster = SimCluster::new(ClusterConfig::new(Method::Commu).with_sites(3).with_seed(17));
    let mut session = Session::new(cluster);

    let mut live = SpecPipe::new(PropagationClass::Immediate);
    let mut mobile = SpecPipe::new(PropagationClass::Deferred {
        deadline: Duration::from_millis(50),
    });
    let mut crawler = SpecPipe::new(PropagationClass::Independent {
        period: Duration::from_millis(200),
    });

    // One simulated second of traffic.
    for ms in (0..1000u64).step_by(10) {
        session.cluster_mut().advance_to(VirtualTime::from_millis(ms));
        let hit = |obj| vec![ObjectOp::new(obj, Operation::Incr(1))];
        // Live hits go out at once.
        live.offer(session.cluster_mut(), SiteId(0), hit(FRONT_PAGE));
        // Mobile hits buffer up to 50 ms.
        mobile.offer(session.cluster_mut(), SiteId(1), hit(ARTICLE));
        // The crawler reports both counters, flushed every 200 ms.
        if ms % 50 == 0 {
            crawler.offer(session.cluster_mut(), SiteId(2), hit(FRONT_PAGE));
        }
        mobile.poll(session.cluster_mut());
        crawler.poll(session.cluster_mut());
    }
    println!(
        "submitted: live={}, mobile={} (buffered {}), crawler={} (buffered {})",
        live.submitted(),
        mobile.submitted(),
        mobile.buffered(),
        crawler.submitted(),
        crawler.buffered()
    );

    // A live dashboard reads with a generous budget…
    let dash = session
        .query(SiteId(2))
        .read(FRONT_PAGE)
        .read(ARTICLE)
        .epsilon(50)
        .execute();
    println!(
        "dashboard (eps=50): front={} article={} admitted={} charged={}",
        dash.values.first().cloned().unwrap_or_default(),
        dash.values.get(1).cloned().unwrap_or_default(),
        dash.admitted,
        dash.charged
    );

    // End of day: flush the batching pipes and run the strict audit.
    mobile.flush(session.cluster_mut());
    crawler.flush(session.cluster_mut());
    assert!(session.settle(), "replicas converge at quiescence");
    let audit = session
        .query(SiteId(0))
        .read(FRONT_PAGE)
        .read(ARTICLE)
        .strict()
        .wait();
    println!(
        "strict audit: front={} article={} (charged {})",
        audit.values[0], audit.values[1], audit.charged
    );
    assert_eq!(audit.charged, 0);
    assert_eq!(audit.values[0].as_int(), Some(100 + 20), "live + crawler hits");
    assert_eq!(audit.values[1].as_int(), Some(100), "mobile hits");
    println!("all 220 page views accounted for, every replica agrees");
}
