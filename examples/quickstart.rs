//! Quickstart: asynchronous replica control with bounded inconsistency.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a 4-replica cluster running COMMU (commutative operations),
//! submits update epsilon-transactions asynchronously, then shows the
//! three consistency levels a query can buy:
//!
//! * unbounded epsilon — read immediately, importing visible
//!   inconsistency;
//! * a small budget — read immediately *if* the visible inconsistency
//!   fits, otherwise fall back;
//! * epsilon 0 (strict) — a one-copy-serializable read.

use esr::core::{EpsilonSpec, ObjectId, ObjectOp, Operation, SiteId};
use esr::replica::cluster::{ClusterConfig, Method, SimCluster};
use esr::sim::time::VirtualTime;

fn main() {
    // A 4-site cluster, LAN-ish links, deterministic seed.
    let config = ClusterConfig::new(Method::Commu).with_sites(4).with_seed(7);
    let mut cluster = SimCluster::new(config);
    let account = ObjectId(0);

    // Clients at different sites deposit asynchronously: each update is
    // applied locally and propagated to the other replicas in MSets.
    println!("submitting 10 deposits of 100 from rotating sites…");
    for i in 0..10u64 {
        cluster.advance_to(VirtualTime::from_millis(i * 2));
        cluster.submit_update(
            SiteId(i % 4),
            vec![ObjectOp::new(account, Operation::Incr(100))],
        );
    }

    // An impatient reader with an unbounded budget reads *now*, at
    // whatever state site 3 has, and is told how much inconsistency the
    // answer may carry.
    let loose = cluster.try_query(SiteId(3), &[account], EpsilonSpec::UNBOUNDED);
    println!(
        "unbounded query  @t={}: balance={} (inconsistency imported: {})",
        cluster.now(),
        loose.values[0],
        loose.charged
    );

    // A bounded reader tolerates at most 2 units; the divergence control
    // admits it only if the visible inconsistency fits.
    let bounded = cluster.try_query(SiteId(3), &[account], EpsilonSpec::bounded(2));
    println!(
        "bounded(2) query @t={}: admitted={} (would import {})",
        cluster.now(),
        bounded.admitted,
        if bounded.admitted { bounded.charged } else { 0 },
    );

    // A strict reader (epsilon = 0) waits for the synchronous fallback:
    // retry until the replica state is provably consistent.
    let strict = cluster.query_with_retry(SiteId(3), &[account], EpsilonSpec::STRICT);
    println!(
        "strict query     @t={}: balance={} (charged {}, retries {})",
        strict.served_at, strict.values[0], strict.charged, strict.retries
    );

    // Quiescence: every MSet processed everywhere. ESR guarantees all
    // replicas have converged to the one-copy-serializable state.
    let t = cluster.run_until_quiescent();
    assert!(cluster.converged());
    assert!(cluster.matches_oracle());
    println!(
        "quiescent at {}: all 4 replicas agree, balance = {}",
        t,
        cluster.snapshot_of(SiteId(0))[&account]
    );
    println!(
        "network: {} messages sent, {} delivered",
        cluster.net_stats().sent,
        cluster.net_stats().delivered
    );
}
