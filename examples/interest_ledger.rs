//! An interest-bearing ledger on ORDUP — when update order *matters*.
//!
//! ```text
//! cargo run --example interest_ledger
//! ```
//!
//! Deposits (`Inc`) and interest postings (`Mul`) do **not** commute —
//! the paper's own example: `Inc(x,10)·Mul(x,2) ≠ Mul(x,2)·Inc(x,10)`.
//! COMMU cannot replicate this workload, but ORDUP can: the sequencer
//! assigns every update a global position and each replica applies
//! updates in exactly that order, no matter how the network scrambles
//! delivery. Queries still run at any replica, any time, with a chosen
//! inconsistency budget.

use esr::core::{EpsilonSpec, ObjectId, ObjectOp, SiteId};
use esr::net::latency::LatencyModel;
use esr::net::topology::LinkConfig;
use esr::replica::cluster::{ClusterConfig, Method, SimCluster};
use esr::sim::time::{Duration, VirtualTime};

const SAVINGS: ObjectId = ObjectId(0);

fn main() {
    // A deliberately nasty network: high jitter, 20% loss, duplicates.
    let link = LinkConfig {
        latency: LatencyModel::Uniform(Duration::from_millis(1), Duration::from_millis(80)),
        drop_prob: 0.2,
        duplicate_prob: 0.1,
        bandwidth: None,
    };
    let cfg = ClusterConfig::new(Method::OrdupSeq)
        .with_sites(4)
        .with_link(link)
        .with_seed(23);
    let mut ledger = SimCluster::new(cfg);

    // A year of activity: monthly deposits interleaved with quarterly
    // interest postings, submitted from whichever branch is handy.
    println!("posting 12 deposits of 1000 and 4 interest postings (x2)…");
    let mut t = VirtualTime::ZERO;
    for month in 0..12u64 {
        t += Duration::from_millis(10);
        ledger.advance_to(t);
        ledger.submit_update(
            SiteId(month % 4),
            vec![ObjectOp::new(SAVINGS, Operation::Incr(1000))],
        );
        if month % 3 == 2 {
            t += Duration::from_millis(5);
            ledger.advance_to(t);
            ledger.submit_update(
                SiteId((month + 1) % 4),
                vec![ObjectOp::new(SAVINGS, Operation::MulBy(2))],
            );
        }
    }

    // Mid-flight, a dashboard reads with a generous budget…
    let dash = ledger.try_query(SiteId(2), &[SAVINGS], EpsilonSpec::UNBOUNDED);
    println!(
        "dashboard read @{}: balance={} (imported inconsistency: {})",
        ledger.now(),
        dash.values[0],
        dash.charged
    );

    // …while the regulator demands a strict answer and takes a global
    // order token; the query is served once the replica has applied
    // every update sequenced before it.
    let audit = ledger.query_with_retry(SiteId(2), &[SAVINGS], EpsilonSpec::STRICT);
    println!(
        "regulator read @{}: balance={} (retries while catching up: {})",
        audit.served_at, audit.values[0], audit.retries
    );

    // Quiescence: despite loss, duplication, and reordering, all four
    // replicas applied the non-commutative stream in the same order.
    ledger.run_until_quiescent();
    assert!(ledger.converged(), "ORDUP replicas must agree");
    assert!(ledger.matches_oracle(), "and match the serial oracle");
    let final_balance = ledger.snapshot_of(SiteId(0))[&SAVINGS].clone();
    println!("final balance on every replica: {final_balance}");
    println!(
        "network effort: {} sends, {} dropped attempts, {} duplicates",
        ledger.net_stats().sent,
        ledger.net_stats().dropped_attempts,
        ledger.net_stats().duplicated
    );

    // The same stream under COMMU would diverge — demonstrate the
    // non-commutativity on a single pair via the operation algebra.
    use esr::core::{Operation, Value};
    let inc = Operation::Incr(1000);
    let mul = Operation::MulBy(2);
    let a = mul.apply(SAVINGS, &inc.apply(SAVINGS, &Value::ZERO).unwrap()).unwrap();
    let b = inc.apply(SAVINGS, &mul.apply(SAVINGS, &Value::ZERO).unwrap()).unwrap();
    assert_ne!(a, b);
    assert!(!inc.commutes_with(&mul));
    println!("(sanity: Inc·Mul = {a} but Mul·Inc = {b} — order matters, ORDUP required)");
}
