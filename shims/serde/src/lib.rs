//! Offline shim for `serde`.
//!
//! The workspace uses serde purely as derive-site decoration (no code
//! serializes through it yet — the wire formats are hand-rolled in
//! `esr-storage`/tests). `Serialize`/`Deserialize` are marker traits
//! blanket-implemented for every type, and the re-exported derives
//! expand to nothing, so existing `#[derive(Serialize, Deserialize)]`
//! sites compile unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use super::DeserializeOwned;
}

pub mod ser {}
