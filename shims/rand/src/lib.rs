//! Offline shim for `rand` 0.9.
//!
//! Provides `rngs::StdRng` plus the `Rng`/`SeedableRng` traits with the
//! method subset this workspace uses (`random_range`, `random_bool`,
//! `seed_from_u64`). The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid enough for the simulator's
//! distribution sanity tests, deterministic per seed, and obviously not
//! cryptographic (neither is the simulator's use of it).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform sample over all values of a primitive type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types sampled uniformly over their whole domain by [`Rng::random`].
pub trait Standard {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

/// Map a `u64` into `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform sampling over integer ranges by rejection on the widened
/// span, avoiding modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span == u64::MAX {
        // Can't represent span+1; a raw draw is within one of uniform.
        return rng.next_u64();
    }
    let bound = span.wrapping_add(1);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64 - 1;
                let off = if span == 0 { 0 } else { uniform_u64(rng, span) };
                ((self.start as $wide).wrapping_add(off as $wide)) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let off = if span == 0 { 0 } else { uniform_u64(rng, span) };
                ((lo as $wide).wrapping_add(off as $wide)) as $ty
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let sa: Vec<u64> = (0..32).map(|_| a.random_range(0..1000u64)).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.random_range(0..1000u64)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn ranges_are_in_bounds_and_cover() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.random_range(5..15u64);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..1000 {
            let f = r.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
        let neg = r.random_range(-5..5i64);
        assert!((-5..5).contains(&neg));
    }

    #[test]
    fn bool_probability_roughly_holds() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits}");
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut r = StdRng::seed_from_u64(3);
        let total: f64 = (0..10_000).map(|_| r.random_range(0.0..1.0)).sum();
        let mean = total / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }
}
