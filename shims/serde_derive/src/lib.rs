//! Offline shim for `serde_derive`: the derives expand to nothing.
//!
//! The companion `serde` shim blanket-implements its marker traits for
//! every type, so an empty expansion leaves every derive site with the
//! impls it asked for. The `serde` helper attribute is still registered
//! so field/container attributes parse if they ever appear.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
