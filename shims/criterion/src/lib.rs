//! Offline shim for `criterion`.
//!
//! A compact wall-clock benchmark harness exposing the criterion API
//! subset this workspace's benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `throughput` /
//! `sample_size` / `bench_function` / `bench_with_input`, and bencher
//! `iter` / `iter_with_setup`. No statistics beyond best-of-N samples —
//! adequate for tracking relative perf between code paths in one run.
//!
//! CLI (args after `cargo bench -- ...`):
//! * `--test`    run every benchmark body once and skip measurement;
//! * `--json [PATH]` write results as JSON (default `BENCH_<bin>.json`);
//! * `--bench` (passed by cargo) and unknown flags are ignored;
//! * any bare token is a substring filter on benchmark ids.

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work accounted per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Runs the measured routine the harness-chosen number of iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    ns_per_iter: f64,
    per_sec: Option<(String, f64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Measure,
    TestOnce,
}

/// The harness entry point, constructed by `criterion_main!`.
pub struct Criterion {
    mode: Mode,
    json_path: Option<String>,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: Mode::Measure,
            json_path: None,
            filter: None,
            results: Vec::new(),
        }
    }
}

fn default_json_path() -> String {
    let argv0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&argv0)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "bench".to_string());
    // Strip cargo's trailing `-<hash>` disambiguator if present.
    let stem = match stem.rsplit_once('-') {
        Some((head, tail))
            if tail.len() >= 8 && tail.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            head.to_string()
        }
        _ => stem,
    };
    format!("BENCH_{stem}.json")
}

impl Criterion {
    /// Builds a harness from the process CLI arguments.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" | "-t" => c.mode = Mode::TestOnce,
                "--json" => {
                    let path = match args.peek() {
                        Some(next) if !next.starts_with('-') => args.next().unwrap(),
                        _ => default_json_path(),
                    };
                    c.json_path = Some(path);
                }
                "--bench" => {}
                other if other.starts_with('-') => {
                    // Unknown flag (cargo/libtest compat): swallow a value
                    // if one follows in `--flag value` form.
                    if other.starts_with("--") && !other.contains('=') {
                        if let Some(next) = args.peek() {
                            if !next.starts_with('-') {
                                args.next();
                            }
                        }
                    }
                }
                filter => c.filter = Some(filter.to_string()),
            }
        }
        c
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        self.run_one(id, None, 10, f);
    }

    fn run_one<F>(&mut self, id: String, throughput: Option<Throughput>, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.mode == Mode::TestOnce {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("Testing {id} ... ok");
            return;
        }

        // Calibration pass: estimate per-iteration cost.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_nanos().max(1);
        // Aim for ~60ms per sample, bounded to keep total time sane.
        let iters = (60_000_000u128 / per_iter).clamp(1, 5_000_000) as u64;

        let samples = samples.clamp(2, 30);
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let ns = b.elapsed.as_nanos() as f64 / iters as f64;
            if ns < best {
                best = ns;
            }
        }

        let per_sec = throughput.map(|t| {
            let (unit, count) = match t {
                Throughput::Elements(n) => ("elem/s", n),
                Throughput::Bytes(n) => ("B/s", n),
            };
            (unit.to_string(), count as f64 * 1e9 / best)
        });
        match &per_sec {
            Some((unit, rate)) => println!(
                "{id:<48} time: {best:>12.1} ns/iter  thrpt: {rate:>14.0} {unit}"
            ),
            None => println!("{id:<48} time: {best:>12.1} ns/iter"),
        }
        self.results.push(BenchResult {
            id,
            ns_per_iter: best,
            per_sec,
        });
    }

    /// Prints the run summary and writes the JSON report if requested.
    pub fn final_summary(&mut self) {
        if self.mode == Mode::TestOnce || self.results.is_empty() {
            return;
        }
        if let Some(path) = &self.json_path {
            let mut out = String::from("{\n  \"benchmarks\": [\n");
            for (i, r) in self.results.iter().enumerate() {
                let comma = if i + 1 == self.results.len() { "" } else { "," };
                let rate = match &r.per_sec {
                    Some((unit, rate)) => {
                        format!(", \"rate\": {rate:.1}, \"rate_unit\": \"{unit}\"")
                    }
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "    {{\"id\": \"{}\", \"ns_per_iter\": {:.2}{}}}{}",
                    r.id, r.ns_per_iter, rate, comma
                );
            }
            out.push_str("  ]\n}\n");
            if let Err(e) = std::fs::write(path, out) {
                eprintln!("criterion shim: failed to write {path}: {e}");
            } else {
                println!("wrote benchmark report to {path}");
            }
        }
    }
}

/// A named group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = t.into();
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        let (t, s) = (self.throughput, self.sample_size);
        self.criterion.run_one(id, t, s, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        let (t, s) = (self.throughput, self.sample_size);
        self.criterion.run_one(id, t, s, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(4));
            g.sample_size(2);
            g.bench_function(BenchmarkId::new("sum", "small"), |b| {
                b.iter(|| (0..32u64).sum::<u64>())
            });
            g.bench_with_input(BenchmarkId::new("len", 3), &vec![1, 2, 3], |b, v| {
                b.iter(|| v.len())
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert!(c.results[0].id.starts_with("g/sum"));
        assert!(c.results[0].ns_per_iter > 0.0);
        let (unit, rate) = c.results[0].per_sec.clone().unwrap();
        assert_eq!(unit, "elem/s");
        assert!(rate > 0.0);
    }

    #[test]
    fn test_mode_runs_once_without_recording() {
        let mut c = Criterion {
            mode: Mode::TestOnce,
            ..Criterion::default()
        };
        let mut runs = 0;
        c.bench_function("once", |b| {
            b.iter(|| ());
            runs += 1;
        });
        assert_eq!(runs, 1);
        assert!(c.results.is_empty());
    }
}
