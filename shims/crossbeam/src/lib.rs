//! Offline shim for `crossbeam` (channel and atomic modules).
//!
//! Backed by `std::sync::mpsc`. The one semantic difference: `bounded(n)`
//! returns an unbounded channel, i.e. sends never block on capacity. The
//! workspace only uses `bounded(1)` for single-shot reply channels, where
//! the distinction is unobservable.
//!
//! **Checked mode.** The shim is instrumented for `esr-check`: when the
//! global probe (`esr_sim::probe`) is recording, every send and receive
//! logs a happens-before edge (channel id + message number, the number
//! travelling with the message so pairing is exact under any
//! interleaving), and when a scheduler gate is installed each operation
//! first parks until the explorer grants the thread its turn. With the
//! probe off the only overhead is one relaxed atomic load per operation
//! and one `u64` stamp per message.

pub mod channel {
    use std::sync::atomic::AtomicU64;
    use std::sync::{mpsc, Arc};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    use esr_sim::probe;
    use esr_sim::probe::{IdClass, SyncOp};

    /// Per-channel instrumentation state shared by all handles.
    #[derive(Debug)]
    struct ChanMeta {
        /// Epoch-tagged channel id (assigned lazily per checked run).
        id: AtomicU64,
        /// Epoch-tagged message counter (dense from 1 per checked run).
        msgs: AtomicU64,
        /// Messages sent but not yet received (crossbeam's `len()`).
        depth: AtomicU64,
    }

    impl ChanMeta {
        fn new() -> Self {
            Self {
                id: AtomicU64::new(0),
                msgs: AtomicU64::new(0),
                depth: AtomicU64::new(0),
            }
        }

        fn id(&self) -> u64 {
            probe::object_id(IdClass::Channel, &self.id)
        }
    }

    /// The sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<(u64, T)>,
        meta: Arc<ChanMeta>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
                meta: Arc::clone(&self.meta),
            }
        }
    }

    impl<T> Sender<T> {
        /// Messages currently queued (sent but not yet received). Like
        /// crossbeam's `Sender::len`, a racy snapshot.
        pub fn len(&self) -> usize {
            self.meta.depth.load(std::sync::atomic::Ordering::Relaxed) as usize
        }

        /// Whether the queue is currently empty (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if !probe::recording() {
                let r = self.inner.send((0, msg)).map_err(|e| SendError(e.0 .1));
                if r.is_ok() {
                    self.meta
                        .depth
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                return r;
            }
            probe::reach();
            let chan = self.meta.id();
            let stamp = probe::epoch_counter_next(&self.meta.msgs);
            let result = self
                .inner
                .send((stamp, msg))
                .map_err(|e| SendError(e.0 .1));
            if result.is_ok() {
                self.meta
                    .depth
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                probe::record(SyncOp::ChanSend { chan, msg: stamp });
            }
            result
        }
    }

    /// The receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<(u64, T)>,
        meta: Arc<ChanMeta>,
    }

    impl<T> Receiver<T> {
        fn note_recv(&self, stamp: u64) {
            // Saturating: a receiver handed a message sent before this
            // shim tracked depth must not wrap the counter.
            let _ = self.meta.depth.fetch_update(
                std::sync::atomic::Ordering::Relaxed,
                std::sync::atomic::Ordering::Relaxed,
                |d| Some(d.saturating_sub(1)),
            );
            if probe::recording() {
                probe::record(SyncOp::ChanRecv {
                    chan: self.meta.id(),
                    msg: stamp,
                });
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            while probe::scheduling() {
                probe::reach();
                match self.inner.try_recv() {
                    Ok((stamp, v)) => {
                        self.note_recv(stamp);
                        return Ok(v);
                    }
                    Err(TryRecvError::Empty) => probe::yield_blocked(),
                    Err(TryRecvError::Disconnected) => return Err(RecvError),
                }
            }
            let (stamp, v) = self.inner.recv()?;
            self.note_recv(stamp);
            Ok(v)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            probe::reach();
            let (stamp, v) = self.inner.try_recv()?;
            self.note_recv(stamp);
            Ok(v)
        }

        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            if probe::scheduling() {
                // Under the explorer real time is meaningless; poll a
                // bounded, deterministic number of turns instead.
                for _ in 0..1024 {
                    if !probe::scheduling() {
                        break;
                    }
                    probe::reach();
                    match self.inner.try_recv() {
                        Ok((stamp, v)) => {
                            self.note_recv(stamp);
                            return Ok(v);
                        }
                        Err(TryRecvError::Empty) => probe::yield_blocked(),
                        Err(TryRecvError::Disconnected) => {
                            return Err(RecvTimeoutError::Disconnected)
                        }
                    }
                }
                return Err(RecvTimeoutError::Timeout);
            }
            let (stamp, v) = self.inner.recv_timeout(timeout)?;
            self.note_recv(stamp);
            Ok(v)
        }

        /// Non-blocking iterator over the messages currently queued.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        /// Blocking iterator that ends when all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator over currently queued messages (see [`Receiver::try_iter`]).
    #[derive(Debug)]
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    /// Blocking iterator (see [`Receiver::iter`]).
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let meta = Arc::new(ChanMeta::new());
        (
            Sender {
                inner: tx,
                meta: Arc::clone(&meta),
            },
            Receiver { inner: rx, meta },
        )
    }

    /// Creates a "bounded" channel. Capacity is not enforced by this shim
    /// (sends never block); see the crate docs.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

pub mod atomic {
    //! Instrumented atomics (the `crossbeam::atomic::AtomicCell` subset
    //! this workspace uses, `u64` payloads only).

    use std::sync::atomic::{AtomicU64, Ordering};

    use esr_sim::probe;
    use esr_sim::probe::{IdClass, SyncOp};

    /// A lock-free atomic cell holding a `u64`, instrumented for checked
    /// runs: loads, stores, and read-modify-writes are recorded as
    /// synchronization events (SeqCst, so the trace order is the
    /// modification order under the explorer's serialized schedules).
    #[derive(Debug, Default)]
    pub struct AtomicCell {
        value: AtomicU64,
        /// Epoch-tagged cell id for the probe.
        id: AtomicU64,
    }

    impl AtomicCell {
        /// A cell starting at `value`.
        pub const fn new(value: u64) -> Self {
            Self {
                value: AtomicU64::new(value),
                id: AtomicU64::new(0),
            }
        }

        fn id(&self) -> u64 {
            probe::object_id(IdClass::Cell, &self.id)
        }

        /// Atomic load.
        pub fn load(&self) -> u64 {
            if probe::recording() {
                probe::reach();
                let v = self.value.load(Ordering::SeqCst);
                probe::record(SyncOp::AtomicLoad { cell: self.id() });
                v
            } else {
                self.value.load(Ordering::SeqCst)
            }
        }

        /// Atomic store.
        pub fn store(&self, v: u64) {
            if probe::recording() {
                probe::reach();
                self.value.store(v, Ordering::SeqCst);
                probe::record(SyncOp::AtomicStore { cell: self.id() });
            } else {
                self.value.store(v, Ordering::SeqCst);
            }
        }

        /// Atomic fetch-add; returns the previous value.
        pub fn fetch_add(&self, v: u64) -> u64 {
            if probe::recording() {
                probe::reach();
                let prev = self.value.fetch_add(v, Ordering::SeqCst);
                probe::record(SyncOp::AtomicRmw { cell: self.id() });
                prev
            } else {
                self.value.fetch_add(v, Ordering::SeqCst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded};
    use super::atomic::AtomicCell;

    #[test]
    fn round_trip_and_try_iter() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.recv().unwrap(), 0);
        let rest: Vec<i32> = rx.try_iter().collect();
        assert_eq!(rest, vec![1, 2, 3, 4]);
        assert!(rx.try_iter().next().is_none());
    }

    #[test]
    fn bounded_reply_channel() {
        let (tx, rx) = bounded(1);
        let t = std::thread::spawn(move || tx.send(42u64).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
        t.join().unwrap();
    }

    #[test]
    fn atomic_cell_fetch_add() {
        let c = AtomicCell::new(5);
        assert_eq!(c.fetch_add(3), 5);
        assert_eq!(c.load(), 8);
        c.store(1);
        assert_eq!(c.load(), 1);
    }

    #[test]
    fn send_after_receiver_drop_returns_value() {
        let (tx, rx) = unbounded();
        drop(rx);
        let err = tx.send(7i32).unwrap_err();
        assert_eq!(err.0, 7, "SendError carries the unsent value");
    }

    #[test]
    fn recorded_sends_and_recvs_pair_up() {
        use esr_sim::probe::{self, SyncOp};
        probe::start_recording();
        let (tx, rx) = unbounded();
        tx.send(1u8).unwrap();
        tx.send(2u8).unwrap();
        rx.recv().unwrap();
        rx.recv().unwrap();
        let events = probe::stop();
        // Other tests in this binary may run concurrently and traffic
        // their own channels while recording is on; identify ours as the
        // one whose first message number is 1 and which saw two sends.
        let mut per_chan: std::collections::BTreeMap<u64, (Vec<u64>, Vec<u64>)> =
            std::collections::BTreeMap::new();
        for e in &events {
            match e.op {
                SyncOp::ChanSend { chan, msg } => per_chan.entry(chan).or_default().0.push(msg),
                SyncOp::ChanRecv { chan, msg } => per_chan.entry(chan).or_default().1.push(msg),
                _ => {}
            }
        }
        assert!(
            per_chan
                .values()
                .any(|(s, r)| s == &vec![1, 2] && r == &vec![1, 2]),
            "some channel recorded two paired send/recv events: {per_chan:?}"
        );
    }
}
