//! Offline shim for `crossbeam` (channel module only).
//!
//! Backed by `std::sync::mpsc`. The one semantic difference: `bounded(n)`
//! returns an unbounded channel, i.e. sends never block on capacity. The
//! workspace only uses `bounded(1)` for single-shot reply channels, where
//! the distinction is unobservable.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    /// The receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking iterator over the messages currently queued.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.inner.try_iter()
        }

        /// Blocking iterator that ends when all senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// Creates a "bounded" channel. Capacity is not enforced by this shim
    /// (sends never block); see the crate docs.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded};

    #[test]
    fn round_trip_and_try_iter() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.recv().unwrap(), 0);
        let rest: Vec<i32> = rx.try_iter().collect();
        assert_eq!(rest, vec![1, 2, 3, 4]);
        assert!(rx.try_iter().next().is_none());
    }

    #[test]
    fn bounded_reply_channel() {
        let (tx, rx) = bounded(1);
        let t = std::thread::spawn(move || tx.send(42u64).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
        t.join().unwrap();
    }
}
