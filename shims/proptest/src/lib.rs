//! Offline shim for `proptest`.
//!
//! A miniature property-testing framework exposing the subset of the
//! proptest API this workspace's tests use: the [`Strategy`] trait with
//! `prop_map`/`boxed`, integer-range / tuple / `Just` / `any` /
//! `prop_oneof!` / `prop::collection::vec` strategies, the `proptest!`
//! test macro with `#![proptest_config(..)]`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion macros.
//!
//! Differences from the real crate, deliberate for an offline build:
//! no shrinking (failures report the generated case as-is), and the RNG
//! is seeded deterministically from the test function's name, so runs
//! are reproducible without a persistence file.

pub mod test_runner {
    /// Run-shaping configuration; only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is discarded, not a failure.
        Reject,
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Deterministic generator driving all strategies (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Seeds a generator from a test's name, so every `proptest!`
        /// function explores its own deterministic stream.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, bound)` by rejection (no modulo bias).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound) - 1;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value`. No shrinking in this shim.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_int_strategy {
        ($($ty:ty),* $(,)?) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    let off = if span == u64::MAX {
                        rng.next_u64()
                    } else {
                        rng.below(span + 1)
                    };
                    (lo as i128 + off as i128) as $ty
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($S:ident . $idx:tt),+))+) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Weighted choice between boxed arms (`prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> OneOf<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Self { arms, total }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut draw = rng.below(self.total);
            for (w, s) in &self.arms {
                if draw < *w as u64 {
                    return s.generate(rng);
                }
                draw -= *w as u64;
            }
            unreachable!("weighted draw out of range")
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// `any::<T>()` support for primitives.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Uniform strategy over all values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),* $(,)?) => {$(
            impl Arbitrary for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for generated collections (`lo..hi`, half-open).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: r.end().saturating_add(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose elements come from `elem` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span == 0 { 0 } else { rng.below(span) as usize };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, ...).
pub mod prop {
    pub use super::collection;
    pub use super::strategy;
}

pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::prop;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut case: u32 = 0;
            let mut rejects: u32 = 0;
            while case < cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => case += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejects += 1;
                        if rejects > cfg.cases.saturating_mul(16).saturating_add(1024) {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({})",
                                stringify!($name),
                                rejects
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} (case {}): {}", stringify!($name), case, msg);
                    }
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    (cfg = ($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_label() -> impl Strategy<Value = String> {
        prop_oneof![
            3 => Just("hot".to_string()),
            1 => (0u64..10).prop_map(|n| format!("cold-{n}")),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0i64..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            for x in v {
                prop_assert!((0..5).contains(&x));
            }
        }

        #[test]
        fn tuples_and_assume(pair in (any::<bool>(), 1i64..10)) {
            prop_assume!(pair.1 != 5);
            prop_assert!(pair.1 >= 1 && pair.1 < 10 && pair.1 != 5);
        }

        #[test]
        fn oneof_produces_both_arms(labels in prop::collection::vec(arb_label(), 64..65)) {
            prop_assert!(labels.iter().any(|l| l == "hot"));
            prop_assert!(labels.iter().any(|l| l.starts_with("cold-")));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        let s = 0u64..1000;
        let va: Vec<u64> = (0..16).map(|_| s.generate(&mut a)).collect();
        let vb: Vec<u64> = (0..16).map(|_| s.generate(&mut b)).collect();
        assert_eq!(va, vb);
    }
}
