//! Offline shim for `bytes`.
//!
//! `Bytes` is a cheaply-clonable, immutable byte buffer (an `Arc<[u8]>`
//! window); `BytesMut` a growable builder that freezes into `Bytes`.
//! `Buf`/`BufMut` cover the big-endian integer accessors the stable-queue
//! wire format uses. Multi-byte integers are big-endian, matching the
//! real crate.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from(s.as_bytes().to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes::from(self.data.clone()).fmt(f)
    }
}

/// Read access to a byte cursor; integers are big-endian.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer; integers are big-endian.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_i64(-9);
        b.put_slice(b"xyz");
        let mut cursor = b.freeze();
        assert_eq!(cursor.remaining(), 1 + 4 + 8 + 8 + 3);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64(), 42);
        assert_eq!(cursor.get_i64(), -9);
        assert_eq!(cursor.copy_to_bytes(3), Bytes::from_static(b"xyz"));
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn slicing_and_equality() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(&b[0..2], &[1, 2]);
        assert_eq!(b.len(), 4);
        let mut c = b.clone();
        let head = c.split_to(1);
        assert_eq!(head.to_vec(), vec![1]);
        assert_eq!(c.to_vec(), vec![2, 3, 4]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4], "clone unaffected");
    }
}
