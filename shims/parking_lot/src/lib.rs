//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the parking_lot API surface this
//! workspace uses: non-poisoning `lock()` / `read()` / `write()` that
//! return guards directly instead of `Result`s. Poisoned locks are
//! recovered by taking the inner guard — a panicked critical section in
//! a test should not cascade into unrelated poisoning failures.
//!
//! **Checked mode.** Locks are instrumented for `esr-check`: when the
//! global probe (`esr_sim::probe`) is recording, every acquire and
//! release is logged with a per-run lock id (feeding the happens-before
//! race detector and the lock-order-inversion detector), and when a
//! scheduler gate is installed each acquire parks at the gate and
//! contends via `try_lock` + yield so the explorer stays in control.
//! With the probe off the only overhead is one relaxed atomic load per
//! operation.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicU64;
use std::sync::{self, TryLockError};

use esr_sim::probe;
use esr_sim::probe::{IdClass, SyncOp};

/// A mutual exclusion primitive (std-backed, non-poisoning API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    id: AtomicU64,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            id: AtomicU64::new(0),
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn probe_id(&self) -> u64 {
        probe::object_id(IdClass::Lock, &self.id)
    }

    fn raw_try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        if !probe::recording() {
            let g = match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            return MutexGuard { inner: g, lock: 0 };
        }
        let lock = self.probe_id();
        let g = loop {
            probe::reach();
            if let Some(g) = self.raw_try_lock() {
                break g;
            }
            if probe::scheduling() {
                probe::yield_blocked();
            } else {
                std::thread::yield_now();
            }
        };
        probe::record(SyncOp::LockAcquire { lock });
        MutexGuard { inner: g, lock }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if !probe::recording() {
            return self
                .raw_try_lock()
                .map(|g| MutexGuard { inner: g, lock: 0 });
        }
        probe::reach();
        let lock = self.probe_id();
        let g = self.raw_try_lock()?;
        probe::record(SyncOp::LockAcquire { lock });
        Some(MutexGuard { inner: g, lock })
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// RAII guard for [`Mutex`]; records the release when instrumented.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    /// Probe lock id, 0 when the acquire was not recorded.
    lock: u64,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.lock != 0 && probe::recording() {
            probe::record(SyncOp::LockRelease { lock: self.lock });
        }
    }
}

/// A reader-writer lock (std-backed, non-poisoning API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    id: AtomicU64,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            id: AtomicU64::new(0),
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    fn probe_id(&self) -> u64 {
        probe::object_id(IdClass::Lock, &self.id)
    }

    fn raw_try_read(&self) -> Option<sync::RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    fn raw_try_write(&self) -> Option<sync::RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if !probe::recording() {
            let g = match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            return RwLockReadGuard { inner: g, lock: 0 };
        }
        let lock = self.probe_id();
        let g = loop {
            probe::reach();
            if let Some(g) = self.raw_try_read() {
                break g;
            }
            if probe::scheduling() {
                probe::yield_blocked();
            } else {
                std::thread::yield_now();
            }
        };
        probe::record(SyncOp::RwReadAcquire { lock });
        RwLockReadGuard { inner: g, lock }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if !probe::recording() {
            let g = match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            return RwLockWriteGuard { inner: g, lock: 0 };
        }
        let lock = self.probe_id();
        let g = loop {
            probe::reach();
            if let Some(g) = self.raw_try_write() {
                break g;
            }
            if probe::scheduling() {
                probe::yield_blocked();
            } else {
                std::thread::yield_now();
            }
        };
        probe::record(SyncOp::LockAcquire { lock });
        RwLockWriteGuard { inner: g, lock }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// RAII read guard for [`RwLock`]; records the release when instrumented.
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    lock: u64,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.lock != 0 && probe::recording() {
            probe::record(SyncOp::RwReadRelease { lock: self.lock });
        }
    }
}

/// RAII write guard for [`RwLock`]; records the release when instrumented.
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    lock: u64,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.lock != 0 && probe::recording() {
            probe::record(SyncOp::LockRelease { lock: self.lock });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
