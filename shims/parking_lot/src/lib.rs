//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the parking_lot API surface this
//! workspace uses: non-poisoning `lock()` / `read()` / `write()` that
//! return guards directly instead of `Result`s. Poisoned locks are
//! recovered by taking the inner guard — a panicked critical section in
//! a test should not cascade into unrelated poisoning failures.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (std-backed, non-poisoning API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock (std-backed, non-poisoning API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
