//! `esr-lint`: token-level determinism lint for the simulation and
//! replica-control crates.
//!
//! The simulator's reproducibility contract (same seed ⇒ same trace)
//! and the explorer's schedule replay both die silently the moment
//! wall-clock time, an OS-seeded RNG, or hash-order iteration leaks
//! into a deterministic path. The borrow checker cannot see that, so
//! this lint scans the source:
//!
//! * **nondeterministic-time** — `SystemTime` and `Instant::now` are
//!   rejected in `crates/sim`, `crates/replica`, and the pure
//!   control-plane step machine `crates/runtime/src/ctrl.rs`
//!   (simulated time comes from `VirtualClock`; the step function is
//!   replayed verbatim by `esr-model`, so *any* ambient input breaks
//!   the checker's fidelity guarantee).
//! * **thread-rng** — `thread_rng`/`ThreadRng`/`from_entropy` likewise
//!   (randomness comes from `DetRng` seeds).
//! * **protocol scope** (`crates/net`) — the transport may read real
//!   time for I/O deadlines (`Instant::now` is allowed: reactor poll
//!   timeouts and retransmit backoff are wall-clock by nature), but
//!   protocol-*state* decisions must not depend on `SystemTime` or
//!   ambient randomness, so those tokens are banned. The reactor's
//!   retransmit backoff is deliberately jitter-free (deterministic
//!   doubling, 20 ms → 1 s), so no allowlist entry is needed today;
//!   adding jitter later requires an explicit
//!   `// lint: allow(thread-rng)` at the draw site.
//! * **hashmap-iteration** — iterating a `HashMap` inside a function
//!   whose name suggests a snapshot/serialization path (`snapshot*`,
//!   `serialize*`, `to_bytes*`, `encode*`, `digest*`) in any workspace
//!   crate: hash order varies per process, so anything user-visible or
//!   compared across replicas must round through a `BTreeMap` (see
//!   `ShardMap::to_btree`).
//!
//! A finding is suppressed by a `// lint: allow(<rule>)` comment on the
//! same line or the line directly above. Exit status is non-zero when
//! any finding survives.

use std::fmt;
use std::path::{Path, PathBuf};

/// Paths where wall-clock and OS randomness are banned outright.
const TIME_RNG_SCOPES: [&str; 3] = [
    "crates/sim/src",
    "crates/replica/src",
    "crates/runtime/src/ctrl.rs",
];

/// Paths where protocol state must stay deterministic but I/O timing
/// is real: `SystemTime` and ambient RNGs are banned, `Instant::now`
/// is not (poll deadlines and retransmit backoff legitimately read the
/// monotonic clock).
const PROTOCOL_SCOPES: [&str; 1] = ["crates/net/src"];

/// Function-name prefixes marking snapshot/serialization paths.
const SNAPSHOT_FNS: [&str; 5] = ["snapshot", "serialize", "to_bytes", "encode", "digest"];

#[derive(Debug)]
struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Strips `//` comments and the contents of string literals so tokens
/// inside them don't trip the scan (the allowlist is read separately).
fn code_of(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Is `needle` present as a whole token (not a substring of a larger
/// identifier)?
fn has_token(code: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before = code[..at].chars().next_back();
        let after = code[at + needle.len()..].chars().next();
        let word = |c: Option<char>| c.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !word(before) && !word(after) {
            return true;
        }
        start = at + needle.len();
    }
    false
}

fn allowed(lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("lint: allow({rule})");
    lines[idx].contains(&marker) || (idx > 0 && lines[idx - 1].contains(&marker))
}

/// Names of local bindings and fields declared with a `HashMap` type in
/// this file (token-level: `foo: HashMap<`, `foo = HashMap::new`,
/// `foo: FastIdMap<`, `foo: Vec<HashMap<`).
fn hashmap_names(lines: &[&str]) -> Vec<String> {
    let mut names = Vec::new();
    for raw in lines {
        let code = code_of(raw);
        for decl in ["HashMap<", "HashMap::new", "FastIdMap<", "Vec<HashMap<"] {
            if let Some(pos) = code.find(decl) {
                let head = &code[..pos];
                let head = head.trim_end_matches([':', '=', ' ', '\t']).trim_end();
                let name: String = head
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !name.is_empty()
                    && !name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                    && name != "type"
                {
                    names.push(name);
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// The name of the function a `fn` line declares, if any.
fn fn_name(code: &str) -> Option<String> {
    let pos = code.find("fn ")?;
    if pos > 0 {
        let prev = code[..pos].chars().next_back();
        if prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return None;
        }
    }
    let rest = &code[pos + 3..];
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

fn scan_file(path: &Path, content: &str, findings: &mut Vec<Finding>) {
    let lines: Vec<&str> = content.lines().collect();
    let loc = path.to_string_lossy();
    let in_time_scope = TIME_RNG_SCOPES.iter().any(|s| loc.contains(s));
    let in_protocol_scope = PROTOCOL_SCOPES.iter().any(|s| loc.contains(s));

    // Pass 1: banned time / RNG tokens. The full deterministic scope
    // bans every ambient input; the protocol scope tolerates the
    // monotonic clock (I/O deadlines) but nothing else.
    type Ban = (&'static str, &'static str, &'static str);
    const FULL_BANS: [Ban; 5] = [
        (
            "SystemTime",
            "nondeterministic-time",
            "use the simulator's VirtualClock",
        ),
        (
            "Instant::now",
            "nondeterministic-time",
            "use the simulator's VirtualClock",
        ),
        ("thread_rng", "thread-rng", "use a seeded DetRng"),
        ("ThreadRng", "thread-rng", "use a seeded DetRng"),
        ("from_entropy", "thread-rng", "use a seeded DetRng"),
    ];
    const PROTOCOL_BANS: [Ban; 4] = [
        (
            "SystemTime",
            "nondeterministic-time",
            "protocol state must not read wall-clock time; \
             derive versions from client-supplied timestamps",
        ),
        ("thread_rng", "thread-rng", "seed any jitter explicitly"),
        ("ThreadRng", "thread-rng", "seed any jitter explicitly"),
        ("from_entropy", "thread-rng", "seed any jitter explicitly"),
    ];
    let bans: &[Ban] = if in_time_scope {
        &FULL_BANS
    } else if in_protocol_scope {
        &PROTOCOL_BANS
    } else {
        &[]
    };
    for (i, raw) in lines.iter().enumerate() {
        let code = code_of(raw);
        for (token, rule, hint) in bans {
            if has_token(&code, token) && !allowed(&lines, i, rule) {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: i + 1,
                    rule,
                    message: format!("`{token}` in a deterministic scope; {hint}"),
                });
            }
        }
    }

    // Pass 2: HashMap iteration inside snapshot/serialization
    // functions. Tracks brace depth to know which function a line
    // belongs to.
    let maps = hashmap_names(&lines);
    let mut fn_stack: Vec<(String, i64)> = Vec::new();
    let mut depth: i64 = 0;
    for (i, raw) in lines.iter().enumerate() {
        let code = code_of(raw);
        if let Some(name) = fn_name(&code) {
            fn_stack.push((name, depth));
        }
        let in_snapshot_fn = fn_stack
            .last()
            .is_some_and(|(n, _)| SNAPSHOT_FNS.iter().any(|p| n.starts_with(p)));
        if in_snapshot_fn {
            let iterates_map = maps.iter().any(|m| {
                [".iter()", ".iter_mut()", ".keys()", ".values()", ".values_mut()", ".drain("]
                    .iter()
                    .any(|call| code.contains(&format!("{m}{call}")))
                    || code.contains(&format!("in &{m}"))
                    || code.contains(&format!("in &mut {m}"))
            }) || code.contains("HashMap::iter")
                || code.contains("HashMap::keys")
                || code.contains("HashMap::values");
            if iterates_map && !allowed(&lines, i, "hashmap-iteration") {
                let fname = fn_stack.last().map(|(n, _)| n.as_str()).unwrap_or("?");
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: i + 1,
                    rule: "hashmap-iteration",
                    message: format!(
                        "HashMap iteration inside `{fname}` feeds a snapshot/serialization \
                         path; hash order is nondeterministic — collect through a BTreeMap"
                    ),
                });
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    while fn_stack.last().is_some_and(|(_, d)| depth <= *d) {
                        fn_stack.pop();
                    }
                }
                _ => {}
            }
        }
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn main() -> std::process::ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());
    let root = PathBuf::from(root);
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Err(e) = walk(&crates_dir, &mut files) {
        eprintln!("esr-lint: cannot walk {}: {e}", crates_dir.display());
        return std::process::ExitCode::from(2);
    }
    files.sort();

    let mut findings = Vec::new();
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(content) => scan_file(f, &content, &mut findings),
            Err(e) => {
                eprintln!("esr-lint: cannot read {}: {e}", f.display());
                return std::process::ExitCode::from(2);
            }
        }
    }

    if findings.is_empty() {
        println!("esr-lint: {} files clean", files.len());
        std::process::ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("esr-lint: {} finding(s) in {} files", findings.len(), files.len());
        std::process::ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(path: &str, content: &str) -> Vec<String> {
        let mut out = Vec::new();
        scan_file(Path::new(path), content, &mut out);
        out.iter().map(|f| format!("{}:{}", f.rule, f.line)).collect()
    }

    #[test]
    fn flags_wall_clock_in_sim() {
        let hits = scan_str(
            "crates/sim/src/clock.rs",
            "fn now() -> u64 {\n    let t = std::time::Instant::now();\n    0\n}\n",
        );
        assert_eq!(hits, ["nondeterministic-time:2"]);
    }

    #[test]
    fn allows_monotonic_clock_in_net() {
        // The transport owns real I/O deadlines: Instant::now is fine.
        let hits = scan_str(
            "crates/net/src/lib.rs",
            "fn now() { let _ = std::time::Instant::now(); }\n",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn allows_wall_clock_outside_all_scopes() {
        let hits = scan_str(
            "crates/workload/src/lib.rs",
            "fn now() { let _ = std::time::SystemTime::now(); }\n",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn flags_wall_clock_and_rng_in_net() {
        let hits = scan_str(
            "crates/net/src/reactor.rs",
            "fn stamp() {\n    let t = SystemTime::now();\n    let r = thread_rng();\n}\n",
        );
        assert_eq!(hits, ["nondeterministic-time:2", "thread-rng:3"]);
    }

    #[test]
    fn flags_entropy_seeding_in_net() {
        let hits = scan_str(
            "crates/net/src/link.rs",
            "fn jitter() {\n    let rng = SmallRng::from_entropy();\n}\n",
        );
        assert_eq!(hits, ["thread-rng:2"]);
    }

    #[test]
    fn pure_step_machine_bans_even_monotonic_time() {
        let hits = scan_str(
            "crates/runtime/src/ctrl.rs",
            "fn step() {\n    let t = std::time::Instant::now();\n}\n",
        );
        assert_eq!(hits, ["nondeterministic-time:2"]);
    }

    #[test]
    fn flags_thread_rng() {
        let hits = scan_str(
            "crates/replica/src/x.rs",
            "fn pick() {\n    let mut rng = thread_rng();\n}\n",
        );
        assert_eq!(hits, ["thread-rng:2"]);
    }

    #[test]
    fn allow_comment_suppresses() {
        let hits = scan_str(
            "crates/sim/src/x.rs",
            "// lint: allow(nondeterministic-time)\nlet t = SystemTime::now();\n",
        );
        assert!(hits.is_empty());
        let hits = scan_str(
            "crates/sim/src/x.rs",
            "let t = SystemTime::now(); // lint: allow(nondeterministic-time)\n",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn comment_and_string_tokens_ignored() {
        let hits = scan_str(
            "crates/sim/src/x.rs",
            "// SystemTime is banned here\nlet s = \"thread_rng\";\n",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn flags_hashmap_iteration_in_snapshot() {
        let src = "\
struct S { values: HashMap<u64, u64> }
impl S {
    fn snapshot(&self) -> Vec<(u64, u64)> {
        self.values.iter().map(|(k, v)| (*k, *v)).collect()
    }
}
";
        let hits = scan_str("crates/storage/src/x.rs", src);
        assert_eq!(hits, ["hashmap-iteration:4"]);
    }

    #[test]
    fn hashmap_iteration_outside_snapshot_ok() {
        let src = "\
struct S { values: HashMap<u64, u64> }
impl S {
    fn apply_all(&mut self) {
        for (_k, v) in &mut self.values { *v += 1; }
    }
}
";
        assert!(scan_str("crates/storage/src/x.rs", src).is_empty());
    }

    #[test]
    fn btree_snapshot_is_clean() {
        let src = "\
struct S { values: BTreeMap<u64, u64> }
impl S {
    fn snapshot(&self) -> Vec<(u64, u64)> {
        self.values.iter().map(|(k, v)| (*k, *v)).collect()
    }
}
";
        assert!(scan_str("crates/storage/src/x.rs", src).is_empty());
    }

    #[test]
    fn nested_fn_scoping_ends_at_brace() {
        let src = "\
struct S { m: HashMap<u64, u64> }
impl S {
    fn snapshot(&self) -> usize { self.m.len() }
    fn tally(&self) -> usize {
        self.m.iter().count()
    }
}
";
        assert!(scan_str("crates/storage/src/x.rs", src).is_empty());
    }
}
