//! `esrctl` — command-line client for a running `esrd` site daemon.
//!
//! ```text
//! esrctl --dir /tmp/cluster --site 0 status
//! esrctl --dir /tmp/cluster --site 0 submit --et 1 7 incr 5
//! esrctl --dir /tmp/cluster --site 0 query 7
//! esrctl --dir /tmp/cluster --site 0 audit
//! esrctl --dir /tmp/cluster --site 0 decide 1 commit
//! esrctl --dir /tmp/cluster --site 0 metrics
//! esrctl --dir /tmp/cluster --site 0 trace
//! ```
//!
//! Talks the client plane of the wire protocol via
//! [`esr_runtime::RpcClient`]: submit update ETs, run bounded-epsilon
//! queries, dump replica snapshots, read the site's oracle audit, and
//! issue COMPE decisions. ET/sequence stamping is the caller's job
//! (`--et`, `--seq`): the daemons are deliberately stamp-agnostic.

use std::io::Write;
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use esr_core::ids::{ClientId, EtId, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_replica::mset::MSet;
use esr_runtime::RpcClient;

const USAGE: &str = "\
usage: esrctl --dir <path> --site <i> <command>
commands:
  status
  snapshot
  checkpoint
  audit
  metrics
  trace
  spans <et> [--skeleton]
      scrapes every site's span ring (discovered from the cluster
      directory; --site is ignored) and prints the ET's merged causal
      timeline plus a critical-path latency breakdown; --skeleton
      drops timestamps for deterministic comparison
  query <object>... [--epsilon <n>]
  submit --et <n> [--seq <n>] [--client <id> --req <n>] <object> <op> <args>
      ops: write <int> | incr <n> | decr <n> | mul <n>
           | tswrite <time> <client> <int>
      --client/--req identify the request for exactly-once retries:
      a resubmit with the same pair returns the original et
  decide <et> <commit|abort>";

fn fail(msg: &str) -> ! {
    eprintln!("esrctl: {msg}");
    eprintln!("{USAGE}");
    exit(2);
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("bad {what}: '{s}'")))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<PathBuf> = None;
    let mut site: Option<u64> = None;
    let mut rest: Vec<String> = Vec::new();

    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => dir = it.next().map(PathBuf::from),
            "--site" => site = it.next().map(|s| parse(&s, "--site")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            _ => rest.push(a),
        }
    }

    let dir = dir.unwrap_or_else(|| fail("--dir is required"));
    let Some((command, args)) = rest.split_first() else {
        fail("no command given")
    };

    // `spans` is cluster-wide: it scrapes every discoverable site's
    // ring, so it needs no --site.
    if command == "spans" {
        if let Err(e) = cmd_spans(&dir, args) {
            if e.kind() != std::io::ErrorKind::BrokenPipe {
                eprintln!("esrctl: {e}");
                exit(1);
            }
        }
        return;
    }

    let site = SiteId(site.unwrap_or_else(|| fail("--site is required")));
    let mut client = RpcClient::connect_dir(&dir, site, Duration::from_secs(5))
        .unwrap_or_else(|e| {
            eprintln!("esrctl: cannot reach site {}: {e}", site.raw());
            exit(1);
        });

    let result = run(&mut client, command, args);
    if let Err(e) = result {
        // A reader that stops early (`esrctl trace | head`) closes our
        // stdout; that is not an error.
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            return;
        }
        eprintln!("esrctl: {e}");
        exit(1);
    }
}

/// Every site that has published an address file under `dir`, in id
/// order — the cluster membership as far as a client can see it.
fn discover_sites(dir: &std::path::Path) -> Vec<SiteId> {
    let mut sites: Vec<u64> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| {
                    let name = e.file_name().into_string().ok()?;
                    name.strip_prefix("site-")?
                        .strip_suffix(".addr")?
                        .parse()
                        .ok()
                })
                .collect()
        })
        .unwrap_or_default();
    sites.sort_unstable();
    sites.dedup();
    sites.into_iter().map(SiteId).collect()
}

/// `esrctl spans <et> [--skeleton]`: scrape every site's span ring and
/// print the merged causal timeline with its critical-path breakdown.
fn cmd_spans(dir: &std::path::Path, args: &[String]) -> std::io::Result<()> {
    let mut skeleton = false;
    let mut et: Option<u64> = None;
    for a in args {
        match a.as_str() {
            "--skeleton" => skeleton = true,
            s => et = Some(parse(s, "et")),
        }
    }
    let et = et.unwrap_or_else(|| fail("spans needs <et>"));
    let sites = discover_sites(dir);
    if sites.is_empty() {
        fail("no site address files found in --dir (cluster not up?)");
    }
    let mut per_site = Vec::new();
    for site in sites {
        let mut client = RpcClient::connect_dir(dir, site, Duration::from_secs(5))?;
        let (dropped, spans) = client.spans(et)?;
        if dropped > 0 {
            // Overflow makes the merge honest-but-partial; say so.
            eprintln!("({site} span ring dropped {dropped} older spans)");
        }
        per_site.push((site, spans));
    }
    let timeline = esr_runtime::merge_timeline(&per_site, EtId(et));
    if timeline.is_empty() {
        println!("no spans for et{et}");
        return Ok(());
    }
    let mut out = std::io::stdout().lock();
    write!(out, "{}", esr_runtime::render_timeline(&timeline, skeleton))
}

fn run(client: &mut RpcClient, command: &str, args: &[String]) -> std::io::Result<()> {
    match command {
        "status" => {
            let s = client.status()?;
            // New fields append after the originals: CI's proc-smoke
            // greps `settled=true outbound_pending=0` verbatim.
            println!(
                "settled={} outbound_pending={} epoch={} view={} coordinator={} \
                 ckpt_seq={} ckpt_covered={}",
                s.settled,
                s.outbound_pending,
                s.epoch,
                s.view,
                s.coordinator,
                s.ckpt_seq,
                s.ckpt_covered
            );
        }
        "checkpoint" => {
            let (seq, covered) = client.checkpoint()?;
            println!("checkpoint seq={seq} covered={covered}");
        }
        "snapshot" => {
            let mut out = std::io::stdout().lock();
            for (object, value) in client.snapshot()? {
                writeln!(out, "{}\t{:?}", object.raw(), value)?;
            }
        }
        "metrics" => {
            let mut out = std::io::stdout().lock();
            write!(out, "{}", client.metrics()?)?;
        }
        "trace" => {
            let (dropped, events) = client.trace()?;
            if dropped > 0 {
                eprintln!("(ring dropped {dropped} older events)");
            }
            let mut out = std::io::stdout().lock();
            for (seq, micros, component, message) in events {
                writeln!(out, "{seq}\t{micros}us\t{component}\t{message}")?;
            }
        }
        "audit" => {
            let a = client.audit()?;
            println!("redelivered={} journaled={}", a.redelivered, a.journaled);
            for (et, seq) in &a.ordup_order {
                println!("ordup\tet={}\tseq={}", et.raw(), seq.0);
            }
            for et in &a.commu_order {
                println!("commu\tet={}", et.raw());
            }
            for (object, ts) in &a.ritu_installs {
                println!(
                    "ritu\tobject={}\tts={}:{}",
                    object.raw(),
                    ts.time,
                    ts.client.raw()
                );
            }
            for ts in &a.vtnc_targets {
                println!("vtnc\tts={}:{}", ts.time, ts.client.raw());
            }
            if a.vtnc_violations > 0 {
                println!("vtnc_violations={}", a.vtnc_violations);
            }
            for (et, event) in &a.compe_events {
                println!("compe\tet={}\t{event:?}", et.raw());
            }
        }
        "query" => {
            let mut epsilon = u64::MAX;
            let mut objects = Vec::new();
            let mut i = 0;
            while i < args.len() {
                if args[i] == "--epsilon" {
                    epsilon = parse(args.get(i + 1).map_or("", |s| s), "--epsilon");
                    i += 2;
                } else {
                    objects.push(ObjectId(parse(&args[i], "object id")));
                    i += 1;
                }
            }
            if objects.is_empty() {
                fail("query needs at least one object id");
            }
            let outcome = client.query(&objects, epsilon)?;
            println!("admitted={} charged={}", outcome.admitted, outcome.charged);
            for (object, value) in objects.iter().zip(outcome.values.iter()) {
                println!("{}\t{value:?}", object.raw());
            }
        }
        "submit" => {
            let mut et: Option<u64> = None;
            let mut seq: Option<u64> = None;
            let mut client_id: Option<u64> = None;
            let mut req: Option<u64> = None;
            let mut pos: Vec<&String> = Vec::new();
            let mut i = 0;
            while i < args.len() {
                match args[i].as_str() {
                    "--et" => {
                        et = Some(parse(args.get(i + 1).map_or("", |s| s), "--et"));
                        i += 2;
                    }
                    "--seq" => {
                        seq = Some(parse(args.get(i + 1).map_or("", |s| s), "--seq"));
                        i += 2;
                    }
                    "--client" => {
                        client_id = Some(parse(args.get(i + 1).map_or("", |s| s), "--client"));
                        i += 2;
                    }
                    "--req" => {
                        req = Some(parse(args.get(i + 1).map_or("", |s| s), "--req"));
                        i += 2;
                    }
                    _ => {
                        pos.push(&args[i]);
                        i += 1;
                    }
                }
            }
            let et = EtId(et.unwrap_or_else(|| fail("submit needs --et")));
            let (object, op) = parse_op(&pos);
            // Trace context: stamp the submit wall time so every
            // site's spans can attribute client queueing delay.
            let t0 = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0);
            let mut mset =
                MSet::new(et, SiteId(0), vec![ObjectOp::new(object, op)]).traced(t0);
            if let Some(s) = seq {
                mset = mset.sequenced(SeqNo(s));
            }
            match (client_id, req) {
                (Some(c), Some(r)) => mset = mset.from_client(ClientId(c), r),
                (None, None) => {}
                _ => fail("--client and --req go together"),
            }
            let accepted = client.submit(mset)?;
            println!("submitted et={}", accepted.raw());
        }
        "decide" => {
            let [et, verdict] = args else {
                fail("decide needs <et> <commit|abort>")
            };
            let commit = match verdict.as_str() {
                "commit" => true,
                "abort" => false,
                other => fail(&format!("bad decision '{other}'")),
            };
            let et = EtId(parse(et, "et"));
            client.decide(et, commit)?;
            println!("decided et={} commit={commit}", et.raw());
        }
        other => fail(&format!("unknown command '{other}'")),
    }
    Ok(())
}

fn parse_op(pos: &[&String]) -> (ObjectId, Operation) {
    let [object, op, args @ ..] = pos else {
        fail("submit needs <object> <op> <args>")
    };
    let object = ObjectId(parse(object, "object id"));
    let int = |i: usize, what: &str| -> i64 {
        parse(pos.get(i + 2).map_or("", |s| s.as_str()), what)
    };
    let operation = match op.as_str() {
        "write" => Operation::Write(Value::Int(int(0, "write value"))),
        "incr" => Operation::Incr(int(0, "incr amount")),
        "decr" => Operation::Decr(int(0, "decr amount")),
        "mul" => Operation::MulBy(int(0, "mul factor")),
        "tswrite" => {
            let time: u64 = parse(args.first().map_or("", |s| s.as_str()), "tswrite time");
            let client: u64 = parse(args.get(1).map_or("", |s| s.as_str()), "tswrite client");
            let value = int(2, "tswrite value");
            Operation::TimestampedWrite(
                VersionTs::new(time, ClientId(client)),
                Value::Int(value),
            )
        }
        other => fail(&format!("unknown op '{other}'")),
    };
    (object, operation)
}
