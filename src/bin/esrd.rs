//! `esrd` — one ESR replica-control site as a real OS process.
//!
//! ```text
//! esrd --site 1 --sites 3 --method commu --dir /tmp/cluster
//! ```
//!
//! Boots [`esr_runtime::Daemon`] for the given site and serves forever:
//! peers and clients find it through the address file it publishes
//! under the cluster directory. Kill it with `SIGKILL` whenever you
//! like — that is the point. On the next start it bumps its boot epoch,
//! replays its write-ahead journal, re-announces its applies to the
//! coordinator, and drains whatever its peers queued for it while it
//! was dead.

use std::path::PathBuf;
use std::process::exit;

use esr_core::ids::SiteId;
use esr_net::rpc::sys::raise_nofile_limit;
use esr_runtime::{Daemon, DaemonConfig, RtMethod};

/// Descriptor headroom requested at boot: the poll-driven reactor
/// happily multiplexes thousands of client sockets on one thread, so
/// the default soft limit (often 1024) is the first thing to run out.
const WANT_NOFILE: u64 = 32_768;

const USAGE: &str = "usage: esrd --site <i> --sites <n> --method \
                     <ordup|commu|ritu|ritu-mv|compe> --dir <path> \
                     [--ckpt-bytes <n>]";

fn fail(msg: &str) -> ! {
    eprintln!("esrd: {msg}");
    eprintln!("{USAGE}");
    exit(2);
}

fn main() {
    let mut site: Option<u64> = None;
    let mut sites: Option<usize> = None;
    let mut method: Option<RtMethod> = None;
    let mut dir: Option<PathBuf> = None;
    let mut ckpt_bytes: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--site" => site = value("--site").parse().ok(),
            "--sites" => sites = value("--sites").parse().ok(),
            "--method" => {
                let name = value("--method");
                method = Some(
                    RtMethod::parse(&name)
                        .unwrap_or_else(|| fail(&format!("unknown method '{name}'"))),
                );
            }
            "--dir" => dir = Some(PathBuf::from(value("--dir"))),
            "--ckpt-bytes" => {
                let n = value("--ckpt-bytes");
                ckpt_bytes = Some(
                    n.parse()
                        .unwrap_or_else(|_| fail(&format!("bad --ckpt-bytes '{n}'"))),
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag '{other}'")),
        }
    }

    let cfg = DaemonConfig {
        site: SiteId(site.unwrap_or_else(|| fail("--site is required"))),
        sites: sites.unwrap_or_else(|| fail("--sites is required")),
        method: method.unwrap_or_else(|| fail("--method is required")),
        dir: dir.unwrap_or_else(|| fail("--dir is required")),
        ckpt_bytes,
    };
    if (cfg.site.raw() as usize) >= cfg.sites {
        fail("--site must be < --sites");
    }

    match raise_nofile_limit(WANT_NOFILE) {
        Ok(limit) if limit < WANT_NOFILE => {
            eprintln!("esrd: fd limit capped at {limit}; heavy fan-in may exhaust it");
        }
        Err(e) => eprintln!("esrd: could not raise fd limit: {e}"),
        _ => {}
    }

    let site = cfg.site;
    let daemon = match Daemon::start(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("esrd: failed to start: {e}");
            exit(1);
        }
    };
    eprintln!(
        "esrd: site {} epoch {} listening on {}",
        site.raw(),
        daemon.epoch(),
        daemon.addr()
    );

    // Serve until killed.
    loop {
        std::thread::park();
    }
}
