//! # esr — asynchronous replica control with epsilon-serializability
//!
//! Facade crate re-exporting the full public API of the ESR workspace: a
//! reproduction of Pu & Leff, *Replica Control in Distributed Systems: An
//! Asynchronous Approach* (SIGMOD 1991 / Columbia TR CUCS-053-90).
//!
//! See the individual crates for details:
//!
//! * [`core`] — ESR theory: ETs, operations, histories, checkers, locks;
//! * [`sim`] — deterministic discrete-event simulation kernel;
//! * [`net`] — simulated network with latency, faults, and partitions;
//! * [`storage`] — object stores, multiversion store, stable queues,
//!   recovery log;
//! * [`replica`] — the four replica-control methods (ORDUP, COMMU, RITU,
//!   COMPE) plus synchronous baselines (2PC write-all, weighted voting);
//! * [`runtime`] — thread-per-site runtime with real concurrency;
//! * [`obs`] — zero-dependency metrics registry and event tracing;
//! * [`workload`] — generators, metrics, and experiment drivers.

#![warn(missing_docs)]

pub use esr_core as core;
pub use esr_net as net;
pub use esr_obs as obs;
pub use esr_replica as replica;
pub use esr_runtime as runtime;
pub use esr_sim as sim;
pub use esr_storage as storage;
pub use esr_workload as workload;

/// Convenience prelude importing the names used by nearly every program.
pub mod prelude {
    pub use esr_core::{
        EpsilonSpec, EpsilonTransaction, EtBuilder, EtId, EtKind, History, ObjectId, ObjectOp,
        Operation, Protocol, SiteId, Value,
    };
}
