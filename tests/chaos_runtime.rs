//! Chaos integration: the thread runtime under a seeded lossy transport
//! with crash/restart recovery.
//!
//! Each scenario routes every update through the durable fault-injection
//! relays (drops ≈ 25% of attempts, duplicates ≈ 15% of deliveries, one
//! partition window isolating a site mid-stream), crashes one site in
//! the middle of the run, restarts it, and then requires the full ESR
//! guarantee: at quiescence all replicas are identical, and the final
//! state equals what a fault-free run produces. Counters must prove the
//! faults actually fired, and the same seed must reproduce byte-identical
//! fault traces and final snapshots.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

use esr::core::{EtId, ObjectId, ObjectOp, Operation, SiteId, Value};
use esr::net::faults::{PartitionSchedule, PartitionWindow};
use esr::runtime::{render_trace, ChaosStats, Cluster, FaultPlan, RtMethod};

const X: ObjectId = ObjectId(0);
const Y: ObjectId = ObjectId(1);
const N: usize = 3;
const PHASE: u64 = 12; // updates submitted before and after the crash

/// Seed for the scenario runs; CI overrides it to sweep a matrix.
fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

/// A unique private directory for one cluster's queues and journals.
/// Each run needs a fresh one: relay queues persist entry-id counters,
/// so reusing a directory would shift the trace of a second run.
fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "esr-chaos-{}-{tag}-{k}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The fault plan every scenario uses: lossy, duplicating, with site 2
/// cut off from the others for ticks [4, 10) of each link's clock.
fn plan(seed: u64) -> FaultPlan {
    let partition = PartitionWindow::isolate(
        FaultPlan::tick(4),
        FaultPlan::tick(10),
        SiteId(2),
        [SiteId(0), SiteId(1)],
    );
    FaultPlan::new(seed)
        .with_drops(0.25)
        .with_duplicates(0.15)
        .with_partitions(PartitionSchedule::new(vec![partition]))
}

struct RunResult {
    snapshots: Vec<BTreeMap<ObjectId, Value>>,
    trace: String,
    stats: ChaosStats,
    /// Duplicate deliveries suppressed + MSets journalled, summed over
    /// all sites.
    redelivered: u64,
    journaled: u64,
}

/// Submits update `i` of a scenario (ops chosen per method so the final
/// state is independent of delivery order — the property chaos may not
/// break).
fn submit(c: &Cluster, method: RtMethod, i: u64) -> EtId {
    let origin = SiteId(i % N as u64);
    match method {
        // The sequencer totally orders updates in submission order, so
        // even non-commutative ops land identically everywhere.
        RtMethod::Ordup => {
            if i % 3 == 2 {
                c.submit_update(origin, vec![ObjectOp::new(X, Operation::MulBy(2))])
            } else {
                c.submit_update(
                    origin,
                    vec![
                        ObjectOp::new(X, Operation::Incr(i as i64 + 1)),
                        ObjectOp::new(Y, Operation::Incr(1)),
                    ],
                )
            }
        }
        RtMethod::Commu | RtMethod::Compe => c.submit_update(
            origin,
            vec![
                ObjectOp::new(X, Operation::Incr(i as i64 + 1)),
                ObjectOp::new(Y, Operation::Incr(1)),
            ],
        ),
        // LWW: the version clock stamps submissions in order, so the
        // highest timestamp (the last submission) wins everywhere.
        RtMethod::Ritu | RtMethod::RituMv => c.submit_blind_write(origin, X, Value::Int(i as i64)),
    }
}

/// Runs the full chaos scenario: phase 1 of updates, crash site 1,
/// phase 2 while it is down (relays buffer durably and re-send), restart,
/// decide COMPE outcomes, quiesce, and collect everything.
fn run_scenario(method: RtMethod, seed: u64, tag: &str) -> RunResult {
    let dir = fresh_dir(tag);
    let mut c = Cluster::chaos(method, N, plan(seed), &dir);
    let mut ets = Vec::new();
    for i in 0..PHASE {
        ets.push(submit(&c, method, i));
    }
    c.crash(SiteId(1));
    for i in PHASE..2 * PHASE {
        ets.push(submit(&c, method, i));
    }
    // Let the ack timeout elapse so the relays demonstrably re-send to
    // the dead site before it comes back (guarantees resends > 0).
    std::thread::sleep(Duration::from_millis(60));
    c.restart(SiteId(1));
    if method == RtMethod::Compe {
        // Every global update needs a decision before COMPE can settle:
        // commit even submissions, abort odd ones. Some decisions were
        // logged while site 1 was down — it recovers them from the
        // control log.
        for (i, et) in ets.iter().enumerate() {
            if i % 2 == 0 {
                c.commit(*et);
            } else {
                c.abort(*et);
            }
        }
    }
    c.quiesce();
    assert!(c.converged(), "{method:?} seed={seed}: replicas diverged");
    let snapshots: Vec<_> = (0..N)
        .map(|i| c.snapshot_of(SiteId(i as u64)))
        .collect();
    let stats = c.chaos_stats();
    let trace = render_trace(&c.fault_trace());
    let (mut redelivered, mut journaled) = (0, 0);
    for i in 0..N {
        let a = c.audit_of(SiteId(i as u64));
        redelivered += a.redelivered;
        journaled += a.journaled;
    }
    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    RunResult {
        snapshots,
        trace,
        stats,
        redelivered,
        journaled,
    }
}

/// What a fault-free, single-site execution of the same scenario yields.
fn expected_final(method: RtMethod) -> BTreeMap<ObjectId, Value> {
    let mut x = 0i64;
    let mut y = 0i64;
    match method {
        RtMethod::Ordup => {
            for i in 0..2 * PHASE {
                if i % 3 == 2 {
                    x *= 2;
                } else {
                    x += i as i64 + 1;
                    y += 1;
                }
            }
        }
        RtMethod::Commu => {
            for i in 0..2 * PHASE {
                x += i as i64 + 1;
                y += 1;
            }
        }
        RtMethod::Compe => {
            // Odd submissions abort and are compensated away.
            for i in (0..2 * PHASE).step_by(2) {
                x += i as i64 + 1;
                y += 1;
            }
        }
        RtMethod::Ritu | RtMethod::RituMv => {
            let mut m = BTreeMap::new();
            m.insert(X, Value::Int(2 * PHASE as i64 - 1));
            return m;
        }
    }
    let mut m = BTreeMap::new();
    m.insert(X, Value::Int(x));
    m.insert(Y, Value::Int(y));
    m
}

fn assert_chaos_scenario(method: RtMethod, tag: &str) {
    let seed = seed();
    let r = run_scenario(method, seed, tag);
    let expected = expected_final(method);
    for (i, snap) in r.snapshots.iter().enumerate() {
        assert_eq!(
            snap, &expected,
            "{method:?} seed={seed}: site {i} final state wrong"
        );
    }
    // The faults must actually have fired — a chaos test that silently
    // ran a clean network proves nothing.
    assert!(r.stats.dropped > 0, "{method:?}: no attempts dropped");
    assert!(r.stats.duplicated > 0, "{method:?}: no duplicates planned");
    assert!(r.stats.retries > 0, "{method:?}: no backoff retries");
    assert!(
        r.stats.partition_blocked > 0,
        "{method:?}: partition window never blocked an attempt"
    );
    assert!(r.stats.resends > 0, "{method:?}: crash never forced a re-send");
    assert_eq!(r.stats.crashes, 1);
    assert_eq!(r.stats.restarts, 1);
    // Every site journalled updates and survived duplicate deliveries.
    assert!(r.journaled >= 2 * PHASE, "{method:?}: journals too thin");
    assert!(r.redelivered > 0, "{method:?}: no duplicate was suppressed");
    // Reproducibility: the same seed yields the same trace and state.
    let again = run_scenario(method, seed, &format!("{tag}2"));
    assert_eq!(r.trace, again.trace, "{method:?} seed={seed}: trace differs");
    assert_eq!(
        r.snapshots, again.snapshots,
        "{method:?} seed={seed}: snapshots differ across runs"
    );
}

#[test]
fn ordup_survives_chaos_with_crash_restart() {
    assert_chaos_scenario(RtMethod::Ordup, "ordup");
}

#[test]
fn commu_survives_chaos_with_crash_restart() {
    assert_chaos_scenario(RtMethod::Commu, "commu");
}

#[test]
fn ritu_survives_chaos_with_crash_restart() {
    assert_chaos_scenario(RtMethod::Ritu, "ritu");
}

#[test]
fn compe_survives_chaos_with_crash_restart() {
    assert_chaos_scenario(RtMethod::Compe, "compe");
}

#[test]
fn ritu_mv_converges_under_chaos_without_crash() {
    // RITU-MV exercises the tracker-certified VTNC path; run it under
    // the lossy transport (no crash — the certification horizon then
    // also catches up, which quiesce does not wait for).
    let seed = seed();
    let dir = fresh_dir("ritumv");
    let c = Cluster::chaos(RtMethod::RituMv, N, plan(seed), &dir);
    for i in 0..2 * PHASE {
        submit(&c, RtMethod::RituMv, i);
    }
    c.quiesce();
    assert!(c.converged());
    assert_eq!(
        c.snapshot_of(SiteId(0))[&X],
        Value::Int(2 * PHASE as i64 - 1)
    );
    let stats = c.chaos_stats();
    assert!(stats.dropped > 0 && stats.duplicated > 0 && stats.retries > 0);
    drop(c);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn same_seed_reproduces_byte_identical_trace() {
    // Pure transport determinism, no crash in the mix: two clusters fed
    // the identical submission schedule plan the identical fates.
    let seed = seed();
    let mut traces = Vec::new();
    for run in 0..2 {
        let dir = fresh_dir(&format!("repro{run}"));
        let c = Cluster::chaos(RtMethod::Commu, N, plan(seed), &dir);
        for i in 0..2 * PHASE {
            submit(&c, RtMethod::Commu, i);
        }
        c.quiesce();
        assert!(c.converged());
        traces.push(render_trace(&c.fault_trace()));
        drop(c);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(!traces[0].is_empty());
    assert_eq!(traces[0], traces[1], "seed {seed} did not reproduce");
    // The trace names every link of the mesh at least once.
    for from in 0..N {
        for to in 0..N {
            assert!(
                traces[0].contains(&format!("{from}->{to} ")),
                "link {from}->{to} missing from trace"
            );
        }
    }
}

#[test]
fn different_seeds_differ() {
    // Sanity check that the plan seed actually steers the fates (two
    // arbitrary distinct seeds colliding on every link is vanishingly
    // unlikely with 216 planned entries).
    let mut traces = Vec::new();
    for seed in [11, 12] {
        let dir = fresh_dir(&format!("diverge{seed}"));
        let c = Cluster::chaos(RtMethod::Commu, N, plan(seed), &dir);
        for i in 0..2 * PHASE {
            submit(&c, RtMethod::Commu, i);
        }
        c.quiesce();
        traces.push(render_trace(&c.fault_trace()));
        drop(c);
    }
    assert_ne!(traces[0], traces[1]);
}

#[test]
fn crashed_site_recovers_journalled_state_alone() {
    // Even with every in-channel message lost at the crash, the journal
    // alone must restore everything the site had acknowledged.
    let seed = seed();
    let dir = fresh_dir("journal");
    let mut c = Cluster::chaos(RtMethod::Commu, N, FaultPlan::new(seed), &dir);
    for i in 0..PHASE {
        submit(&c, RtMethod::Commu, i);
    }
    c.quiesce();
    let before = c.snapshot_of(SiteId(1));
    let audit = c.audit_of(SiteId(1));
    assert_eq!(audit.journaled, PHASE, "every applied MSet journalled");
    c.crash(SiteId(1));
    c.restart(SiteId(1));
    c.quiesce();
    assert_eq!(
        c.snapshot_of(SiteId(1)),
        before,
        "journal replay lost acknowledged state"
    );
    assert!(c.converged());
    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
