//! Coordinator failover: `SIGKILL` the acting coordinator mid-stream,
//! let the survivors elect a new view, and require the full ESR
//! guarantee anyway.
//!
//! The scenarios extend `proc_cluster.rs` (which kills a *follower*)
//! to the hard case the view-change machinery exists for: site 0
//! starts as the view-0 coordinator, dies without flushing anything,
//! and the survivors must (a) keep accepting the client stream, (b)
//! suspect the silent coordinator after `SUSPECT_AFTER` heartbeat
//! ticks and drive a Viewstamped-Replication-style election, and (c)
//! converge with certified traces once the killed site is revived
//! (completion needs all `n` install reports, so the revived site's
//! re-announcements are part of the handoff story, not an
//! afterthought). The flapping variant kills the *new* coordinator
//! too. `retried_submit_is_answered_once_across_a_failover` is the
//! daemon-level exactly-once check: a client retry lands at a
//! different site, after the failover, and still gets the original ET.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use esr::core::{EtId, ObjectId, ObjectOp, Operation, SiteId, Value};
use esr::runtime::{ProcCluster, RtMethod};
use esr_check::certify::{certify, SiteTrace};

const X: ObjectId = ObjectId(0);
const Y: ObjectId = ObjectId(1);
const N: usize = 3;
const PHASE: u64 = 6; // updates before and after the coordinator dies
const QUIESCE: Duration = Duration::from_secs(90);
/// Suspicion fires after ~3s of coordinator silence (12 ticks of
/// 250ms); give elections a generous multiple of that.
const FAILOVER: Duration = Duration::from_secs(45);

fn esrd() -> &'static str {
    env!("CARGO_BIN_EXE_esrd")
}

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("esr-failover-{}-{tag}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Same order-insensitive workload shapes as `proc_cluster.rs`.
fn submit(c: &ProcCluster, method: RtMethod, i: u64, origins: &[u64]) -> EtId {
    let origin = SiteId(origins[i as usize % origins.len()]);
    let result = match method {
        RtMethod::Ordup => {
            if i % 3 == 2 {
                c.submit_update(origin, vec![ObjectOp::new(X, Operation::MulBy(2))])
            } else {
                c.submit_update(
                    origin,
                    vec![
                        ObjectOp::new(X, Operation::Incr(i as i64 + 1)),
                        ObjectOp::new(Y, Operation::Incr(1)),
                    ],
                )
            }
        }
        RtMethod::Commu | RtMethod::Compe => c.submit_update(
            origin,
            vec![
                ObjectOp::new(X, Operation::Incr(i as i64 + 1)),
                ObjectOp::new(Y, Operation::Incr(1)),
            ],
        ),
        RtMethod::Ritu | RtMethod::RituMv => c.submit_blind_write(origin, X, Value::Int(i as i64)),
    };
    result.unwrap_or_else(|e| panic!("{method:?}: submit {i} failed: {e}"))
}

fn expected_final(method: RtMethod, updates: u64) -> BTreeMap<ObjectId, Value> {
    let mut x = 0i64;
    let mut y = 0i64;
    match method {
        RtMethod::Ordup => {
            for i in 0..updates {
                if i % 3 == 2 {
                    x *= 2;
                } else {
                    x += i as i64 + 1;
                    y += 1;
                }
            }
        }
        RtMethod::Commu => {
            for i in 0..updates {
                x += i as i64 + 1;
                y += 1;
            }
        }
        RtMethod::Compe => {
            for i in (0..updates).step_by(2) {
                x += i as i64 + 1;
                y += 1;
            }
        }
        RtMethod::Ritu | RtMethod::RituMv => {
            let mut m = BTreeMap::new();
            m.insert(X, Value::Int(updates as i64 - 1));
            return m;
        }
    }
    let mut m = BTreeMap::new();
    m.insert(X, Value::Int(x));
    m.insert(Y, Value::Int(y));
    m
}

/// Polls `site` until it reports a view of at least `min_view`.
fn wait_for_view(c: &ProcCluster, site: SiteId, min_view: u64, what: &str) -> u64 {
    let deadline = Instant::now() + FAILOVER;
    loop {
        if let Ok(s) = c.status_of(site) {
            if s.view >= min_view {
                return s.view;
            }
        }
        assert!(
            Instant::now() < deadline,
            "{what}: site {} never reached view {min_view} within {FAILOVER:?}",
            site.raw()
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// At quiescence: every site in the same view `>= min_view`, and the
/// coordinator role held by exactly the site that view elects.
fn assert_view_consistent(c: &ProcCluster, method: RtMethod, min_view: u64) {
    let statuses: Vec<_> = (0..N)
        .map(|i| {
            c.status_of(SiteId(i as u64))
                .unwrap_or_else(|e| panic!("{method:?}: status of site {i}: {e}"))
        })
        .collect();
    let view = statuses[0].view;
    assert!(
        view >= min_view,
        "{method:?}: view {view} never advanced past {min_view}"
    );
    for (i, s) in statuses.iter().enumerate() {
        assert_eq!(s.view, view, "{method:?}: site {i} in a different view");
        assert_eq!(
            s.coordinator,
            i as u64 == view % N as u64,
            "{method:?}: site {i} coordinator role wrong for view {view}"
        );
    }
}

fn certify_cluster(c: &ProcCluster, method: RtMethod) {
    let traces: Vec<SiteTrace> = (0..N)
        .map(|s| {
            let (dropped, events) = c
                .trace_of(SiteId(s as u64))
                .unwrap_or_else(|e| panic!("{method:?}: trace of site {s}: {e}"));
            SiteTrace::from_dump(s as u64, dropped, events)
        })
        .collect();
    let findings = certify(method, &traces);
    assert!(
        findings.is_empty(),
        "{method:?}: trace certification failed:\n{findings:#?}"
    );
}

/// The core scenario: kill the acting coordinator mid-stream, keep
/// submitting through the survivors, wait for the new view, revive the
/// corpse, and require convergence + certified traces.
fn assert_failover_scenario(method: RtMethod, tag: &str) {
    let dir = fresh_dir(tag);
    let mut c = ProcCluster::spawn(esrd(), &dir, method, N)
        .unwrap_or_else(|e| panic!("{method:?}: spawn failed: {e}"));
    let mut ets = Vec::new();
    for i in 0..PHASE {
        ets.push(submit(&c, method, i, &[0, 1, 2]));
    }
    // SIGKILL the view-0 coordinator with the phase-1 stream still in
    // flight: no flush, no goodbye, its in-memory completion evidence
    // is gone.
    c.kill(SiteId(0));
    for i in PHASE..2 * PHASE {
        ets.push(submit(&c, method, i, &[1, 2]));
    }
    // The survivors' heartbeat counters notice the silence and elect
    // view 1 (coordinator site 1) without any help from us.
    wait_for_view(&c, SiteId(1), 1, "survivor 1");
    wait_for_view(&c, SiteId(2), 1, "survivor 2");
    if method == RtMethod::Compe {
        // Decisions go to a *survivor*, which forwards them to
        // whichever site now holds the coordinator role.
        for (i, et) in ets.iter().enumerate() {
            let via = SiteId(1 + (i as u64 % 2));
            let r = if i % 2 == 0 {
                c.commit_via(via, *et)
            } else {
                c.abort_via(via, *et)
            };
            r.unwrap_or_else(|e| panic!("{method:?}: decision {i} failed: {e}"));
        }
    }
    // Completion needs all n sites' install reports, so the cluster
    // cannot settle while site 0 is dead: revive it. Its journal
    // replay re-announces every apply to the new coordinator.
    c.restart(SiteId(0))
        .unwrap_or_else(|e| panic!("{method:?}: restart failed: {e}"));
    wait_for_view(&c, SiteId(0), 1, "revived ex-coordinator");
    c.quiesce_within(QUIESCE)
        .unwrap_or_else(|e| panic!("{method:?}: {e}"));
    assert!(
        c.converged().unwrap_or_else(|e| panic!("{method:?}: {e}")),
        "{method:?}: replicas diverged after failover"
    );
    let expected = expected_final(method, 2 * PHASE);
    for i in 0..N {
        let snap = c
            .snapshot_of(SiteId(i as u64))
            .unwrap_or_else(|e| panic!("{method:?}: snapshot {i}: {e}"));
        assert_eq!(snap, expected, "{method:?}: site {i} final state wrong");
    }
    assert_view_consistent(&c, method, 1);
    certify_cluster(&c, method);
    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ordup_converges_after_coordinator_kill9() {
    assert_failover_scenario(RtMethod::Ordup, "ordup");
}

#[test]
fn commu_converges_after_coordinator_kill9() {
    assert_failover_scenario(RtMethod::Commu, "commu");
}

#[test]
fn ritu_converges_after_coordinator_kill9() {
    assert_failover_scenario(RtMethod::Ritu, "ritu");
}

#[test]
fn ritu_mv_converges_after_coordinator_kill9() {
    assert_failover_scenario(RtMethod::RituMv, "ritu-mv");
}

#[test]
fn compe_converges_after_coordinator_kill9() {
    assert_failover_scenario(RtMethod::Compe, "compe");
}

#[test]
fn flapping_coordinators_still_converge() {
    // Kill the view-0 coordinator, let view 1 install, revive it —
    // then kill the *new* coordinator and do it again. Two handoffs,
    // two revivals, one certified convergence.
    let method = RtMethod::Commu;
    let dir = fresh_dir("flap");
    let mut c = ProcCluster::spawn(esrd(), &dir, method, N).expect("spawn");
    for i in 0..PHASE {
        submit(&c, method, i, &[0, 1, 2]);
    }
    c.kill(SiteId(0));
    for i in PHASE..2 * PHASE {
        submit(&c, method, i, &[1, 2]);
    }
    let v1 = wait_for_view(&c, SiteId(2), 1, "first failover");
    c.restart(SiteId(0)).expect("restart site 0");
    wait_for_view(&c, SiteId(0), v1, "revived site 0");

    // Second flap: the new coordinator dies mid-stream too.
    let second = SiteId(v1 % N as u64);
    c.kill(second);
    let survivors: Vec<u64> = (0..N as u64).filter(|s| *s != second.raw()).collect();
    for i in 2 * PHASE..3 * PHASE {
        submit(&c, method, i, &survivors);
    }
    wait_for_view(&c, SiteId(survivors[0]), v1 + 1, "second failover");
    c.restart(second).expect("restart second coordinator");

    c.quiesce_within(QUIESCE).unwrap_or_else(|e| panic!("{e}"));
    assert!(c.converged().expect("converged"), "replicas diverged");
    let expected = expected_final(method, 3 * PHASE);
    for i in 0..N {
        assert_eq!(
            c.snapshot_of(SiteId(i as u64)).expect("snapshot"),
            expected,
            "site {i} final state wrong after flapping"
        );
    }
    assert_view_consistent(&c, method, v1 + 1);
    certify_cluster(&c, method);
    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retried_submit_is_answered_once_across_a_failover() {
    // Exactly-once at the daemon level: the original submit lands at
    // site 1 and propagates; the client's retry (same client id and
    // request seq, fresh ET stamp) lands at site *2*, after the
    // coordinator failed over — and is answered from the replicated
    // client table with the original ET, applying nothing.
    let method = RtMethod::Commu;
    let dir = fresh_dir("retry");
    let mut c = ProcCluster::spawn(esrd(), &dir, method, N).expect("spawn");
    let ops = || vec![ObjectOp::new(X, Operation::Incr(5))];
    let original = c
        .submit_update_from_client(SiteId(1), ops(), 7, 1)
        .expect("original submit");
    c.quiesce_within(QUIESCE).expect("quiesce before kill");

    c.kill(SiteId(0));
    wait_for_view(&c, SiteId(2), 1, "failover");
    let retried = c
        .submit_update_from_client(SiteId(2), ops(), 7, 1)
        .expect("retried submit");
    assert_eq!(
        retried, original,
        "retry was not answered with the original ET"
    );
    // A second client request must still get a fresh ET (the table
    // keys on (client, seq), not on the client alone).
    let fresh = c
        .submit_update_from_client(SiteId(2), ops(), 7, 2)
        .expect("second request");
    assert_ne!(fresh, original);

    c.restart(SiteId(0)).expect("restart");
    c.quiesce_within(QUIESCE).expect("final quiesce");
    assert!(c.converged().expect("converged"));
    // Exactly once per request: 5 + 5, not 15.
    let snap = c.snapshot_of(SiteId(0)).expect("snapshot");
    assert_eq!(snap.get(&X), Some(&Value::Int(10)), "retry was re-applied");
    certify_cluster(&c, method);
    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
