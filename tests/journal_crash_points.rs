//! Exhaustive crash-point recovery for the write-ahead apply journal.
//!
//! `queue_recovery.rs` proves the `FileQueue` substrate recovers the
//! complete-record prefix from a cut at sampled offsets; this test
//! climbs one layer and proves the *whole* recovery pipeline — torn
//! journal file → [`ApplyJournal::open`] → [`NodeCore::recover`] —
//! lands in exactly the reference state, for a cut at **every** byte
//! offset of the journal (every record boundary and every mid-record
//! position), for every replica-control method.
//!
//! The contract under test is the daemon's write-ahead discipline: a
//! crash may lose the suffix of the journal that was mid-write, but
//! every record that hit the disk whole must replay to the same state
//! a never-crashed site reached after applying that prefix — no
//! panic, no partial MSet, no double-apply, and the recovered core
//! must re-announce exactly the applies it recovered.

use esr::core::{ClientId, EtId, ObjectId, ObjectOp, Operation, SeqNo, SiteId, Value, VersionTs};
use esr::replica::mset::MSet;
use esr::runtime::ctrl::{Effect, NodeCore};
use esr::runtime::recovery::ApplyJournal;
use esr::runtime::state::{RtMethod, SiteState};

const METHODS: [RtMethod; 5] = [
    RtMethod::Ordup,
    RtMethod::Commu,
    RtMethod::Ritu,
    RtMethod::RituMv,
    RtMethod::Compe,
];

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("esr-jcp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A 6-update workload shaped for `method`, origins cycling over the
/// peer sites, with dense timestamps for the RITU family and global
/// sequence numbers for ORDUP.
fn workload(method: RtMethod) -> Vec<MSet> {
    (0..6u64)
        .map(|i| {
            let et = EtId(i + 1);
            let origin = SiteId(1 + i % 2);
            let x = ObjectId(i % 3);
            match method {
                RtMethod::Ordup => {
                    MSet::new(et, origin, vec![ObjectOp::new(x, Operation::Incr(i as i64 + 1))])
                        .sequenced(SeqNo(i))
                }
                RtMethod::Commu | RtMethod::Compe => {
                    MSet::new(et, origin, vec![ObjectOp::new(x, Operation::Incr(i as i64 + 1))])
                }
                RtMethod::Ritu | RtMethod::RituMv => {
                    let ts = VersionTs::new(i + 1, ClientId(origin.raw()));
                    MSet::new(
                        et,
                        origin,
                        vec![ObjectOp::new(x, Operation::TimestampedWrite(ts, Value::Int(i as i64)))],
                    )
                }
            }
        })
        .collect()
}

/// Replays `entries` through the daemon's own pure recovery path and
/// returns the recovered core plus its recovery effects.
fn recover(method: RtMethod, entries: Vec<MSet>) -> (NodeCore, Vec<Effect>) {
    let site = SiteId(1);
    let mut state = SiteState::new(method, site);
    state.enable_audit();
    NodeCore::recover(state, method, site, 3, None, 0, entries)
}

#[test]
fn truncation_at_every_offset_recovers_the_record_prefix() {
    for method in METHODS {
        let msets = workload(method);
        let path = tmp(&format!("journal-{method:?}.q"));
        let _ = std::fs::remove_file(&path);

        // Build the journal, noting the file length after each record:
        // those are the exact record boundaries.
        let mut boundaries = vec![0u64];
        {
            let mut j = ApplyJournal::open(&path).unwrap();
            for m in &msets {
                j.record(m);
                boundaries.push(std::fs::metadata(&path).unwrap().len());
            }
        }
        let total = *boundaries.last().unwrap();

        for cut in 0..=total {
            // Cut the file at `cut` — the power-loss point.
            let bytes = std::fs::read(&path).unwrap();
            let torn_path = tmp(&format!("journal-{method:?}-cut{cut}.q"));
            std::fs::write(&torn_path, &bytes[..cut as usize]).unwrap();

            // How many whole records survived the cut.
            let survivors = boundaries.iter().filter(|b| **b <= cut).count() - 1;

            // Restart: reopen + decode + recover must never panic.
            let j = ApplyJournal::open(&torn_path).unwrap();
            let replayed = j.replay();
            assert_eq!(
                replayed,
                &msets[..survivors],
                "{method:?} cut at {cut}: replay is not the complete-record prefix"
            );
            assert_eq!(j.entries(), survivors as u64);

            let (recovered, effects) = recover(method, replayed);

            // Reference: a site that simply applied the surviving
            // prefix and never crashed.
            let (reference, _) = recover(method, Vec::new());
            let mut reference = reference;
            for m in &msets[..survivors] {
                reference.state.deliver(m.clone());
            }
            assert_eq!(
                recovered.state.snapshot(),
                reference.state.snapshot(),
                "{method:?} cut at {cut}: recovered state diverges from reference"
            );
            for m in &msets[..survivors] {
                assert!(
                    recovered.state.has_applied(m.et),
                    "{method:?} cut at {cut}: recovered site lost et {}",
                    m.et.raw()
                );
            }

            // The write-ahead contract's flip side: recovery
            // re-announces exactly the applies it recovered (for
            // methods that track completion), so a lost `Applied`
            // report is always replayed to the coordinator.
            let announced = effects
                .iter()
                .filter(|e| matches!(e, Effect::Send { .. }))
                .count();
            let expected = if method.tracks_completion() { survivors } else { 0 };
            assert_eq!(
                announced, expected,
                "{method:?} cut at {cut}: recovery announced {announced} applies, \
                 expected {expected}"
            );

            // Recovery is idempotent: journalling nothing new, a
            // second crash at a *clean* boundary replays to the same
            // state.
            let j2 = ApplyJournal::open(&torn_path).unwrap();
            let (again, _) = recover(method, j2.replay());
            assert_eq!(
                again.state.snapshot(),
                recovered.state.snapshot(),
                "{method:?} cut at {cut}: double recovery diverged"
            );

            std::fs::remove_file(&torn_path).ok();
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn appends_after_torn_recovery_extend_the_journal() {
    // A site that recovers from a torn tail keeps journalling: the
    // next incarnation sees prefix + new records.
    let method = RtMethod::Commu;
    let msets = workload(method);
    let path = tmp("journal-extend.q");
    let _ = std::fs::remove_file(&path);
    let boundary;
    {
        let mut j = ApplyJournal::open(&path).unwrap();
        j.record(&msets[0]);
        boundary = std::fs::metadata(&path).unwrap().len();
        j.record(&msets[1]);
    }
    // Tear the second record in half.
    let full = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(boundary + (full - boundary) / 2).unwrap();
    drop(f);
    {
        let mut j = ApplyJournal::open(&path).unwrap();
        assert_eq!(j.replay(), &msets[..1]);
        j.record(&msets[2]);
    }
    let j = ApplyJournal::open(&path).unwrap();
    assert_eq!(j.replay(), vec![msets[0].clone(), msets[2].clone()]);
    std::fs::remove_file(&path).ok();
}
