//! Exhaustive crash-point recovery for the write-ahead apply journal.
//!
//! `queue_recovery.rs` proves the `FileQueue` substrate recovers the
//! complete-record prefix from a cut at sampled offsets; this test
//! climbs one layer and proves the *whole* recovery pipeline — torn
//! journal file → [`ApplyJournal::open`] → [`NodeCore::recover`] —
//! lands in exactly the reference state, for a cut at **every** byte
//! offset of the journal (every record boundary and every mid-record
//! position), for every replica-control method.
//!
//! The contract under test is the daemon's write-ahead discipline: a
//! crash may lose the suffix of the journal that was mid-write, but
//! every record that hit the disk whole must replay to the same state
//! a never-crashed site reached after applying that prefix — no
//! panic, no partial MSet, no double-apply, and the recovered core
//! must re-announce exactly the applies it recovered.

use esr::core::{ClientId, EtId, ObjectId, ObjectOp, Operation, SeqNo, SiteId, Value, VersionTs};
use esr::replica::mset::MSet;
use esr::replica::wire::Frame;
use esr::runtime::ctrl::{Effect, NodeCore, NodeEvent};
use esr::runtime::recovery::ApplyJournal;
use esr::runtime::state::{RtMethod, SiteState};
use esr::runtime::{decode_payload, encode_payload};
use esr::storage::snapshot;

const METHODS: [RtMethod; 5] = [
    RtMethod::Ordup,
    RtMethod::Commu,
    RtMethod::Ritu,
    RtMethod::RituMv,
    RtMethod::Compe,
];

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("esr-jcp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A 6-update workload shaped for `method`, origins cycling over the
/// peer sites, with dense timestamps for the RITU family and global
/// sequence numbers for ORDUP.
fn workload(method: RtMethod) -> Vec<MSet> {
    (0..6u64)
        .map(|i| {
            let et = EtId(i + 1);
            let origin = SiteId(1 + i % 2);
            let x = ObjectId(i % 3);
            match method {
                RtMethod::Ordup => {
                    MSet::new(et, origin, vec![ObjectOp::new(x, Operation::Incr(i as i64 + 1))])
                        .sequenced(SeqNo(i))
                }
                RtMethod::Commu | RtMethod::Compe => {
                    MSet::new(et, origin, vec![ObjectOp::new(x, Operation::Incr(i as i64 + 1))])
                }
                RtMethod::Ritu | RtMethod::RituMv => {
                    let ts = VersionTs::new(i + 1, ClientId(origin.raw()));
                    MSet::new(
                        et,
                        origin,
                        vec![ObjectOp::new(x, Operation::TimestampedWrite(ts, Value::Int(i as i64)))],
                    )
                }
            }
        })
        .collect()
}

/// Replays `entries` through the daemon's own pure recovery path and
/// returns the recovered core plus its recovery effects.
fn recover(method: RtMethod, entries: Vec<MSet>) -> (NodeCore, Vec<Effect>) {
    let site = SiteId(1);
    let mut state = SiteState::new(method, site);
    state.enable_audit();
    NodeCore::recover(state, method, site, 3, None, 0, entries)
}

#[test]
fn truncation_at_every_offset_recovers_the_record_prefix() {
    for method in METHODS {
        let msets = workload(method);
        let path = tmp(&format!("journal-{method:?}.q"));
        let _ = std::fs::remove_file(&path);

        // Build the journal, noting the file length after each record:
        // those are the exact record boundaries.
        let mut boundaries = vec![0u64];
        {
            let mut j = ApplyJournal::open(&path).unwrap();
            for m in &msets {
                j.record(m);
                boundaries.push(std::fs::metadata(&path).unwrap().len());
            }
        }
        let total = *boundaries.last().unwrap();

        for cut in 0..=total {
            // Cut the file at `cut` — the power-loss point.
            let bytes = std::fs::read(&path).unwrap();
            let torn_path = tmp(&format!("journal-{method:?}-cut{cut}.q"));
            std::fs::write(&torn_path, &bytes[..cut as usize]).unwrap();

            // How many whole records survived the cut.
            let survivors = boundaries.iter().filter(|b| **b <= cut).count() - 1;

            // Restart: reopen + decode + recover must never panic.
            let j = ApplyJournal::open(&torn_path).unwrap();
            let replayed = j.replay();
            assert_eq!(
                replayed,
                &msets[..survivors],
                "{method:?} cut at {cut}: replay is not the complete-record prefix"
            );
            assert_eq!(j.entries(), survivors as u64);

            let (recovered, effects) = recover(method, replayed);

            // Reference: a site that simply applied the surviving
            // prefix and never crashed.
            let (reference, _) = recover(method, Vec::new());
            let mut reference = reference;
            for m in &msets[..survivors] {
                reference.state.deliver(m.clone());
            }
            assert_eq!(
                recovered.state.snapshot(),
                reference.state.snapshot(),
                "{method:?} cut at {cut}: recovered state diverges from reference"
            );
            for m in &msets[..survivors] {
                assert!(
                    recovered.state.has_applied(m.et),
                    "{method:?} cut at {cut}: recovered site lost et {}",
                    m.et.raw()
                );
            }

            // The write-ahead contract's flip side: recovery
            // re-announces exactly the applies it recovered (for
            // methods that track completion), so a lost `Applied`
            // report is always replayed to the coordinator.
            let announced = effects
                .iter()
                .filter(|e| matches!(e, Effect::Send { .. }))
                .count();
            let expected = if method.tracks_completion() { survivors } else { 0 };
            assert_eq!(
                announced, expected,
                "{method:?} cut at {cut}: recovery announced {announced} applies, \
                 expected {expected}"
            );

            // Recovery is idempotent: journalling nothing new, a
            // second crash at a *clean* boundary replays to the same
            // state.
            let j2 = ApplyJournal::open(&torn_path).unwrap();
            let (again, _) = recover(method, j2.replay());
            assert_eq!(
                again.state.snapshot(),
                recovered.state.snapshot(),
                "{method:?} cut at {cut}: double recovery diverged"
            );

            std::fs::remove_file(&torn_path).ok();
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn appends_after_torn_recovery_extend_the_journal() {
    // A site that recovers from a torn tail keeps journalling: the
    // next incarnation sees prefix + new records.
    let method = RtMethod::Commu;
    let msets = workload(method);
    let path = tmp("journal-extend.q");
    let _ = std::fs::remove_file(&path);
    let boundary;
    {
        let mut j = ApplyJournal::open(&path).unwrap();
        j.record(&msets[0]);
        boundary = std::fs::metadata(&path).unwrap().len();
        j.record(&msets[1]);
    }
    // Tear the second record in half.
    let full = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(boundary + (full - boundary) / 2).unwrap();
    drop(f);
    {
        let mut j = ApplyJournal::open(&path).unwrap();
        assert_eq!(j.replay(), &msets[..1]);
        j.record(&msets[2]);
    }
    let j = ApplyJournal::open(&path).unwrap();
    assert_eq!(j.replay(), vec![msets[0].clone(), msets[2].clone()]);
    std::fs::remove_file(&path).ok();
}

/// Drives a fresh core through the first `upto` workload entries and
/// returns it (the checkpoint-cut donor and the never-crashed
/// reference).
fn driven(method: RtMethod, msets: &[MSet], upto: usize) -> NodeCore {
    let mut core = NodeCore::fresh(
        SiteState::new(method, SiteId(1)),
        method,
        SiteId(1),
        3,
        None,
    );
    for m in &msets[..upto] {
        core.step(NodeEvent::PeerFrame(Frame::MSet(m.clone())));
    }
    core
}

#[test]
fn snapshot_truncation_at_every_offset_falls_back_to_full_replay() {
    // A snapshot container cut at *any* byte short of its full length
    // must be rejected whole (the CRC/length checks), sending boot down
    // the full-replay path — and the one complete container must take
    // the restore path. Either way the recovered state matches the
    // never-crashed reference. This is the crash-during-install story:
    // install() goes tmp + rename, so a torn visible container only
    // exists if the disk lied — and even then nothing breaks.
    const CUT_AT: usize = 4;
    for method in METHODS {
        let msets = workload(method);
        let reference = driven(method, &msets, msets.len());

        let mut donor = driven(method, &msets, CUT_AT);
        let effects = donor.step(NodeEvent::Checkpoint {
            through: Some(CUT_AT as u64),
        });
        let payload = effects
            .into_iter()
            .find_map(|e| match e {
                Effect::Checkpoint(p) => Some(*p),
                _ => None,
            })
            .unwrap();
        let container = snapshot::encode_container(1, &encode_payload(&payload));

        let dir = tmp(&format!("snapcut-{method:?}"));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = "site-1";
        let mut restores = 0;
        for cut in 0..=container.len() {
            let snap_path = dir.join(format!("{prefix}.ckpt-1.snap"));
            std::fs::write(&snap_path, &container[..cut]).unwrap();

            // The daemon's boot decision, in miniature.
            let recovered = match snapshot::load_newest(&dir, prefix)
                .unwrap()
                .and_then(|(_, bytes)| decode_payload(&bytes))
            {
                Some(p) => {
                    restores += 1;
                    let suffix: Vec<MSet> = msets
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| {
                            p.covered_through.is_none_or(|c| (*i as u64 + 1) > c)
                        })
                        .map(|(_, m)| m.clone())
                        .collect();
                    NodeCore::restore(method, SiteId(1), 3, None, 0, p, suffix)
                        .unwrap()
                        .0
                }
                None => {
                    let (core, _) = recover(method, msets.clone());
                    core
                }
            };
            assert_eq!(
                recovered.state.snapshot(),
                reference.state.snapshot(),
                "{method:?} snapshot cut at {cut}: recovery diverged"
            );
            std::fs::remove_file(&snap_path).ok();
        }
        assert_eq!(
            restores, 1,
            "{method:?}: only the complete container may restore"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn truncation_ack_crash_at_every_offset_keeps_recovery_exact() {
    // Crash mid-*retirement*: retire_through appends one ack record
    // per covered entry, and a cut can land inside any of them. However
    // many acks survive, reopen + snapshot-restore + suffix replay must
    // reach the reference state — surviving covered entries are an
    // over-approximated suffix the restore path absorbs.
    const CUT_AT: u64 = 4;
    let method = RtMethod::Commu;
    let msets = workload(method);
    let reference = driven(method, &msets, msets.len());

    // The four covered records carry FileQueue ids 0..=3, so the cut's
    // entry-id high-water mark is 3.
    let mut donor = driven(method, &msets, CUT_AT as usize);
    let effects = donor.step(NodeEvent::Checkpoint { through: Some(CUT_AT - 1) });
    let payload = effects
        .into_iter()
        .find_map(|e| match e {
            Effect::Checkpoint(p) => Some(*p),
            _ => None,
        })
        .unwrap();
    let payload_bytes = encode_payload(&payload);

    // Journal all six entries, then retire the covered prefix; every
    // byte between "no acks" and "all acks" is a crash point.
    let path = tmp("journal-ackcut.q");
    let _ = std::fs::remove_file(&path);
    let before_acks;
    {
        let mut j = ApplyJournal::open(&path).unwrap();
        for m in &msets {
            j.record(m);
        }
        before_acks = std::fs::metadata(&path).unwrap().len();
        assert_eq!(j.retire_through(CUT_AT - 1), CUT_AT);
    }
    let full = std::fs::metadata(&path).unwrap().len();
    assert!(full > before_acks, "retirement must write ack records");
    let bytes = std::fs::read(&path).unwrap();

    for cut in before_acks..=full {
        let torn = tmp(&format!("journal-ackcut-{cut}.q"));
        std::fs::write(&torn, &bytes[..cut as usize]).unwrap();

        let j = ApplyJournal::open(&torn).unwrap();
        let live = j.live_entries();
        assert!(
            (2..=6).contains(&live),
            "cut at {cut}: implausible live count {live}"
        );
        let p = decode_payload(&payload_bytes).unwrap();
        let suffix: Vec<MSet> = j
            .replay_entries()
            .into_iter()
            .filter(|(id, _)| p.covered_through.is_none_or(|c| *id > c))
            .map(|(_, m)| m)
            .collect();
        let (recovered, _) =
            NodeCore::restore(method, SiteId(1), 3, None, 0, p, suffix).unwrap();
        assert_eq!(
            recovered.state.snapshot(),
            reference.state.snapshot(),
            "cut at {cut}: post-retirement recovery diverged"
        );
        std::fs::remove_file(&torn).ok();
    }
    std::fs::remove_file(&path).ok();
}
