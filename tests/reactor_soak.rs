//! Reactor fan-in and backpressure: the event-driven daemon under
//! hostile client behaviour.
//!
//! Two properties a thread-per-connection daemon cannot offer:
//!
//! * **Flat thread count under fan-in** — hundreds of concurrent
//!   long-lived client connections are multiplexed by ONE reactor
//!   thread; the process thread count stays flat and the
//!   `esr_reactor_connections` gauge proves every socket is live at
//!   once.
//! * **Backpressure instead of unbounded buffering** — a client that
//!   requests far more reply bytes than it reads parks its replies in a
//!   bounded per-connection write buffer; the daemon stops *reading*
//!   that connection when the buffer passes its cap, stays fully
//!   responsive to everyone else, and delivers every reply once the
//!   slow reader finally drains.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use bytes::Bytes;

use esr::core::ids::{ClientId, VersionTs};
use esr::core::{EtId, ObjectId, ObjectOp, Operation, SiteId, Value};
use esr::net::rpc::{read_frame, seal, unseal, write_frame, KIND_CLIENT, NO_ENTRY};
use esr::replica::mset::MSet;
use esr::replica::wire::{decode_frame, encode_frame, Frame};
use esr::runtime::{Daemon, DaemonConfig, RpcClient, RtMethod};

/// A unique private cluster directory for one test.
fn cluster_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "esr-reactor-soak-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// This process's current thread count, from `/proc/self/status`.
fn thread_count() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("Threads:")
                    .and_then(|v| v.trim().parse().ok())
            })
        })
        .expect("read /proc/self/status")
}

/// Connects with retries — a connect burst larger than the listener
/// backlog gets SYNs dropped until the reactor catches up.
fn connect_patiently(addr: SocketAddr) -> RpcClient {
    for _ in 0..100 {
        if let Ok(c) = RpcClient::connect(addr) {
            return c;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("could not connect to daemon at {addr}");
}

const SOAK_CLIENTS: usize = 512;
const WORKERS: usize = 8;

#[test]
fn soak_many_concurrent_clients_on_one_reactor_thread() {
    let daemon = Daemon::start(DaemonConfig {
        site: SiteId(0),
        sites: 1,
        method: RtMethod::Commu,
        dir: cluster_dir("soak"),
        ckpt_bytes: None,
    })
    .expect("start daemon");
    let addr = daemon.addr();
    let threads_before = thread_count();

    // Open every connection and hold all of them open at once.
    let pool = Mutex::new(Vec::with_capacity(SOAK_CLIENTS));
    let cursor = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..WORKERS {
            s.spawn(|| loop {
                if cursor.fetch_add(1, Ordering::Relaxed) as usize >= SOAK_CLIENTS {
                    return;
                }
                let c = connect_patiently(addr);
                pool.lock().unwrap().push(Mutex::new(c));
            });
        }
    });
    let clients = pool.into_inner().unwrap();
    assert_eq!(clients.len(), SOAK_CLIENTS);

    // Every client completes a submit round while all sockets stay open.
    let cursor = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..WORKERS {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= SOAK_CLIENTS {
                    return;
                }
                let et = EtId(i as u64);
                let mset = MSet::new(
                    et,
                    SiteId(0),
                    vec![ObjectOp::new(
                        ObjectId(i as u64 % 64),
                        Operation::Incr(1),
                    )],
                );
                let acked = clients[i].lock().unwrap().submit(mset).expect("submit");
                assert_eq!(acked, et);
            });
        }
    });

    // The reactor's own gauge sees every connection live at once.
    let metrics = clients[0]
        .lock()
        .unwrap()
        .metrics()
        .expect("metrics scrape");
    let gauge: u64 = metrics
        .lines()
        .find(|l| l.starts_with("esr_reactor_connections") && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("esr_reactor_connections series");
    assert!(
        gauge >= SOAK_CLIENTS as u64,
        "reactor gauge {gauge} < {SOAK_CLIENTS} live connections"
    );

    // Flat thread count: fan-in cost buffers, not OS threads. The
    // worker threads above have exited; anything near one-per-client
    // would mean the reactor regressed to thread-per-connection.
    let threads_now = thread_count();
    assert!(
        threads_now < threads_before + 20,
        "thread count grew {threads_before} -> {threads_now} under {SOAK_CLIENTS} connections"
    );
}

/// Number of oversized-reply requests the stalled reader sends: enough
/// reply bytes to overrun the write-buffer cap many times over.
const STALLED_REQUESTS: usize = 200;
const PRELOAD_OBJECTS: u64 = 16;
const TEXT_BYTES: usize = 1024;

#[test]
fn slow_reader_is_backpressured_while_daemon_stays_responsive() {
    let daemon = Daemon::start(DaemonConfig {
        site: SiteId(0),
        sites: 1,
        method: RtMethod::Ritu,
        dir: cluster_dir("slow"),
        ckpt_bytes: None,
    })
    .expect("start daemon");
    let addr = daemon.addr();

    // Preload the store so every Snapshot reply is ~16 KiB: 200 of them
    // total ~3 MiB, far past the per-connection write-buffer cap.
    let mut loader = connect_patiently(addr);
    for i in 0..PRELOAD_OBJECTS {
        let mset = MSet::new(
            EtId(i),
            SiteId(0),
            vec![ObjectOp::new(
                ObjectId(i),
                Operation::TimestampedWrite(
                    VersionTs::new(i + 1, ClientId::new(1)),
                    Value::Text("x".repeat(TEXT_BYTES)),
                ),
            )],
        );
        loader.submit(mset).expect("preload submit");
    }
    let snap = loader.snapshot().expect("snapshot");
    assert_eq!(snap.len(), PRELOAD_OBJECTS as usize);

    // The stalled reader: fire a burst of Snapshot requests and read
    // nothing. The daemon can only buffer its replies up to the cap;
    // past that it must stop reading this socket, not grow the buffer.
    let mut stalled = TcpStream::connect(addr).expect("connect stalled client");
    stalled.set_nodelay(true).expect("nodelay");
    stalled.write_all(&[KIND_CLIENT]).expect("kind byte");
    let request = seal(NO_ENTRY, &encode_frame(&Frame::Snapshot));
    for _ in 0..STALLED_REQUESTS {
        write_frame(&mut stalled, &request).expect("send stalled request");
    }
    std::thread::sleep(Duration::from_millis(300));

    // Everyone else is unaffected while the stalled connection is
    // parked: a full sweep of fresh RPCs completes promptly.
    let started = Instant::now();
    let mut probe = connect_patiently(addr);
    for _ in 0..20 {
        probe.status().expect("status during stall");
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "daemon unresponsive behind a stalled reader: {:?}",
        started.elapsed()
    );

    // The slow reader finally drains: every reply arrives, in order,
    // none lost to the backpressure window.
    stalled
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    for i in 0..STALLED_REQUESTS {
        let env = unseal(read_frame(&mut stalled).unwrap_or_else(|e| {
            panic!("reply {i}/{STALLED_REQUESTS} missing after drain: {e}")
        }))
        .expect("unseal reply");
        match decode_frame(&Bytes::from(env.payload)).expect("decode reply") {
            Frame::SnapshotOk { entries } => {
                assert_eq!(entries.len(), PRELOAD_OBJECTS as usize, "reply {i}");
            }
            other => panic!("reply {i}: unexpected frame {other:?}"),
        }
    }
}
