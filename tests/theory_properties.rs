//! Property-based tests of the ESR theory (esr-core).
//!
//! The conflict-graph serializability test is validated against the
//! exponential brute-force oracle; the overlap theorem (error ≤ overlap)
//! is checked on arbitrary histories; the operation algebra's
//! commutativity and compensation laws hold for arbitrary operands.

use std::collections::BTreeMap;

use proptest::prelude::*;

use esr::core::history::{History, HistoryEvent};
use esr::core::overlap::{all_errors_within_overlap, imported_inconsistency, overlap_set};
use esr::core::serializability::{
    is_epsilon_serializable, is_final_state_serializable, is_serializable, serialization_order,
};
use esr::core::{EtId, EtKind, ObjectId, ObjectOp, Operation, Value};

/// Integer-typed operations only, so any interleaving executes cleanly.
fn arb_op() -> impl Strategy<Value = Operation> {
    prop_oneof![
        Just(Operation::Read),
        (-50i64..50).prop_map(|v| Operation::Write(Value::Int(v))),
        (1i64..10).prop_map(Operation::Incr),
        (1i64..10).prop_map(Operation::Decr),
        (1i64..4).prop_map(Operation::MulBy),
    ]
}

fn arb_event(max_ets: u64, max_objects: u64) -> impl Strategy<Value = HistoryEvent> {
    (1..=max_ets, 0..max_objects, arb_op()).prop_map(|(et, obj, op)| {
        HistoryEvent::new(EtId(et), ObjectOp::new(ObjectId(obj), op))
    })
}

fn arb_history() -> impl Strategy<Value = History> {
    prop::collection::vec(arb_event(5, 3), 0..14).prop_map(History::from_events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Soundness: conflict-serializable histories are final-state
    /// serializable (the serial order produced by the graph works).
    #[test]
    fn conflict_sr_implies_final_state_sr(h in arb_history()) {
        if is_serializable(&h) {
            prop_assert!(is_final_state_serializable(&h, &BTreeMap::new()));
        }
    }

    /// Stronger: the topological order itself reproduces the final state.
    #[test]
    fn serialization_order_reproduces_final_state(h in arb_history()) {
        if let Some(order) = serialization_order(&h) {
            let programs = h.programs();
            let ordered: Vec<_> = order
                .iter()
                .map(|et| programs.iter().find(|p| p.id == *et).expect("et exists").clone())
                .collect();
            let serial = History::serial(&ordered);
            let a = h.execute(&BTreeMap::new()).expect("int ops execute");
            let b = serial.execute(&BTreeMap::new()).expect("int ops execute");
            prop_assert_eq!(a.final_state, b.final_state);
        }
    }

    /// The overlap theorem (§2.1): the inconsistency a query actually
    /// imported is always inside its overlap set.
    #[test]
    fn imported_error_is_within_overlap(h in arb_history()) {
        prop_assert!(all_errors_within_overlap(&h));
        for et in h.ets() {
            if h.kind_of(et) == Some(EtKind::Query) {
                prop_assert!(imported_inconsistency(&h, et).is_subset(&overlap_set(&h, et)));
            }
        }
    }

    /// Deleting query ETs can only help: an SR history stays ε-serial.
    #[test]
    fn sr_implies_epsilon_serializable(h in arb_history()) {
        if is_serializable(&h) {
            prop_assert!(is_epsilon_serializable(&h));
        }
    }

    /// The update projection contains no query-ET events.
    #[test]
    fn projection_drops_exactly_queries(h in arb_history()) {
        let p = h.project_updates();
        for et in p.ets() {
            prop_assert_eq!(h.kind_of(et), Some(EtKind::Update));
        }
        // And every update event survives.
        let update_events = h
            .events()
            .iter()
            .filter(|e| h.kind_of(e.et) == Some(EtKind::Update))
            .count();
        prop_assert_eq!(p.len(), update_events);
    }

    /// Commutativity is symmetric for arbitrary operand values.
    #[test]
    fn commutativity_is_symmetric(a in arb_op(), b in arb_op()) {
        prop_assert_eq!(a.commutes_with(&b), b.commutes_with(&a));
    }

    /// Declared-commutative integer operations really commute as state
    /// transformers (on overflow-free operands).
    #[test]
    fn declared_commutative_ops_commute_on_values(
        a in arb_op(),
        b in arb_op(),
        start in -1000i64..1000,
    ) {
        prop_assume!(a.is_write() && b.is_write());
        if a.commutes_with(&b) {
            let x = ObjectId(0);
            let v = Value::Int(start);
            let ab = b.apply(x, &a.apply(x, &v).unwrap()).unwrap();
            let ba = a.apply(x, &b.apply(x, &v).unwrap()).unwrap();
            prop_assert_eq!(ab, ba, "{} vs {}", a, b);
        }
    }

    /// Compensations are exact inverses wherever they are defined.
    #[test]
    fn compensation_round_trips(op in arb_op(), start in -10_000i64..10_000) {
        if let Some(comp) = op.compensation() {
            let x = ObjectId(0);
            let v = Value::Int(start);
            let forward = op.apply(x, &v).unwrap();
            let back = comp.apply(x, &forward).unwrap();
            prop_assert_eq!(back, v);
        }
    }

    /// Overlap sets only ever contain update ETs, never the query itself.
    #[test]
    fn overlap_contains_only_updates(h in arb_history()) {
        for et in h.ets() {
            let o = overlap_set(&h, et);
            prop_assert!(!o.contains(&et));
            for u in o {
                prop_assert_eq!(h.kind_of(u), Some(EtKind::Update));
            }
        }
    }
}

/// The paper's example log (1) is the canonical fixture: not SR, but
/// ε-serial, with `Q3` overlapping `U2`.
#[test]
fn paper_example_log_is_the_canonical_fixture() {
    let h = History::paper_example_log1();
    assert!(!is_serializable(&h));
    assert!(is_epsilon_serializable(&h));
    let overlap = overlap_set(&h, EtId(3));
    assert!(overlap.contains(&EtId(2)));
}
