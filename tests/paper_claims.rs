//! Integration: every experiment in the suite upholds its paper claim on
//! test-sized parameters, and the regenerated tables match the paper.

use esr::workload::exp::{
    e10_partition, e4_epsilon, e5_bound, e6_convergence, e7_sync_async, e8_compensation, e9_vtnc,
    table1,
};

#[test]
fn table1_regenerates_from_probes() {
    let cols = table1::run();
    let rendered = table1::render(&cols);
    // The four columns and four dimensions of the paper's Table 1.
    for needle in [
        "ORDUP",
        "COMMU",
        "RITU",
        "COMPE",
        "message delivery",
        "operation semantics",
        "operation value",
        "query only",
        "query & update",
        "at update",
        "doesn't matter",
        "at read",
    ] {
        assert!(rendered.contains(needle), "table 1 missing {needle:?}");
    }
}

#[test]
fn e4_epsilon_dial_tunes_down_to_strict_sr() {
    let p = e4_epsilon::E4Params::quick();
    let rows = e4_epsilon::run(&p);
    assert!(e4_epsilon::claim_holds(&rows));
}

#[test]
fn e5_error_never_exceeds_charge() {
    let p = e5_bound::E5Params::quick();
    let rows = e5_bound::run(&p);
    assert!(e5_bound::claim_holds(&rows));
    // And the experiment is not vacuous.
    assert!(rows.iter().map(|r| r.charge.total).sum::<u64>() > 0);
}

#[test]
fn e6_all_methods_converge_to_the_oracle() {
    let p = e6_convergence::E6Params::quick();
    let rows = e6_convergence::run(&p);
    assert!(e6_convergence::claim_holds(&rows));
}

#[test]
fn e7_async_beats_synchronous_coherency_control() {
    let p = e7_sync_async::E7Params::quick();
    let lat = e7_sync_async::run_latency_sweep(&p);
    let size = e7_sync_async::run_size_sweep(&p);
    assert!(e7_sync_async::claim_holds(&lat, &size));
}

#[test]
fn e8_compensation_costs_match_section_4_analysis() {
    let p = e8_compensation::E8Params::quick();
    let rows = e8_compensation::run(&p);
    assert!(e8_compensation::claim_holds(&rows));
}

#[test]
fn e9_vtnc_budget_buys_freshness() {
    let p = e9_vtnc::E9Params::quick();
    let rows = e9_vtnc::run(&p);
    assert!(e9_vtnc::claim_holds(&rows));
}

#[test]
fn e10_async_stays_available_under_partition() {
    let p = e10_partition::E10Params::quick();
    let rows = e10_partition::run(&p);
    assert!(e10_partition::claim_holds(&rows));
}
