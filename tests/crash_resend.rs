//! End-to-end crash/resend: a client persists outgoing update MSets in a
//! file-backed stable queue, "crashes" mid-replication, restarts, and
//! retries the unacknowledged tail — the replicas converge to exactly
//! the full update stream, duplicates and all. This is the paper's §2.2
//! assumption ("stable queues … persistently retry message delivery
//! until successful") demonstrated with real files and real site state
//! machines.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use esr::core::{EtId, ObjectId, ObjectOp, Operation, SiteId, Value};
use esr::replica::commu::CommuSite;
use esr::replica::mset::MSet;
use esr::replica::site::ReplicaSite;
use esr::storage::stable_queue::{FileQueue, StableQueue};

fn encode(mset: &MSet) -> Bytes {
    let mut b = BytesMut::new();
    b.put_u64(mset.et.raw());
    b.put_u64(mset.origin.raw());
    b.put_u32(mset.ops.len() as u32);
    for op in &mset.ops {
        b.put_u64(op.object.raw());
        match op.op {
            Operation::Incr(n) => {
                b.put_u8(1);
                b.put_i64(n);
            }
            Operation::Decr(n) => {
                b.put_u8(2);
                b.put_i64(n);
            }
            _ => panic!("test codec supports Incr/Decr only"),
        }
    }
    b.freeze()
}

fn decode(mut b: Bytes) -> MSet {
    let et = EtId(b.get_u64());
    let origin = SiteId(b.get_u64());
    let n = b.get_u32();
    let mut ops = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let obj = ObjectId(b.get_u64());
        let tag = b.get_u8();
        let v = b.get_i64();
        let op = match tag {
            1 => Operation::Incr(v),
            2 => Operation::Decr(v),
            _ => unreachable!(),
        };
        ops.push(ObjectOp::new(obj, op));
    }
    MSet::new(et, origin, ops)
}

/// Delivers up to `limit` pending entries from the queue to the sites,
/// acking each delivered entry. Returns entries delivered.
fn pump(queue: &mut FileQueue, sites: &mut [CommuSite], limit: usize) -> usize {
    let batch = queue.pending(limit);
    for (id, payload) in &batch {
        let mset = decode(payload.clone());
        for site in sites.iter_mut() {
            site.deliver(mset.clone());
        }
        assert!(queue.ack(*id));
    }
    batch.len()
}

#[test]
fn replication_survives_sender_crash_and_restart() {
    let path = std::env::temp_dir().join(format!("esr-crash-resend-{}.q", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let mut sites: Vec<CommuSite> = (0..3).map(|i| CommuSite::new(SiteId(i))).collect();
    let account = ObjectId(0);

    // Phase 1: the client enqueues 10 updates durably, but only 4 get
    // pumped to the replicas before the crash.
    {
        let mut queue = FileQueue::open(&path).expect("open");
        for i in 1..=10u64 {
            let mset = MSet::new(
                EtId(i),
                SiteId(0),
                vec![ObjectOp::new(account, Operation::Incr(i as i64))],
            );
            queue.enqueue(encode(&mset));
        }
        assert_eq!(pump(&mut queue, &mut sites, 4), 4);
        // Crash: queue dropped without acking the remaining 6.
    }
    let partial: i64 = (1..=4).sum();
    assert_eq!(sites[0].snapshot()[&account], Value::Int(partial));

    // Phase 2: restart. Recovery finds exactly the unacked 6 and the
    // retry loop drains them. One entry is (redundantly) delivered twice
    // to prove idempotence end-to-end.
    {
        let mut queue = FileQueue::open(&path).expect("reopen");
        assert_eq!(queue.len(), 6, "exactly the unsent tail survives");
        // Duplicate delivery of the first pending entry before acking:
        let (first_id, payload) = queue.pending(1).pop().expect("pending");
        let dup = decode(payload);
        for site in sites.iter_mut() {
            site.deliver(dup.clone());
        }
        let _ = first_id; // not acked: the pump will deliver it again
        while pump(&mut queue, &mut sites, 2) > 0 {}
        assert!(queue.is_empty(), "everything delivered and acked");
    }

    // All replicas hold the full sum, exactly once per update.
    let total: i64 = (1..=10).sum();
    for (i, site) in sites.iter().enumerate() {
        assert_eq!(
            site.snapshot()[&account],
            Value::Int(total),
            "site {i} diverged"
        );
        assert_eq!(site.applied(), 10, "site {i} applied a duplicate");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn interleaved_crashes_of_two_senders_converge() {
    let dir = std::env::temp_dir();
    let p0 = dir.join(format!("esr-crash-a-{}.q", std::process::id()));
    let p1 = dir.join(format!("esr-crash-b-{}.q", std::process::id()));
    let _ = std::fs::remove_file(&p0);
    let _ = std::fs::remove_file(&p1);

    let mut sites: Vec<CommuSite> = (0..2).map(|i| CommuSite::new(SiteId(i))).collect();
    let obj = ObjectId(7);

    // Sender A enqueues evens, sender B odds; both crash once mid-way.
    for (path, base) in [(&p0, 0u64), (&p1, 100u64)] {
        let mut q = FileQueue::open(path).expect("open");
        for i in 1..=6u64 {
            let mset = MSet::new(
                EtId(base + i),
                SiteId(0),
                vec![ObjectOp::new(obj, Operation::Incr(1))],
            );
            q.enqueue(encode(&mset));
        }
        pump(&mut q, &mut sites, 3);
        // crash (drop)
    }
    // Both recover and drain fully.
    for path in [&p0, &p1] {
        let mut q = FileQueue::open(path).expect("reopen");
        while pump(&mut q, &mut sites, 10) > 0 {}
        assert!(q.is_empty());
    }
    for site in &sites {
        assert_eq!(site.snapshot()[&obj], Value::Int(12));
    }
    std::fs::remove_file(&p0).unwrap();
    std::fs::remove_file(&p1).unwrap();
}
