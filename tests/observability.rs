//! End-to-end observability: the `esr-obs` registry threaded through
//! the simulated cluster and the thread runtime.
//!
//! Three guarantees under test:
//!
//! 1. **Determinism** — a simulated run reads only the virtual clock, so
//!    the same seed must produce a *byte-identical* metrics snapshot.
//! 2. **Accounting** — at quiescence the live inconsistency series agree
//!    with the oracles: divergence gauges are 0 at every site, epsilon
//!    charged never exceeds the admitted limit, and the core delivery
//!    counters match what the run actually did.
//! 3. **Recovery** — on the thread runtime a crash/restart run must end
//!    with zero divergence while the replay counter proves the journal
//!    recovery actually fired.

use std::path::PathBuf;

use esr::core::{EpsilonSpec, ObjectId, ObjectOp, Operation, SiteId, Value};
use esr::net::latency::LatencyModel;
use esr::net::topology::LinkConfig;
use esr::replica::cluster::{ClusterConfig, Method, SimCluster};
use esr::runtime::{Cluster, FaultPlan, RtMethod};
use esr::sim::time::Duration;

const SITES: u64 = 3;
const UPDATES: u64 = 12;

fn lossy_config(method: Method, seed: u64) -> ClusterConfig {
    ClusterConfig::new(method)
        .with_sites(SITES as usize)
        .with_link(LinkConfig {
            latency: LatencyModel::Uniform(Duration::from_millis(1), Duration::from_millis(25)),
            drop_prob: 0.15,
            duplicate_prob: 0.1,
            bandwidth: None,
        })
        .with_seed(seed)
        .with_abort_prob(if method == Method::Compe { 0.25 } else { 0.0 })
}

/// Drives one full scenario: updates from rotating origins, a bounded
/// query mid-stream at every site (some may be rejected — that is part
/// of the scenario), quiesce, then a bounded query per site at rest.
fn run_scenario(method: Method, seed: u64) -> SimCluster {
    let mut cluster = SimCluster::new(lossy_config(method, seed));
    for i in 0..UPDATES {
        match method {
            Method::RituOverwrite | Method::RituMv => {
                cluster.submit_blind_write(SiteId(i % SITES), ObjectId(i % 2), Value::Int(i as i64));
            }
            _ => {
                cluster.submit_update(
                    SiteId(i % SITES),
                    vec![ObjectOp::new(ObjectId(i % 2), Operation::Incr(1 + i as i64))],
                );
            }
        }
        if i == UPDATES / 2 {
            for s in 0..SITES {
                let _ = cluster.try_query(SiteId(s), &[ObjectId(0)], EpsilonSpec::bounded(2));
            }
        }
    }
    cluster.run_until_quiescent();
    for s in 0..SITES {
        let out = cluster.try_query(SiteId(s), &[ObjectId(0)], EpsilonSpec::bounded(1_000));
        assert!(
            out.admitted,
            "{}: site {s} rejected a generous query at quiescence",
            method.name()
        );
    }
    cluster
}

#[test]
fn same_seed_yields_byte_identical_metrics_snapshot() {
    for method in Method::ALL {
        let a = run_scenario(method, 0xE5B).metrics().render();
        let b = run_scenario(method, 0xE5B).metrics().render();
        assert!(!a.is_empty());
        assert_eq!(
            a,
            b,
            "{}: metrics snapshots differ across identical seeded runs",
            method.name()
        );
    }
}

#[test]
fn different_seeds_are_observably_different_somewhere() {
    // Sanity check that the determinism test above is not vacuous: the
    // registry reflects the run closely enough that fault seeds leave a
    // visible mark at least for one method.
    let distinct = Method::ALL.iter().any(|&m| {
        run_scenario(m, 1).metrics().render() != run_scenario(m, 2).metrics().render()
    });
    assert!(distinct, "metrics never vary with the fault seed");
}

#[test]
fn divergence_zero_and_epsilon_bounded_at_quiescence_for_all_methods() {
    for method in Method::ALL {
        let cluster = run_scenario(method, 7);
        assert!(cluster.converged(), "{} diverged", method.name());
        let snap = cluster.metrics().snapshot();
        for s in 0..SITES {
            let site = s.to_string();
            let divergence = snap
                .value("esr_divergence", &[("site", &site)])
                .unwrap_or_else(|| panic!("{}: no divergence gauge for site {s}", method.name()));
            assert_eq!(
                divergence,
                0,
                "{}: site {s} reports nonzero divergence at quiescence",
                method.name()
            );
            let labels: &[(&str, &str)] = &[("method", method.name()), ("site", &site)];
            let charged = snap
                .value("esr_query_epsilon_charged", labels)
                .unwrap_or_else(|| panic!("{}: no epsilon gauge for site {s}", method.name()));
            let limit = snap
                .value("esr_query_epsilon_limit", labels)
                .unwrap_or_else(|| panic!("{}: no limit gauge for site {s}", method.name()));
            assert!(
                charged <= limit,
                "{}: site {s} admitted a query charging {charged} over limit {limit}",
                method.name()
            );
            // The quiescent query read a fully-settled replica.
            assert_eq!(charged, 0, "{}: site {s} charged at quiescence", method.name());
        }
        if method == Method::RituMv {
            for s in 0..SITES {
                let lag = snap
                    .value("esr_vtnc_lag", &[("site", &s.to_string())])
                    .expect("RITU-MV publishes a VTNC lag gauge per site");
                assert_eq!(lag, 0, "site {s} VTNC horizon lags at quiescence");
            }
        }
    }
}

#[test]
fn delivery_counters_match_the_run() {
    let method = Method::Commu;
    let cluster = run_scenario(method, 11);
    let snap = cluster.metrics().snapshot();
    assert_eq!(
        snap.value(
            "esr_updates_submitted_total",
            &[("method", method.name())]
        ),
        Some(UPDATES as i64)
    );
    // Every site applies every update exactly once, duplicates land in
    // the redelivered counter instead.
    for s in 0..SITES {
        let labels: &[(&str, &str)] = &[("method", method.name()), ("site", &s.to_string())];
        assert_eq!(
            snap.value("esr_msets_applied_total", labels),
            Some(UPDATES as i64),
            "site {s} applied-count wrong"
        );
        let delivered = snap
            .value("esr_msets_delivered_total", labels)
            .expect("delivered series exists");
        let redelivered = snap.value("esr_redelivered_total", labels).unwrap_or(0);
        assert_eq!(
            delivered - redelivered,
            UPDATES as i64,
            "site {s}: delivered minus redelivered must equal the unique updates"
        );
        assert_eq!(
            snap.value("esr_backlog", labels),
            Some(0),
            "site {s} backlog gauge nonzero at quiescence"
        );
    }
    assert_eq!(
        snap.value("esr_overlap_inflight", &[]),
        Some(0),
        "in-flight overlap gauge nonzero at quiescence"
    );
    assert_eq!(
        snap.value("esr_quiescence_progress_permille", &[]),
        Some(1000),
        "quiescence progress must read 1000 permille after run_until_quiescent"
    );
}

/// A unique private directory for one thread-runtime cluster.
fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("esr-obs-{}-{tag}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn chaos_recovery_ends_with_zero_divergence_and_counted_replays() {
    let dir = fresh_dir("recovery");
    let plan = FaultPlan::new(0xBEEF).with_drops(0.2).with_duplicates(0.1);
    let mut c = Cluster::chaos(RtMethod::Commu, SITES as usize, plan, &dir);
    for i in 0..UPDATES {
        c.submit_update(
            SiteId(i % SITES),
            vec![ObjectOp::new(ObjectId(0), Operation::Incr(1 + i as i64))],
        );
    }
    c.quiesce();
    c.crash(SiteId(1));
    for i in UPDATES..2 * UPDATES {
        c.submit_update(
            SiteId(i % SITES),
            vec![ObjectOp::new(ObjectId(0), Operation::Incr(1 + i as i64))],
        );
    }
    c.restart(SiteId(1));
    c.quiesce();
    assert!(c.converged(), "replicas diverged after recovery");

    let snap = c.metrics().snapshot();
    for s in 0..SITES {
        assert_eq!(
            snap.value("esr_divergence", &[("site", &s.to_string())]),
            Some(0),
            "site {s} divergence gauge nonzero after recovery"
        );
    }
    let replays = snap
        .value("esr_recovery_replays_total", &[("site", "1")])
        .expect("restarted site registers a replay counter");
    assert!(
        replays > 0,
        "site 1 was quiesced before the crash, its journal replay must be visible"
    );
    // The restarted incarnation re-registered the same series: applied
    // counts survive the crash and keep growing monotonically.
    let applied = snap
        .value(
            "esr_msets_applied_total",
            &[("method", "commu"), ("site", "1")],
        )
        .expect("site 1 applied counter survives restart");
    assert!(applied >= 2 * UPDATES as i64, "applied counter went backwards");
    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quiesce_timeout_reports_per_site_queue_depths() {
    let dir = fresh_dir("timeout");
    let plan = FaultPlan::new(1).with_drops(0.0);
    let mut c = Cluster::chaos(RtMethod::Commu, 3, plan, &dir);
    c.submit_update(SiteId(0), vec![ObjectOp::new(ObjectId(0), Operation::Incr(1))]);
    c.crash(SiteId(2));
    c.submit_update(SiteId(0), vec![ObjectOp::new(ObjectId(0), Operation::Incr(1))]);
    let err = c
        .quiesce_within(std::time::Duration::from_millis(300))
        .expect_err("a cluster with a dead site cannot quiesce");
    assert_eq!(err.site_queues.len(), 3, "one queue-depth slot per site");
    let msg = err.to_string();
    assert!(
        msg.contains("per-site queue depths"),
        "timeout error must carry the queue depths: {msg}"
    );
    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
