//! esr-trace end-to-end: every ET's lifecycle is reconstructible as one
//! causally ordered cross-site timeline from the daemons' span rings.
//!
//! The scenarios mirror `proc_cluster.rs` (real `esrd` processes on
//! loopback) but the oracle is the *trace plane*: after quiescence,
//! scraping every site's ring for an ET and merging
//! (`esr_runtime::merge_timeline`) must yield a complete lifecycle —
//! submit at the origin, an enqueue per peer, a deliver at every peer,
//! an apply (or journal-replayed `replay`) at every site, and the
//! completion/decision certificates — ordered by happens-before rank,
//! never by wall clocks. The failover scenario is the hard case: the
//! coordinator is `SIGKILL`ed mid-stream, its span ring dies with the
//! process, and the restarted incarnation's journal-replay spans must
//! still stitch into the cluster-wide timeline where the lost apply
//! spans were. `esrctl spans` is exercised as a real subprocess, since
//! the CLI (site discovery, merge, render) is the operator-facing
//! artifact the subsystem exists for.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use esr::core::{EtId, ObjectId, ObjectOp, Operation, SiteId, Value};
use esr::replica::span::SpanStage;
use esr::runtime::{merge_timeline, ProcCluster, RtMethod, SiteSpan};

const X: ObjectId = ObjectId(0);
const Y: ObjectId = ObjectId(1);
const N: usize = 3;
const FAILOVER: Duration = Duration::from_secs(45);

fn esrd() -> &'static str {
    env!("CARGO_BIN_EXE_esrd")
}

fn esrctl() -> &'static str {
    env!("CARGO_BIN_EXE_esrctl")
}

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("esr-spans-{}-{tag}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Same order-insensitive workload shapes as `proc_cluster.rs`.
fn submit(c: &ProcCluster, method: RtMethod, i: u64, origins: &[u64]) -> EtId {
    let origin = SiteId(origins[i as usize % origins.len()]);
    let result = match method {
        RtMethod::Ordup => {
            if i % 3 == 2 {
                c.submit_update(origin, vec![ObjectOp::new(X, Operation::MulBy(2))])
            } else {
                c.submit_update(
                    origin,
                    vec![
                        ObjectOp::new(X, Operation::Incr(i as i64 + 1)),
                        ObjectOp::new(Y, Operation::Incr(1)),
                    ],
                )
            }
        }
        RtMethod::Commu | RtMethod::Compe => c.submit_update(
            origin,
            vec![
                ObjectOp::new(X, Operation::Incr(i as i64 + 1)),
                ObjectOp::new(Y, Operation::Incr(1)),
            ],
        ),
        RtMethod::Ritu | RtMethod::RituMv => c.submit_blind_write(origin, X, Value::Int(i as i64)),
    };
    result.unwrap_or_else(|e| panic!("{method:?}: submit {i} failed: {e}"))
}

/// The test's own mirror of the happens-before ranks, so the assertion
/// does not trust the implementation's private ordering.
fn rank(stage: SpanStage) -> u8 {
    match stage {
        SpanStage::Submit => 0,
        SpanStage::Enqueue => 1,
        SpanStage::Deliver => 2,
        SpanStage::Held => 3,
        SpanStage::Apply | SpanStage::Replay => 4,
        SpanStage::CompleteCert => 5,
        SpanStage::Complete => 6,
        SpanStage::DecisionCert => 7,
        SpanStage::Decision => 8,
        SpanStage::VtncCert => 9,
        SpanStage::Vtnc => 10,
    }
}

/// Scrapes every site's ring for `et`, merges, and asserts the core
/// lifecycle invariants: a submit + fan-out enqueues at the origin, a
/// deliver at every peer, an apply-or-replay at every site, and
/// rank-monotone (causal) ordering. `lost_ring` names a site whose
/// in-memory ring died with a `SIGKILL`: spans recorded only there
/// before the kill (its submit/enqueue as an origin, its deliver as a
/// peer) are legitimately gone — only its applies come back, as
/// journal-replayed `replay` spans. `aborted` marks a COMPE ET whose
/// abort decision may outrun the MSet to a peer: the late MSet is then
/// suppressed without ever applying (see compe.rs
/// `abort_before_delivery_suppresses_late_mset`), so only the origin's
/// optimistic apply is guaranteed. Returns the timeline for
/// method-specific assertions.
fn complete_timeline(
    c: &ProcCluster,
    et: EtId,
    origin: SiteId,
    lost_ring: Option<SiteId>,
    aborted: bool,
    what: &str,
) -> Vec<SiteSpan> {
    let per_site: Vec<_> = (0..N as u64)
        .map(|s| {
            let (dropped, spans) = c
                .spans_of(SiteId(s), et.raw())
                .unwrap_or_else(|e| panic!("{what}: span scrape of s{s} failed: {e}"));
            assert_eq!(dropped, 0, "{what}: s{s} span ring overflowed");
            (SiteId(s), spans)
        })
        .collect();
    let timeline = merge_timeline(&per_site, et);
    assert!(!timeline.is_empty(), "{what}: {et} left no spans");

    let submits: Vec<_> = timeline
        .iter()
        .filter(|s| s.rec.stage == SpanStage::Submit)
        .collect();
    if lost_ring == Some(origin) {
        assert!(
            submits.is_empty(),
            "{what}: {et} submit span should have died with {origin}'s ring"
        );
    } else {
        assert_eq!(submits.len(), 1, "{what}: {et} must have exactly one submit");
        assert_eq!(submits[0].site, origin, "{what}: {et} submit at the origin");
        assert_eq!(
            timeline[0].rec.stage,
            SpanStage::Submit,
            "{what}: {et} timeline must start at the submit"
        );
        let enqueues: Vec<_> = timeline
            .iter()
            .filter(|s| s.rec.stage == SpanStage::Enqueue)
            .collect();
        assert_eq!(enqueues.len(), N - 1, "{what}: {et} enqueue per peer");
        assert!(
            enqueues.iter().all(|s| s.site == origin),
            "{what}: {et} enqueues happen at the origin"
        );
    }

    for site in (0..N as u64).map(SiteId) {
        if site != origin && lost_ring != Some(site) {
            assert!(
                timeline
                    .iter()
                    .any(|s| s.rec.stage == SpanStage::Deliver && s.site == site),
                "{what}: {et} has no deliver at {site}"
            );
        }
        if !aborted || site == origin {
            assert!(
                timeline.iter().any(|s| {
                    (s.rec.stage == SpanStage::Apply || s.rec.stage == SpanStage::Replay)
                        && s.site == site
                }),
                "{what}: {et} has no apply/replay at {site}"
            );
        }
    }

    // Causal order: the merged timeline never steps backwards in rank.
    for w in timeline.windows(2) {
        assert!(
            rank(w[0].rec.stage) <= rank(w[1].rec.stage),
            "{what}: {et} timeline violates happens-before: {} before {}",
            w[0].rec,
            w[1].rec
        );
    }
    timeline
}

fn has_stage_at_every_site(timeline: &[SiteSpan], stage: SpanStage) -> bool {
    (0..N as u64)
        .map(SiteId)
        .all(|site| timeline.iter().any(|s| s.rec.stage == stage && s.site == site))
}

/// Every ET of a mixed run reconstructs completely, for each of the
/// five methods — including the completion / decision certificates.
#[test]
fn every_et_timeline_is_complete_for_every_method() {
    const UPDATES: u64 = 5;
    for method in [
        RtMethod::Commu,
        RtMethod::Ordup,
        RtMethod::Ritu,
        RtMethod::RituMv,
        RtMethod::Compe,
    ] {
        let dir = fresh_dir(method.name());
        let mut c = ProcCluster::spawn(esrd(), &dir, method, N)
            .unwrap_or_else(|e| panic!("{method:?}: spawn failed: {e}"));
        let ets: Vec<EtId> = (0..UPDATES)
            .map(|i| submit(&c, method, i, &[0, 1, 2]))
            .collect();
        if method == RtMethod::Compe {
            for (i, &et) in ets.iter().enumerate() {
                if i % 2 == 0 {
                    c.commit(et).unwrap_or_else(|e| panic!("commit: {e}"));
                } else {
                    c.abort(et).unwrap_or_else(|e| panic!("abort: {e}"));
                }
            }
        }
        c.quiesce();

        for (i, &et) in ets.iter().enumerate() {
            let what = format!("{method:?}");
            let origin = SiteId(i as u64 % 3);
            let aborted = method == RtMethod::Compe && i % 2 != 0;
            let timeline = complete_timeline(&c, et, origin, None, aborted, &what);
            match method {
                // COMMU and RITU certify per-ET completion; RITU-MV
                // certifies a VTNC horizon instead; ORDUP has no
                // completion plane (the sequencer's total order is the
                // guarantee); COMPE's certificate is the decision.
                RtMethod::Commu | RtMethod::Ritu => {
                    assert!(
                        has_stage_at_every_site(&timeline, SpanStage::Complete),
                        "{what}: {et} completion not observed everywhere"
                    );
                }
                RtMethod::RituMv => {
                    assert!(
                        has_stage_at_every_site(&timeline, SpanStage::Vtnc),
                        "{what}: {et} VTNC horizon not observed everywhere"
                    );
                }
                RtMethod::Compe => {
                    let want_commit = i % 2 == 0;
                    assert!(
                        (0..N as u64).map(SiteId).all(|site| {
                            timeline.iter().any(|s| {
                                s.rec.stage == SpanStage::Decision
                                    && s.site == site
                                    && s.rec.commit == Some(want_commit)
                            })
                        }),
                        "{what}: {et} decision (commit={want_commit}) not observed everywhere"
                    );
                }
                RtMethod::Ordup => {}
            }
        }
        c.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Polls `site` until it reports a view of at least `min_view`.
fn wait_for_view(c: &ProcCluster, site: SiteId, min_view: u64) -> u64 {
    let deadline = Instant::now() + FAILOVER;
    loop {
        if let Ok(s) = c.status_of(site) {
            if s.view >= min_view {
                return s.view;
            }
        }
        assert!(
            Instant::now() < deadline,
            "{site} never reached view {min_view}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// The hard case: `SIGKILL` the coordinator mid-stream. Its span ring
/// dies with the process, but after restart the journal-replay spans
/// (`replay`, rank-equal to `apply`) stitch into every pre-kill ET's
/// timeline — the reconstruction survives losing a site's entire
/// in-memory trace state.
#[test]
fn timelines_stitch_across_coordinator_failover() {
    const PHASE: u64 = 5;
    let method = RtMethod::Commu;
    let dir = fresh_dir("failover");
    let mut c = ProcCluster::spawn(esrd(), &dir, method, N).expect("spawn");

    let before: Vec<EtId> = (0..PHASE).map(|i| submit(&c, method, i, &[0, 1, 2])).collect();
    // Make sure the victim actually applied (and journalled) the
    // pre-kill stream before it dies, so replay has something to say.
    c.quiesce();

    c.kill(SiteId(0));
    wait_for_view(&c, SiteId(1), 1);
    let after: Vec<EtId> = (PHASE..2 * PHASE)
        .map(|i| submit(&c, method, i, &[1, 2]))
        .collect();

    c.restart(SiteId(0)).expect("restart site 0");
    c.quiesce();
    assert!(c.converged().expect("converged"), "cluster diverged");

    for (i, &et) in before.iter().enumerate() {
        let origin = SiteId(i as u64 % 3);
        let timeline = complete_timeline(&c, et, origin, Some(SiteId(0)), false, "pre-kill");
        // Site 0's ring died with the SIGKILL: its contribution to the
        // pre-kill ETs must be the journal-replayed span.
        assert!(
            timeline
                .iter()
                .any(|s| s.site == SiteId(0) && s.rec.stage == SpanStage::Replay),
            "{et}: restarted coordinator contributed no replay span"
        );
    }
    for (i, &et) in after.iter().enumerate() {
        // ETs submitted while the coordinator was dead originate at the
        // survivors and were delivered to site 0 fresh after its
        // restart — a live apply (and a live deliver span), not a
        // replay, so the post-kill suffix has no ring-loss holes.
        let origin = SiteId([1u64, 2][(PHASE as usize + i) % 2]);
        let timeline = complete_timeline(&c, et, origin, None, false, "post-kill");
        assert!(
            timeline
                .iter()
                .any(|s| s.site == SiteId(0) && s.rec.stage == SpanStage::Apply),
            "{et}: revived site should apply the buffered stream live"
        );
    }
    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The operator-facing CLI: `esrctl spans <et>` discovers every site
/// from the cluster directory, merges, and renders the causal timeline
/// plus the critical-path breakdown; `--skeleton` drops every
/// nondeterministic field.
#[test]
fn esrctl_spans_renders_a_causal_timeline() {
    let method = RtMethod::Commu;
    let dir = fresh_dir("esrctl");
    let mut c = ProcCluster::spawn(esrd(), &dir, method, N).expect("spawn");
    let et = submit(&c, method, 0, &[0]);
    c.quiesce();

    let run = |extra: &[&str]| -> String {
        let mut cmd = std::process::Command::new(esrctl());
        cmd.arg("--dir").arg(&dir).arg("spans").arg(et.raw().to_string());
        for a in extra {
            cmd.arg(a);
        }
        let out = cmd.output().expect("run esrctl");
        assert!(
            out.status.success(),
            "esrctl spans failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf8")
    };

    let full = run(&[]);
    for needle in [
        "s0 submit et1",
        "->s1",
        "->s2",
        "s1 deliver et1",
        "s2 deliver et1",
        "s1 apply et1",
        "complete et1",
        "path client queue",
        "path local apply",
    ] {
        assert!(full.contains(needle), "missing {needle:?} in:\n{full}");
    }
    assert!(full.contains("us "), "full render carries relative stamps:\n{full}");

    let skeleton = run(&["--skeleton"]);
    assert!(
        !skeleton.contains("us ") && !skeleton.contains("t0="),
        "skeleton must drop stamps and trace context:\n{skeleton}"
    );
    assert!(skeleton.contains("s0 submit et1"), "{skeleton}");
    // Deterministic: the same ring renders the same skeleton.
    assert_eq!(skeleton, run(&["--skeleton"]));

    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
