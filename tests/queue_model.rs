//! Model-based property test: the file-backed stable queue behaves
//! exactly like the in-memory model under arbitrary command sequences —
//! including crash/reopen at arbitrary points, which must preserve the
//! set of unacknowledged entries.

use bytes::Bytes;
use proptest::prelude::*;

use esr::storage::stable_queue::{EntryId, FileQueue, MemQueue, StableQueue};

/// One command in the random script.
#[derive(Debug, Clone)]
enum Cmd {
    /// Enqueue a payload of the given byte.
    Enqueue(u8),
    /// Ack the i-th currently-pending entry (modulo pending count).
    AckNth(usize),
    /// Record a delivery attempt on the i-th pending entry.
    AttemptNth(usize),
    /// Crash the file queue (drop + reopen). The in-memory model keeps
    /// running — stability means they still agree afterwards.
    CrashReopen,
    /// Compact the file log.
    Compact,
}

fn arb_cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        4 => any::<u8>().prop_map(Cmd::Enqueue),
        3 => (0usize..8).prop_map(Cmd::AckNth),
        2 => (0usize..8).prop_map(Cmd::AttemptNth),
        1 => Just(Cmd::CrashReopen),
        1 => Just(Cmd::Compact),
    ]
}

fn pending_payloads(q: &dyn StableQueue) -> Vec<Vec<u8>> {
    q.pending(usize::MAX)
        .into_iter()
        .map(|(_, p)| p.to_vec())
        .collect()
}

fn nth_pending(q: &dyn StableQueue, i: usize) -> Option<EntryId> {
    let pending = q.pending(usize::MAX);
    if pending.is_empty() {
        None
    } else {
        Some(pending[i % pending.len()].0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn file_queue_matches_memory_model(cmds in prop::collection::vec(arb_cmd(), 0..60)) {
        let path = std::env::temp_dir().join(format!(
            "esr-qmodel-{}-{:?}.q",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut model = MemQueue::new();
        let mut real = FileQueue::open(&path).expect("open");
        for cmd in cmds {
            match cmd {
                Cmd::Enqueue(b) => {
                    let payload = Bytes::from(vec![b, b, b]);
                    model.enqueue(payload.clone());
                    real.enqueue(payload);
                }
                Cmd::AckNth(i) => {
                    // Same position in both queues (their pending lists
                    // are kept identical by induction).
                    if let (Some(m), Some(r)) = (nth_pending(&model, i), nth_pending(&real, i)) {
                        prop_assert!(model.ack(m));
                        prop_assert!(real.ack(r));
                    }
                }
                Cmd::AttemptNth(i) => {
                    if let (Some(m), Some(r)) = (nth_pending(&model, i), nth_pending(&real, i)) {
                        model.record_attempt(m);
                        real.record_attempt(r);
                    }
                }
                Cmd::CrashReopen => {
                    drop(real);
                    real = FileQueue::open(&path).expect("reopen");
                }
                Cmd::Compact => {
                    real.compact().expect("compact");
                }
            }
            prop_assert_eq!(
                pending_payloads(&model),
                pending_payloads(&real),
                "divergence after a command"
            );
            prop_assert_eq!(model.len(), real.len());
        }
        let _ = std::fs::remove_file(&path);
    }
}
