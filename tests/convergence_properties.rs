//! Property-based convergence tests: replicas of every method reach
//! identical state under *arbitrary* delivery permutations and duplicate
//! deliveries, and whole simulated clusters converge for arbitrary seeds.

use proptest::prelude::*;

use esr::core::{ClientId, EtId, ObjectId, ObjectOp, Operation, SeqNo, SiteId, Value, VersionTs};
use esr::replica::cluster::{ClusterConfig, Method, SimCluster};
use esr::replica::commu::CommuSite;
use esr::replica::mset::MSet;
use esr::replica::ordup::OrdupSite;
use esr::replica::ritu::{RituMvSite, RituOverwriteSite};
use esr::replica::site::ReplicaSite;
use esr::net::latency::LatencyModel;
use esr::net::topology::LinkConfig;
use esr::sim::time::Duration;

/// A batch of commutative update MSets (increments over 3 objects).
fn inc_msets(values: &[i64]) -> Vec<MSet> {
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            MSet::new(
                EtId(i as u64 + 1),
                SiteId(0),
                vec![ObjectOp::new(ObjectId(i as u64 % 3), Operation::Incr(v))],
            )
        })
        .collect()
}

/// Sequenced, possibly non-commutative MSets (Inc/Mul) for ORDUP.
fn ordup_msets(spec: &[(bool, i64)]) -> Vec<MSet> {
    spec.iter()
        .enumerate()
        .map(|(i, &(mul, v))| {
            let op = if mul {
                Operation::MulBy(1 + v.unsigned_abs() as i64 % 3)
            } else {
                Operation::Incr(v)
            };
            MSet::new(
                EtId(i as u64 + 1),
                SiteId(0),
                vec![ObjectOp::new(ObjectId(i as u64 % 2), op)],
            )
            .sequenced(SeqNo(i as u64))
        })
        .collect()
}

/// Timestamped blind writes for RITU.
fn tw_msets(values: &[i64]) -> Vec<MSet> {
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            MSet::new(
                EtId(i as u64 + 1),
                SiteId(0),
                vec![ObjectOp::new(
                    ObjectId(i as u64 % 3),
                    Operation::TimestampedWrite(
                        VersionTs::new(i as u64 + 1, ClientId(0)),
                        Value::Int(v),
                    ),
                )],
            )
        })
        .collect()
}

/// Applies `msets` to a fresh site in the order given by `perm`
/// (indices into msets, possibly with repeats = duplicate deliveries).
fn deliver_in_order<S: ReplicaSite>(mut site: S, msets: &[MSet], perm: &[usize]) -> S {
    for &i in perm {
        site.deliver(msets[i % msets.len()].clone());
    }
    // Every MSet must be delivered at least once for convergence.
    for m in msets {
        site.deliver(m.clone());
    }
    site
}

fn arb_perm(len: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..len, 0..len * 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// COMMU: any delivery order (with duplicates) converges to the sum.
    #[test]
    fn commu_converges_under_any_order(
        values in prop::collection::vec(-20i64..20, 1..10),
        perm in arb_perm(10),
    ) {
        let msets = inc_msets(&values);
        let a = deliver_in_order(CommuSite::new(SiteId(0)), &msets, &perm);
        let b = deliver_in_order(CommuSite::new(SiteId(1)), &msets, &[]);
        prop_assert_eq!(a.snapshot(), b.snapshot());
    }

    /// ORDUP: arbitrary delivery interleavings of a sequenced
    /// non-commutative stream still apply in sequence order.
    #[test]
    fn ordup_converges_under_any_order(
        spec in prop::collection::vec((any::<bool>(), 1i64..10), 1..10),
        perm in arb_perm(10),
    ) {
        let msets = ordup_msets(&spec);
        let a = deliver_in_order(OrdupSite::new(SiteId(0)), &msets, &perm);
        let b = deliver_in_order(OrdupSite::new(SiteId(1)), &msets, &[]);
        prop_assert_eq!(a.snapshot(), b.snapshot());
        prop_assert_eq!(a.backlog(), 0);
    }

    /// RITU overwrite: last-writer-wins under any order and duplication.
    #[test]
    fn ritu_lww_converges_under_any_order(
        values in prop::collection::vec(-20i64..20, 1..10),
        perm in arb_perm(10),
    ) {
        let msets = tw_msets(&values);
        let a = deliver_in_order(RituOverwriteSite::new(SiteId(0)), &msets, &perm);
        let b = deliver_in_order(RituOverwriteSite::new(SiteId(1)), &msets, &[]);
        prop_assert_eq!(a.snapshot(), b.snapshot());
    }

    /// RITU multiversion: version chains are order-independent.
    #[test]
    fn ritu_mv_converges_under_any_order(
        values in prop::collection::vec(-20i64..20, 1..10),
        perm in arb_perm(10),
    ) {
        let msets = tw_msets(&values);
        let a = deliver_in_order(RituMvSite::new(SiteId(0)), &msets, &perm);
        let b = deliver_in_order(RituMvSite::new(SiteId(1)), &msets, &[]);
        prop_assert_eq!(a.snapshot(), b.snapshot());
    }

    /// Whole-cluster convergence for every method under arbitrary seeds
    /// (seed controls latency jitter, loss, duplication, and COMPE
    /// outcomes).
    #[test]
    fn clusters_converge_for_arbitrary_seeds(seed in 0u64..10_000) {
        for method in Method::ALL {
            let cfg = ClusterConfig::new(method)
                .with_sites(3)
                .with_link(LinkConfig {
                    latency: LatencyModel::Uniform(
                        Duration::from_millis(1),
                        Duration::from_millis(30),
                    ),
                    drop_prob: 0.2,
                    duplicate_prob: 0.1,
                    bandwidth: None,
                })
                .with_seed(seed)
                .with_abort_prob(if method == Method::Compe { 0.3 } else { 0.0 });
            let mut cluster = SimCluster::new(cfg);
            for i in 0..12u64 {
                match method {
                    Method::RituOverwrite | Method::RituMv => {
                        cluster.submit_blind_write(
                            SiteId(i % 3),
                            ObjectId(i % 2),
                            Value::Int(i as i64),
                        );
                    }
                    _ => {
                        cluster.submit_update(
                            SiteId(i % 3),
                            vec![ObjectOp::new(ObjectId(i % 2), Operation::Incr(1 + i as i64))],
                        );
                    }
                }
            }
            cluster.run_until_quiescent();
            prop_assert!(cluster.converged(), "{} diverged at seed {}", method.name(), seed);
            prop_assert_eq!(cluster.total_backlog(), 0);
        }
    }
}
