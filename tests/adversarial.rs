//! Fault-injection at the extremes: 90% message loss, duplicate storms,
//! repeated partitions, and byte-starved links. ESR's promise is
//! convergence *whenever the MSets eventually arrive* — these tests make
//! "eventually" as painful as the substrate allows.

use std::collections::BTreeSet;

use esr::core::{EpsilonSpec, ObjectId, ObjectOp, Operation, SiteId, Value};
use esr::net::faults::{PartitionSchedule, PartitionWindow};
use esr::net::latency::LatencyModel;
use esr::net::topology::LinkConfig;
use esr::replica::cluster::{ClusterConfig, Method, SimCluster};
use esr::sim::time::{Duration, VirtualTime};

fn submit_mixed(cluster: &mut SimCluster, method: Method, n: u64) {
    for i in 0..n {
        cluster.advance_to(VirtualTime::from_millis(i * 3));
        match method {
            Method::RituOverwrite | Method::RituMv => {
                cluster.submit_blind_write(SiteId(i % 3), ObjectId(i % 4), Value::Int(i as i64));
            }
            Method::OrdupSeq | Method::OrdupLamport => {
                let op = if i % 3 == 0 {
                    Operation::MulBy(2)
                } else {
                    Operation::Incr(1 + i as i64)
                };
                cluster.submit_update(SiteId(i % 3), vec![ObjectOp::new(ObjectId(i % 4), op)]);
            }
            _ => {
                cluster.submit_update(
                    SiteId(i % 3),
                    vec![ObjectOp::new(ObjectId(i % 4), Operation::Incr(1 + i as i64))],
                );
            }
        }
    }
}

#[test]
fn ninety_percent_loss_still_converges() {
    for method in Method::ALL {
        let cfg = ClusterConfig::new(method)
            .with_sites(3)
            .with_link(LinkConfig {
                latency: LatencyModel::Constant(Duration::from_millis(2)),
                drop_prob: 0.9,
                duplicate_prob: 0.0,
                bandwidth: None,
            })
            .with_seed(13)
            .with_abort_prob(if method == Method::Compe { 0.2 } else { 0.0 });
        let mut cluster = SimCluster::new(cfg);
        submit_mixed(&mut cluster, method, 20);
        cluster.run_until_quiescent();
        assert!(
            cluster.converged(),
            "{} diverged at 90% loss",
            method.name()
        );
        assert!(
            cluster.net_stats().dropped_attempts > 50,
            "the loss injection must actually bite"
        );
    }
}

#[test]
fn duplicate_storm_is_fully_idempotent() {
    for method in Method::ALL {
        let cfg = ClusterConfig::new(method)
            .with_sites(3)
            .with_link(LinkConfig {
                latency: LatencyModel::Uniform(Duration::from_millis(1), Duration::from_millis(20)),
                drop_prob: 0.0,
                duplicate_prob: 1.0, // every delivery duplicated
                bandwidth: None,
            })
            .with_seed(14)
            .with_abort_prob(if method == Method::Compe { 0.2 } else { 0.0 });
        let mut cluster = SimCluster::new(cfg);
        submit_mixed(&mut cluster, method, 20);
        cluster.run_until_quiescent();
        assert!(cluster.converged(), "{}", method.name());
        assert!(cluster.net_stats().duplicated > 0);
        if method != Method::OrdupLamport && method != Method::Compe {
            assert!(cluster.matches_oracle(), "{}: duplicates double-applied", method.name());
        }
    }
}

#[test]
fn flapping_partitions_heal_to_the_oracle() {
    // Five back-to-back partition windows rotating the victim.
    let mut windows = Vec::new();
    for w in 0..5u64 {
        let victim = SiteId(w % 3);
        let others: BTreeSet<SiteId> = (0..3).map(SiteId).filter(|s| *s != victim).collect();
        windows.push(PartitionWindow::isolate(
            VirtualTime::from_millis(w * 40),
            VirtualTime::from_millis(w * 40 + 35),
            victim,
            others,
        ));
    }
    for method in [Method::OrdupSeq, Method::Commu, Method::RituOverwrite] {
        let cfg = ClusterConfig::new(method)
            .with_sites(3)
            .with_link(LinkConfig::reliable(LatencyModel::Constant(
                Duration::from_millis(2),
            )))
            .with_partitions(PartitionSchedule::new(windows.clone()))
            .with_seed(15);
        let mut cluster = SimCluster::new(cfg);
        submit_mixed(&mut cluster, method, 30);
        cluster.run_until_quiescent();
        assert!(cluster.converged(), "{}", method.name());
        assert!(cluster.matches_oracle(), "{}", method.name());
        assert!(cluster.net_stats().partition_blocked > 0);
    }
}

#[test]
fn byte_starved_links_converge_late_but_exactly() {
    // 2 KB/s links: each MSet (~41 bytes) costs ~20ms of transmitter
    // time, so the fan-out queues heavily.
    let link = LinkConfig::reliable(LatencyModel::Constant(Duration::from_millis(1)))
        .with_bandwidth(2_000);
    let cfg = ClusterConfig::new(Method::Commu)
        .with_sites(3)
        .with_link(link)
        .with_seed(16);
    let mut cluster = SimCluster::new(cfg);
    for i in 0..30u64 {
        // All submitted at t=0: worst-case congestion.
        cluster.submit_update(
            SiteId(0),
            vec![ObjectOp::new(ObjectId(0), Operation::Incr(1))],
        );
        let _ = i;
    }
    let t = cluster.run_until_quiescent();
    assert!(cluster.converged());
    assert_eq!(cluster.snapshot_of(SiteId(2))[&ObjectId(0)], Value::Int(30));
    assert!(
        t >= VirtualTime::from_millis(500),
        "30 MSets × ~20ms serialization must stretch the run, got {t}"
    );
}

#[test]
fn strict_queries_survive_all_of_it_together() {
    // Loss + duplication + a partition + starving bandwidth at once; a
    // strict query still ends up serializable and exact.
    let link = LinkConfig {
        latency: LatencyModel::Uniform(Duration::from_millis(1), Duration::from_millis(30)),
        drop_prob: 0.4,
        duplicate_prob: 0.3,
        bandwidth: Some(50_000),
    };
    let partition = PartitionSchedule::new(vec![PartitionWindow::isolate(
        VirtualTime::from_millis(20),
        VirtualTime::from_millis(150),
        SiteId(2),
        [SiteId(0), SiteId(1)],
    )]);
    let cfg = ClusterConfig::new(Method::Commu)
        .with_sites(3)
        .with_link(link)
        .with_partitions(partition)
        .with_seed(17);
    let mut cluster = SimCluster::new(cfg);
    let mut expected = 0i64;
    for i in 0..25u64 {
        cluster.advance_to(VirtualTime::from_millis(i * 4));
        let amount = 1 + (i % 5) as i64;
        expected += amount;
        cluster.submit_update(
            SiteId(i % 2), // submit from the majority side
            vec![ObjectOp::new(ObjectId(0), Operation::Incr(amount))],
        );
    }
    let report = cluster.query_with_retry(SiteId(2), &[ObjectId(0)], EpsilonSpec::STRICT);
    assert_eq!(report.charged, 0);
    assert_eq!(report.values, vec![Value::Int(expected)]);
    cluster.run_until_quiescent();
    assert!(cluster.converged());
}
