//! Process-level checkpoint battery: real `esrd` daemons taking
//! consistent snapshots, truncating their journals, recovering from
//! snapshot + suffix replay, and re-seeding a wiped site over the wire.
//!
//! Three scenarios:
//!
//! 1. **Restart from snapshot** — after two on-demand checkpoints (the
//!    second triggers lag-by-one truncation of the first's covered
//!    prefix) and some fresh traffic, a `SIGKILL`ed site must come back
//!    bit-identical while replaying *only* the journal suffix — the
//!    replay counter proves the snapshot actually short-circuited
//!    recovery.
//! 2. **Wiped-site catch-up** — a site that loses *everything* (journal,
//!    snapshots, view, epoch, queues) rejoins by pulling a peer's
//!    newest snapshot through `SnapshotRequest`/`SnapshotChunk`, then
//!    converges on subsequent traffic. Trace-certified.
//! 3. **Byte policy** — with `--ckpt-bytes` set low, sustained traffic
//!    makes the daemons cut checkpoints and truncate on their own.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use esr::core::{ObjectId, ObjectOp, Operation, SiteId};
use esr::runtime::{ProcCluster, RtMethod};
use esr_check::certify::{certify, SiteTrace};

const X: ObjectId = ObjectId(0);
const Y: ObjectId = ObjectId(1);
const N: usize = 3;
const QUIESCE: Duration = Duration::from_secs(60);

fn esrd() -> &'static str {
    env!("CARGO_BIN_EXE_esrd")
}

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("esr-ckpt-{}-{tag}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// COMMU increments from rotating origins: order-free, so the final
/// state is the plain sum regardless of interleaving.
fn submit(c: &ProcCluster, i: u64, origins: &[u64]) {
    let origin = SiteId(origins[i as usize % origins.len()]);
    c.submit_update(
        origin,
        vec![
            ObjectOp::new(X, Operation::Incr(i as i64 + 1)),
            ObjectOp::new(Y, Operation::Incr(1)),
        ],
    )
    .unwrap_or_else(|e| panic!("submit {i} failed: {e}"));
}

/// Parses one series value out of a Prometheus text dump.
fn metric(text: &str, series: &str) -> Option<i64> {
    text.lines()
        .find(|l| l.starts_with(series))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

fn certify_cluster(c: &ProcCluster) {
    let traces: Vec<SiteTrace> = (0..N)
        .map(|s| {
            let (dropped, events) = c
                .trace_of(SiteId(s as u64))
                .unwrap_or_else(|e| panic!("trace of site {s}: {e}"));
            SiteTrace::from_dump(s as u64, dropped, events)
        })
        .collect();
    let findings = certify(RtMethod::Commu, &traces);
    assert!(findings.is_empty(), "trace certification failed:\n{findings:#?}");
}

#[test]
fn restart_recovers_from_snapshot_replaying_only_the_suffix() {
    let dir = fresh_dir("restart");
    let mut c = ProcCluster::spawn(esrd(), &dir, RtMethod::Commu, N).expect("spawn");

    for i in 0..8 {
        submit(&c, i, &[0, 1, 2]);
    }
    c.quiesce_within(QUIESCE).expect("quiesce before checkpoints");

    // First checkpoint covers all 8 updates; the second (same
    // frontier) makes the chain lag-by-one truncate the first's
    // covered prefix.
    let (seq1, covered1) = c.checkpoint_at(SiteId(1)).expect("first checkpoint");
    assert_eq!((seq1, covered1), (1, 8));
    let (seq2, covered2) = c.checkpoint_at(SiteId(1)).expect("second checkpoint");
    assert_eq!((seq2, covered2), (2, 8));

    // Truncation was real and measurable in this incarnation.
    let text = c.metrics_of(SiteId(1)).expect("metrics before kill");
    assert_eq!(
        metric(&text, "esr_journal_truncated_total{site=\"1\"}"),
        Some(8),
        "lag-by-one truncation should retire the first cut's prefix:\n{text}"
    );
    // Retain-2: both containers on disk, no more.
    let snaps = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            let n = e.file_name();
            let n = n.to_string_lossy().into_owned();
            n.starts_with("site-1.ckpt-") && n.ends_with(".snap")
        })
        .count();
    assert_eq!(snaps, 2, "retain(2) should keep exactly the newest two");

    // Fresh traffic past the snapshot, then the crash.
    for i in 8..12 {
        submit(&c, i, &[0, 1, 2]);
    }
    c.quiesce_within(QUIESCE).expect("quiesce before kill");
    let before = c.snapshot_of(SiteId(1)).expect("snapshot before kill");
    c.kill(SiteId(1));
    c.restart(SiteId(1)).expect("restart");
    c.quiesce_within(QUIESCE).expect("quiesce after restart");

    assert_eq!(
        c.snapshot_of(SiteId(1)).expect("snapshot after restart"),
        before,
        "snapshot + suffix replay lost acknowledged state"
    );
    assert!(c.converged().expect("converged"));

    // The proof that recovery went through the snapshot: the revived
    // incarnation replayed exactly the 4 post-checkpoint entries, not
    // all 12.
    let text = c.metrics_of(SiteId(1)).expect("metrics after restart");
    assert_eq!(
        metric(&text, "esr_recovery_replays_total{site=\"1\"}"),
        Some(4),
        "recovery should replay only the journal suffix:\n{text}"
    );
    let status = c.status_of(SiteId(1)).expect("status after restart");
    assert_eq!(status.ckpt_seq, 2, "restored chain should resume at seq 2");
    assert_eq!(status.ckpt_covered, 8);

    certify_cluster(&c);
    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wiped_site_rejoins_via_snapshot_catch_up() {
    let dir = fresh_dir("wipe");
    // Policy armed (catch-up is gated on it) but with an interval high
    // enough that only the explicit checkpoints below ever cut.
    let mut c = ProcCluster::spawn_with_ckpt(esrd(), &dir, RtMethod::Commu, N, Some(1 << 20))
        .expect("spawn");

    for i in 0..8 {
        submit(&c, i, &[0, 1, 2]);
    }
    c.quiesce_within(QUIESCE).expect("quiesce before checkpoints");
    // Every site snapshots, so whichever peer answers first can serve
    // a full-coverage image.
    for s in 0..N {
        let (_, covered) = c.checkpoint_at(SiteId(s as u64)).expect("checkpoint");
        assert_eq!(covered, 8, "site {s} checkpoint must cover all traffic");
    }

    let before = c.snapshot_of(SiteId(1)).expect("snapshot before wipe");
    c.kill(SiteId(1));
    c.wipe_site(SiteId(1));
    c.restart(SiteId(1)).expect("restart after wipe");
    c.quiesce_within(QUIESCE).expect("quiesce after rejoin");

    assert_eq!(
        c.snapshot_of(SiteId(1)).expect("snapshot after rejoin"),
        before,
        "catch-up lost checkpointed state"
    );
    assert!(c.converged().expect("converged after rejoin"));

    // The rejoin really went through the wire catch-up + restore path.
    let (_, events) = c.trace_of(SiteId(1)).expect("trace of rejoined site");
    assert!(
        events.iter().any(|(_, _, comp, msg)| comp == "ckpt" && msg.contains("catch-up")),
        "rejoined site should record a catch-up event: {events:?}"
    );
    assert!(
        events.iter().any(|(_, _, comp, msg)| comp == "ckpt" && msg.contains("restore")),
        "rejoined site should restore from the fetched snapshot"
    );
    let status = c.status_of(SiteId(1)).expect("status after rejoin");
    assert!(status.ckpt_seq >= 1, "rejoined site should hold a snapshot");

    // The rejoined replica keeps up with new traffic.
    for i in 8..12 {
        submit(&c, i, &[0, 1, 2]);
    }
    c.quiesce_within(QUIESCE).expect("quiesce after new traffic");
    assert!(c.converged().expect("converged after new traffic"));

    certify_cluster(&c);
    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn byte_policy_cuts_and_truncates_on_its_own() {
    let dir = fresh_dir("policy");
    let mut c = ProcCluster::spawn_with_ckpt(esrd(), &dir, RtMethod::Commu, N, Some(512))
        .expect("spawn");

    for i in 0..32 {
        submit(&c, i, &[0, 1, 2]);
    }
    c.quiesce_within(QUIESCE).expect("quiesce");

    // The writer thread installs asynchronously; poll briefly for the
    // chain to land.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let text = c.metrics_of(SiteId(0)).expect("metrics");
        let cuts = metric(&text, "esr_checkpoint_total{site=\"0\"}").unwrap_or(0);
        let truncated = metric(&text, "esr_journal_truncated_total{site=\"0\"}").unwrap_or(0);
        if cuts >= 2 && truncated >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "byte policy never cut+truncated: cuts={cuts} truncated={truncated}\n{text}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    let status = c.status_of(SiteId(0)).expect("status");
    assert!(status.ckpt_seq >= 2, "policy should have installed a chain");
    assert!(c.converged().expect("converged"));

    certify_cluster(&c);
    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
