//! Integration: stable queues survive crashes — the paper's assumption
//! that "stable queues … persistently retry message delivery until
//! successful" holds across process restarts, torn writes, and
//! compaction, with MSets as the payloads.

use bytes::Bytes;

use esr::core::{EtId, ObjectId, ObjectOp, Operation, SiteId};
use esr::replica::mset::MSet;
use esr::storage::stable_queue::{FileQueue, MemQueue, StableQueue};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("esr-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A toy MSet wire format for the queue payload (length-free: the queue
/// frames payloads itself).
fn encode(mset: &MSet) -> Bytes {
    let mut out = Vec::new();
    out.extend_from_slice(&mset.et.raw().to_be_bytes());
    out.extend_from_slice(&mset.origin.raw().to_be_bytes());
    for op in &mset.ops {
        out.extend_from_slice(&op.object.raw().to_be_bytes());
        if let Operation::Incr(n) = op.op {
            out.extend_from_slice(&n.to_be_bytes());
        }
    }
    Bytes::from(out)
}

fn decode(b: &Bytes) -> MSet {
    let et = u64::from_be_bytes(b[0..8].try_into().unwrap());
    let origin = u64::from_be_bytes(b[8..16].try_into().unwrap());
    let mut ops = Vec::new();
    let mut i = 16;
    while i + 16 <= b.len() {
        let obj = u64::from_be_bytes(b[i..i + 8].try_into().unwrap());
        let n = i64::from_be_bytes(b[i + 8..i + 16].try_into().unwrap());
        ops.push(ObjectOp::new(ObjectId(obj), Operation::Incr(n)));
        i += 16;
    }
    MSet::new(EtId(et), SiteId(origin), ops)
}

fn sample_mset(et: u64) -> MSet {
    MSet::new(
        EtId(et),
        SiteId(et % 3),
        vec![ObjectOp::new(ObjectId(et % 5), Operation::Incr(et as i64))],
    )
}

#[test]
fn msets_round_trip_through_the_file_queue() {
    let path = tmp("roundtrip-msets.q");
    let _ = std::fs::remove_file(&path);
    let mut q = FileQueue::open(&path).unwrap();
    for et in 1..=5u64 {
        q.enqueue(encode(&sample_mset(et)));
    }
    let pending = q.pending(10);
    assert_eq!(pending.len(), 5);
    for (i, (_, payload)) in pending.iter().enumerate() {
        let decoded = decode(payload);
        assert_eq!(decoded, sample_mset(i as u64 + 1));
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn crash_between_sends_loses_nothing_unacked() {
    let path = tmp("crash.q");
    let _ = std::fs::remove_file(&path);
    // Sender enqueues 10 MSets, delivers (acks) 4, then "crashes".
    {
        let mut q = FileQueue::open(&path).unwrap();
        let ids: Vec<_> = (1..=10u64).map(|et| q.enqueue(encode(&sample_mset(et)))).collect();
        for id in &ids[..4] {
            assert!(q.ack(*id));
        }
        // Dropped without further acks = crash.
    }
    // Restart: exactly the 6 unacked MSets are retried.
    let q = FileQueue::open(&path).unwrap();
    let pending = q.pending(100);
    assert_eq!(pending.len(), 6);
    let ets: Vec<u64> = pending.iter().map(|(_, p)| decode(p).et.raw()).collect();
    assert_eq!(ets, vec![5, 6, 7, 8, 9, 10]);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn repeated_crash_recovery_cycles_are_stable() {
    let path = tmp("cycles.q");
    let _ = std::fs::remove_file(&path);
    let mut expected_pending = 0usize;
    for round in 0..5u64 {
        let mut q = FileQueue::open(&path).unwrap();
        assert_eq!(q.pending(1000).len(), expected_pending, "round {round}");
        // Enqueue 3, ack 2 (one from the backlog if available).
        for i in 0..3 {
            q.enqueue(encode(&sample_mset(round * 10 + i)));
        }
        let pending = q.pending(2);
        for (id, _) in pending {
            q.ack(id);
        }
        expected_pending = expected_pending + 3 - 2;
    }
    let q = FileQueue::open(&path).unwrap();
    assert_eq!(q.pending(1000).len(), expected_pending);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn compaction_preserves_recovery_semantics() {
    let path = tmp("compact-it.q");
    let _ = std::fs::remove_file(&path);
    let keep: Vec<u64> = vec![3, 7, 9];
    {
        let mut q = FileQueue::open(&path).unwrap();
        let ids: Vec<_> = (1..=10u64).map(|et| (et, q.enqueue(encode(&sample_mset(et))))).collect();
        for (et, id) in &ids {
            if !keep.contains(et) {
                q.ack(*id);
            }
        }
        q.compact().unwrap();
    }
    let q = FileQueue::open(&path).unwrap();
    let ets: Vec<u64> = q.pending(100).iter().map(|(_, p)| decode(p).et.raw()).collect();
    assert_eq!(ets, keep);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn mem_and_file_queues_share_semantics() {
    let path = tmp("parity.q");
    let _ = std::fs::remove_file(&path);
    let mut mem = MemQueue::new();
    let mut file = FileQueue::open(&path).unwrap();
    let payloads: Vec<Bytes> = (0..6u64).map(|i| encode(&sample_mset(i))).collect();
    let mem_ids: Vec<_> = payloads.iter().map(|p| mem.enqueue(p.clone())).collect();
    let file_ids: Vec<_> = payloads.iter().map(|p| file.enqueue(p.clone())).collect();
    // Ack the same subset in both.
    for i in [0usize, 2, 4] {
        assert!(mem.ack(mem_ids[i]));
        assert!(file.ack(file_ids[i]));
    }
    let mem_pending: Vec<Bytes> = mem.pending(10).into_iter().map(|(_, p)| p).collect();
    let file_pending: Vec<Bytes> = file.pending(10).into_iter().map(|(_, p)| p).collect();
    assert_eq!(mem_pending, file_pending);
    assert_eq!(mem.len(), file.len());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn retry_attempts_track_per_entry() {
    let mut q = MemQueue::new();
    let a = q.enqueue(encode(&sample_mset(1)));
    let b = q.enqueue(encode(&sample_mset(2)));
    for _ in 0..3 {
        q.record_attempt(a);
    }
    q.record_attempt(b);
    assert_eq!(q.record_attempt(a), Some(4));
    assert_eq!(q.record_attempt(b), Some(2));
}
