//! Integration: stable queues survive crashes — the paper's assumption
//! that "stable queues … persistently retry message delivery until
//! successful" holds across process restarts, torn writes, and
//! compaction, with MSets as the payloads.

use bytes::Bytes;

use esr::core::{EtId, ObjectId, ObjectOp, Operation, SiteId};
use esr::replica::mset::MSet;
use esr::storage::stable_queue::{FileQueue, MemQueue, StableQueue};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("esr-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A toy MSet wire format for the queue payload (length-free: the queue
/// frames payloads itself).
fn encode(mset: &MSet) -> Bytes {
    let mut out = Vec::new();
    out.extend_from_slice(&mset.et.raw().to_be_bytes());
    out.extend_from_slice(&mset.origin.raw().to_be_bytes());
    for op in &mset.ops {
        out.extend_from_slice(&op.object.raw().to_be_bytes());
        if let Operation::Incr(n) = op.op {
            out.extend_from_slice(&n.to_be_bytes());
        }
    }
    Bytes::from(out)
}

fn decode(b: &Bytes) -> MSet {
    let et = u64::from_be_bytes(b[0..8].try_into().unwrap());
    let origin = u64::from_be_bytes(b[8..16].try_into().unwrap());
    let mut ops = Vec::new();
    let mut i = 16;
    while i + 16 <= b.len() {
        let obj = u64::from_be_bytes(b[i..i + 8].try_into().unwrap());
        let n = i64::from_be_bytes(b[i + 8..i + 16].try_into().unwrap());
        ops.push(ObjectOp::new(ObjectId(obj), Operation::Incr(n)));
        i += 16;
    }
    MSet::new(EtId(et), SiteId(origin), ops)
}

fn sample_mset(et: u64) -> MSet {
    MSet::new(
        EtId(et),
        SiteId(et % 3),
        vec![ObjectOp::new(ObjectId(et % 5), Operation::Incr(et as i64))],
    )
}

#[test]
fn msets_round_trip_through_the_file_queue() {
    let path = tmp("roundtrip-msets.q");
    let _ = std::fs::remove_file(&path);
    let mut q = FileQueue::open(&path).unwrap();
    for et in 1..=5u64 {
        q.enqueue(encode(&sample_mset(et)));
    }
    let pending = q.pending(10);
    assert_eq!(pending.len(), 5);
    for (i, (_, payload)) in pending.iter().enumerate() {
        let decoded = decode(payload);
        assert_eq!(decoded, sample_mset(i as u64 + 1));
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn crash_between_sends_loses_nothing_unacked() {
    let path = tmp("crash.q");
    let _ = std::fs::remove_file(&path);
    // Sender enqueues 10 MSets, delivers (acks) 4, then "crashes".
    {
        let mut q = FileQueue::open(&path).unwrap();
        let ids: Vec<_> = (1..=10u64).map(|et| q.enqueue(encode(&sample_mset(et)))).collect();
        for id in &ids[..4] {
            assert!(q.ack(*id));
        }
        // Dropped without further acks = crash.
    }
    // Restart: exactly the 6 unacked MSets are retried.
    let q = FileQueue::open(&path).unwrap();
    let pending = q.pending(100);
    assert_eq!(pending.len(), 6);
    let ets: Vec<u64> = pending.iter().map(|(_, p)| decode(p).et.raw()).collect();
    assert_eq!(ets, vec![5, 6, 7, 8, 9, 10]);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn repeated_crash_recovery_cycles_are_stable() {
    let path = tmp("cycles.q");
    let _ = std::fs::remove_file(&path);
    let mut expected_pending = 0usize;
    for round in 0..5u64 {
        let mut q = FileQueue::open(&path).unwrap();
        assert_eq!(q.pending(1000).len(), expected_pending, "round {round}");
        // Enqueue 3, ack 2 (one from the backlog if available).
        for i in 0..3 {
            q.enqueue(encode(&sample_mset(round * 10 + i)));
        }
        let pending = q.pending(2);
        for (id, _) in pending {
            q.ack(id);
        }
        expected_pending = expected_pending + 3 - 2;
    }
    let q = FileQueue::open(&path).unwrap();
    assert_eq!(q.pending(1000).len(), expected_pending);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn compaction_preserves_recovery_semantics() {
    let path = tmp("compact-it.q");
    let _ = std::fs::remove_file(&path);
    let keep: Vec<u64> = vec![3, 7, 9];
    {
        let mut q = FileQueue::open(&path).unwrap();
        let ids: Vec<_> = (1..=10u64).map(|et| (et, q.enqueue(encode(&sample_mset(et))))).collect();
        for (et, id) in &ids {
            if !keep.contains(et) {
                q.ack(*id);
            }
        }
        q.compact().unwrap();
    }
    let q = FileQueue::open(&path).unwrap();
    let ets: Vec<u64> = q.pending(100).iter().map(|(_, p)| decode(p).et.raw()).collect();
    assert_eq!(ets, keep);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn mem_and_file_queues_share_semantics() {
    let path = tmp("parity.q");
    let _ = std::fs::remove_file(&path);
    let mut mem = MemQueue::new();
    let mut file = FileQueue::open(&path).unwrap();
    let payloads: Vec<Bytes> = (0..6u64).map(|i| encode(&sample_mset(i))).collect();
    let mem_ids: Vec<_> = payloads.iter().map(|p| mem.enqueue(p.clone())).collect();
    let file_ids: Vec<_> = payloads.iter().map(|p| file.enqueue(p.clone())).collect();
    // Ack the same subset in both.
    for i in [0usize, 2, 4] {
        assert!(mem.ack(mem_ids[i]));
        assert!(file.ack(file_ids[i]));
    }
    let mem_pending: Vec<Bytes> = mem.pending(10).into_iter().map(|(_, p)| p).collect();
    let file_pending: Vec<Bytes> = file.pending(10).into_iter().map(|(_, p)| p).collect();
    assert_eq!(mem_pending, file_pending);
    assert_eq!(mem.len(), file.len());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn retry_attempts_track_per_entry() {
    let mut q = MemQueue::new();
    let a = q.enqueue(encode(&sample_mset(1)));
    let b = q.enqueue(encode(&sample_mset(2)));
    for _ in 0..3 {
        q.record_attempt(a);
    }
    q.record_attempt(b);
    assert_eq!(q.record_attempt(a), Some(4));
    assert_eq!(q.record_attempt(b), Some(2));
}

// ---------------------------------------------------------------------
// Crash-point tests: the file is cut at an arbitrary byte offset — the
// moment the power went out mid-write — and reopen must recover exactly
// the state of every record completed before the cut, never panic, and
// keep accepting appends afterwards.
// ---------------------------------------------------------------------

mod crash_points {
    use super::*;
    use proptest::prelude::*;

    use esr::storage::stable_queue::EntryId;

    /// What the log holds after each fully-written record, so a cut at
    /// any offset maps to an exact expected recovery state.
    struct LogModel {
        /// `(end_offset, event)` per record, in append order.
        records: Vec<(u64, Event)>,
        len: u64,
    }

    #[derive(Clone)]
    enum Event {
        Enqueued(EntryId, Bytes),
        Acked(EntryId),
    }

    impl LogModel {
        fn new() -> Self {
            Self {
                records: Vec::new(),
                len: 0,
            }
        }
        fn push_enqueue(&mut self, id: EntryId, payload: Bytes) {
            // Record framing: tag (1) + id (8) + len (4) + payload.
            self.len += 13 + payload.len() as u64;
            self.records.push((self.len, Event::Enqueued(id, payload)));
        }
        fn push_ack(&mut self, id: EntryId) {
            self.len += 9; // tag + id
            self.records.push((self.len, Event::Acked(id)));
        }
        /// The pending map a replay of every record ending at or before
        /// `cut` produces.
        fn expected_at(&self, cut: u64) -> std::collections::BTreeMap<EntryId, Bytes> {
            let mut live = std::collections::BTreeMap::new();
            for (end, ev) in &self.records {
                if *end > cut {
                    break;
                }
                match ev {
                    Event::Enqueued(id, p) => {
                        live.insert(*id, p.clone());
                    }
                    Event::Acked(id) => {
                        live.remove(id);
                    }
                }
            }
            live
        }
    }

    fn unique_path(tag: &str) -> std::path::PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let k = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        tmp(&format!("cut-{tag}-{k}.q"))
    }

    /// Builds a queue of `payload_sizes.len()` entries, acking those
    /// selected by `ack_mask`, and returns the model mirror.
    fn build(path: &std::path::Path, payload_sizes: &[usize], ack_mask: u32) -> LogModel {
        let _ = std::fs::remove_file(path);
        let mut q = FileQueue::open(path).unwrap();
        let mut model = LogModel::new();
        let mut ids = Vec::new();
        for (i, size) in payload_sizes.iter().enumerate() {
            let payload = Bytes::from(vec![i as u8; *size]);
            let id = q.enqueue(payload.clone());
            model.push_enqueue(id, payload);
            ids.push(id);
        }
        for (i, id) in ids.iter().enumerate() {
            if ack_mask & (1 << i) != 0 {
                assert!(q.ack(*id));
                model.push_ack(*id);
            }
        }
        model
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Cut anywhere: reopen recovers exactly the complete-record
        /// prefix — no panic, no phantom entries, no lost completed
        /// records.
        #[test]
        fn truncation_at_any_offset_recovers_the_valid_prefix(
            payload_sizes in prop::collection::vec(0usize..48, 1..7),
            ack_mask in 0u32..128,
            cut_frac in 0u64..10_000,
        ) {
            let path = unique_path("prefix");
            let model = build(&path, &payload_sizes, ack_mask);
            prop_assert_eq!(std::fs::metadata(&path).unwrap().len(), model.len);
            let cut = cut_frac % (model.len + 1);
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let q = FileQueue::open(&path).unwrap(); // must never panic
            let recovered: std::collections::BTreeMap<_, _> =
                q.pending(usize::MAX).into_iter().collect();
            prop_assert_eq!(recovered, model.expected_at(cut));
            // The torn tail was truncated away: the file now ends at the
            // last complete record, so nothing hides behind garbage.
            let end = model
                .records
                .iter()
                .map(|(e, _)| *e)
                .take_while(|e| *e <= cut)
                .last()
                .unwrap_or(0);
            prop_assert_eq!(std::fs::metadata(&path).unwrap().len(), end);
            std::fs::remove_file(&path).ok();
        }

        /// Appends after a torn-tail reopen are durable: a second reopen
        /// sees the recovered prefix plus everything appended since.
        #[test]
        fn reopen_after_partial_append_keeps_later_appends(
            payload_sizes in prop::collection::vec(0usize..48, 1..7),
            ack_mask in 0u32..128,
            cut_frac in 0u64..10_000,
            extra in prop::collection::vec(0usize..48, 1..4),
        ) {
            let path = unique_path("append");
            let model = build(&path, &payload_sizes, ack_mask);
            let cut = cut_frac % (model.len + 1);
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let mut expected = model.expected_at(cut);
            {
                let mut q = FileQueue::open(&path).unwrap();
                for (i, size) in extra.iter().enumerate() {
                    let payload = Bytes::from(vec![0xA0 + i as u8; *size]);
                    let id = q.enqueue(payload.clone());
                    expected.insert(id, payload);
                }
            } // crash again, this time with a clean tail
            let q = FileQueue::open(&path).unwrap();
            let recovered: std::collections::BTreeMap<_, _> =
                q.pending(usize::MAX).into_iter().collect();
            prop_assert_eq!(recovered, expected);
            std::fs::remove_file(&path).ok();
        }
    }

    /// An ack record lost to the crash (written but not persisted — here,
    /// truncated away) resurrects its entry: the queue re-delivers, which
    /// is exactly the at-least-once contract. The entry must reappear
    /// rather than vanish.
    #[test]
    fn ack_not_persisted_means_redelivery_not_loss() {
        let path = unique_path("ack");
        let _ = std::fs::remove_file(&path);
        let mut ids = Vec::new();
        let len_before_ack;
        {
            let mut q = FileQueue::open(&path).unwrap();
            for et in 1..=3u64 {
                ids.push(q.enqueue(encode(&sample_mset(et))));
            }
            len_before_ack = std::fs::metadata(&path).unwrap().len();
            assert!(q.ack(ids[1]));
        }
        // Crash with the ack record torn off the tail.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len_before_ack).unwrap();
        drop(f);
        let q = FileQueue::open(&path).unwrap();
        let pending: Vec<EntryId> = q.pending(10).into_iter().map(|(id, _)| id).collect();
        assert_eq!(pending, ids, "the un-persisted ack must be forgotten");
        std::fs::remove_file(&path).ok();
    }

    /// A cut in the middle of an enqueue record discards that record
    /// entirely — half an MSet never reaches a replica.
    #[test]
    fn torn_enqueue_record_is_dropped_whole() {
        let path = unique_path("torn");
        let _ = std::fs::remove_file(&path);
        let first;
        let boundary;
        {
            let mut q = FileQueue::open(&path).unwrap();
            first = q.enqueue(encode(&sample_mset(1)));
            boundary = std::fs::metadata(&path).unwrap().len();
            q.enqueue(encode(&sample_mset(2)));
        }
        let full = std::fs::metadata(&path).unwrap().len();
        // Cut strictly inside the second record.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(boundary + (full - boundary) / 2).unwrap();
        drop(f);
        let q = FileQueue::open(&path).unwrap();
        let pending = q.pending(10);
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, first);
        assert_eq!(decode(&pending[0].1), sample_mset(1));
        std::fs::remove_file(&path).ok();
    }
}
