//! Property tests for sagas: arbitrary interleavings of multi-step
//! sagas with random commit/abort decisions always leave exactly the
//! committed sagas' effects, identically on every replica.

use proptest::prelude::*;

use esr::core::{EpsilonSpec, ObjectId, ObjectOp, Operation, SiteId, Value};
use esr::replica::cluster::{ClusterConfig, Method};
use esr::replica::saga::{SagaCoordinator, SagaState};

/// A random saga script: each saga has 1–4 steps, each step increments
/// one of 3 objects by 1–9 from one of 3 sites.
#[derive(Debug, Clone)]
struct SagaScript {
    steps: Vec<(u64, u64, i64)>, // (origin, object, amount)
    commit: bool,
}

fn arb_saga() -> impl Strategy<Value = SagaScript> {
    (
        prop::collection::vec((0u64..3, 0u64..3, 1i64..10), 1..5),
        any::<bool>(),
    )
        .prop_map(|(steps, commit)| SagaScript { steps, commit })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn committed_sagas_survive_aborted_sagas_vanish(
        scripts in prop::collection::vec(arb_saga(), 1..6),
        seed in 0u64..1000,
    ) {
        let mut co = SagaCoordinator::new(
            ClusterConfig::new(Method::Compe).with_sites(3).with_seed(seed),
        );
        // Interleave: begin all sagas, round-robin their steps, then
        // resolve in reverse order of beginning.
        let ids: Vec<_> = scripts.iter().map(|_| co.begin()).collect();
        let max_steps = scripts.iter().map(|s| s.steps.len()).max().unwrap_or(0);
        for round in 0..max_steps {
            for (script, &id) in scripts.iter().zip(&ids) {
                if let Some(&(origin, object, amount)) = script.steps.get(round) {
                    co.step(
                        id,
                        SiteId(origin),
                        vec![ObjectOp::new(ObjectId(object), Operation::Incr(amount))],
                    );
                }
            }
        }
        for (script, &id) in scripts.iter().zip(&ids).rev() {
            if script.commit {
                co.commit(id);
            } else {
                co.abort(id);
            }
        }
        co.cluster_mut().run_until_quiescent();
        prop_assert!(co.cluster().converged());

        // Expected state: sum of committed sagas' increments per object.
        let mut expected = [0i64; 3];
        for script in &scripts {
            if script.commit {
                for &(_, object, amount) in &script.steps {
                    expected[object as usize] += amount;
                }
            }
        }
        let snap = co.cluster().snapshot_of(SiteId(0));
        for (obj, &want) in expected.iter().enumerate() {
            let got = snap
                .get(&ObjectId(obj as u64))
                .cloned()
                .unwrap_or_default()
                .as_int()
                .unwrap();
            prop_assert_eq!(got, want, "object {} wrong", obj);
        }

        // States settled; strict queries now admit everywhere.
        for site in 0..3u64 {
            let out = co.cluster_mut().try_query(
                SiteId(site),
                &[ObjectId(0), ObjectId(1), ObjectId(2)],
                EpsilonSpec::STRICT,
            );
            prop_assert!(out.admitted, "strict query refused at quiescence");
        }
        for (script, &id) in scripts.iter().zip(&ids) {
            let want = if script.commit {
                SagaState::Committed
            } else {
                SagaState::Aborted
            };
            prop_assert_eq!(co.state(id), Some(want));
        }
    }

    /// While any saga is open, a query touching its write set is charged
    /// at least the number of open steps on those objects.
    #[test]
    fn open_sagas_keep_queries_charged(amounts in prop::collection::vec(1i64..10, 1..4)) {
        let mut co = SagaCoordinator::new(
            ClusterConfig::new(Method::Compe).with_sites(3).with_seed(1),
        );
        let saga = co.begin();
        for &a in &amounts {
            co.step(saga, SiteId(0), vec![ObjectOp::new(ObjectId(0), Operation::Incr(a))]);
        }
        co.cluster_mut().run_until_quiescent();
        let out = co
            .cluster_mut()
            .try_query(SiteId(1), &[ObjectId(0)], EpsilonSpec::UNBOUNDED);
        prop_assert_eq!(out.charged, amounts.len() as u64);
        co.commit(saga);
        co.cluster_mut().run_until_quiescent();
        let out = co
            .cluster_mut()
            .try_query(SiteId(1), &[ObjectId(0)], EpsilonSpec::UNBOUNDED);
        prop_assert_eq!(out.charged, 0, "counters release at saga end");
        let total: i64 = amounts.iter().sum();
        prop_assert_eq!(out.values[0].clone(), Value::Int(total));
    }
}
