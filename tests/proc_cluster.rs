//! Multi-process integration: real `esrd` daemons on loopback TCP.
//!
//! Each scenario spawns a 3-site cluster of OS processes, streams
//! updates through the client plane, `SIGKILL`s one site mid-stream,
//! keeps submitting while it is dead (the survivors' durable link
//! queues buffer everything), restarts it, and then requires the full
//! ESR guarantee: at quiescence all replicas are identical and equal to
//! what a fault-free single-site run produces. This is the same oracle
//! as the thread-runtime chaos tests — the transport is the only thing
//! that changed, and that is the point.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use esr::core::{EtId, ObjectId, ObjectOp, Operation, SiteId, Value};
use esr::runtime::{ProcCluster, RtMethod};
use esr_check::certify::{certify, SiteTrace};

const X: ObjectId = ObjectId(0);
const Y: ObjectId = ObjectId(1);
const N: usize = 3;
const PHASE: u64 = 8; // updates submitted before and after the kill
const QUIESCE: Duration = Duration::from_secs(60);

fn esrd() -> &'static str {
    env!("CARGO_BIN_EXE_esrd")
}

/// A unique private directory for one cluster (addr files, epochs,
/// journals, link queues).
fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("esr-proc-{}-{tag}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Submits update `i`, originating it at one of `origins` (phase 2
/// passes only the living sites — a killed daemon cannot accept
/// submissions, unlike the thread runtime where submission bypasses the
/// site). Ops are chosen per method so the final state is independent
/// of delivery order.
fn submit(c: &ProcCluster, method: RtMethod, i: u64, origins: &[u64]) -> EtId {
    let origin = SiteId(origins[i as usize % origins.len()]);
    let result = match method {
        RtMethod::Ordup => {
            if i % 3 == 2 {
                c.submit_update(origin, vec![ObjectOp::new(X, Operation::MulBy(2))])
            } else {
                c.submit_update(
                    origin,
                    vec![
                        ObjectOp::new(X, Operation::Incr(i as i64 + 1)),
                        ObjectOp::new(Y, Operation::Incr(1)),
                    ],
                )
            }
        }
        RtMethod::Commu | RtMethod::Compe => c.submit_update(
            origin,
            vec![
                ObjectOp::new(X, Operation::Incr(i as i64 + 1)),
                ObjectOp::new(Y, Operation::Incr(1)),
            ],
        ),
        RtMethod::Ritu | RtMethod::RituMv => c.submit_blind_write(origin, X, Value::Int(i as i64)),
    };
    result.unwrap_or_else(|e| panic!("{method:?}: submit {i} failed: {e}"))
}

/// What a fault-free, single-site execution of the scenario yields.
fn expected_final(method: RtMethod) -> BTreeMap<ObjectId, Value> {
    let mut x = 0i64;
    let mut y = 0i64;
    match method {
        RtMethod::Ordup => {
            for i in 0..2 * PHASE {
                if i % 3 == 2 {
                    x *= 2;
                } else {
                    x += i as i64 + 1;
                    y += 1;
                }
            }
        }
        RtMethod::Commu => {
            for i in 0..2 * PHASE {
                x += i as i64 + 1;
                y += 1;
            }
        }
        RtMethod::Compe => {
            // Odd submissions abort and are compensated away.
            for i in (0..2 * PHASE).step_by(2) {
                x += i as i64 + 1;
                y += 1;
            }
        }
        RtMethod::Ritu | RtMethod::RituMv => {
            // LWW: the last-stamped write wins everywhere.
            let mut m = BTreeMap::new();
            m.insert(X, Value::Int(2 * PHASE as i64 - 1));
            return m;
        }
    }
    let mut m = BTreeMap::new();
    m.insert(X, Value::Int(x));
    m.insert(Y, Value::Int(y));
    m
}

/// Dumps every site's EventRing and runs the replication-aware trace
/// certifier over the quiesced cluster: the per-method visibility and
/// convergence specs must hold on the *live* run's own evidence, not
/// just on the final snapshots.
fn certify_cluster(c: &ProcCluster, method: RtMethod, n: usize) {
    let traces: Vec<SiteTrace> = (0..n)
        .map(|s| {
            let (dropped, events) = c
                .trace_of(SiteId(s as u64))
                .unwrap_or_else(|e| panic!("{method:?}: trace of site {s}: {e}"));
            SiteTrace::from_dump(s as u64, dropped, events)
        })
        .collect();
    let findings = certify(method, &traces);
    assert!(
        findings.is_empty(),
        "{method:?}: trace certification failed:\n{findings:#?}"
    );
}

/// The full scenario: phase 1, `SIGKILL` site 1, phase 2 through the
/// survivors, restart, COMPE decisions, quiesce, converge, compare.
fn assert_proc_scenario(method: RtMethod, tag: &str) {
    let dir = fresh_dir(tag);
    let mut c = ProcCluster::spawn(esrd(), &dir, method, N)
        .unwrap_or_else(|e| panic!("{method:?}: spawn failed: {e}"));
    let mut ets = Vec::new();
    for i in 0..PHASE {
        ets.push(submit(&c, method, i, &[0, 1, 2]));
    }
    c.kill(SiteId(1));
    for i in PHASE..2 * PHASE {
        ets.push(submit(&c, method, i, &[0, 2]));
    }
    c.restart(SiteId(1))
        .unwrap_or_else(|e| panic!("{method:?}: restart failed: {e}"));
    if method == RtMethod::Compe {
        // Commit even submissions, abort odd ones. Decisions issued
        // while site 1 was down reach it anyway: the coordinator's
        // broadcast sits in a durable queue until the revived daemon
        // acks it.
        for (i, et) in ets.iter().enumerate() {
            let r = if i % 2 == 0 { c.commit(*et) } else { c.abort(*et) };
            r.unwrap_or_else(|e| panic!("{method:?}: decision {i} failed: {e}"));
        }
    }
    c.quiesce_within(QUIESCE)
        .unwrap_or_else(|e| panic!("{method:?}: {e}"));
    assert!(
        c.converged().unwrap_or_else(|e| panic!("{method:?}: {e}")),
        "{method:?}: replicas diverged"
    );
    let expected = expected_final(method);
    for i in 0..N {
        let snap = c
            .snapshot_of(SiteId(i as u64))
            .unwrap_or_else(|e| panic!("{method:?}: snapshot {i}: {e}"));
        assert_eq!(snap, expected, "{method:?}: site {i} final state wrong");
    }
    // The kill was real: the revived site runs in a fresh epoch, and
    // every site holds a full journal of all updates.
    let status = c.status_of(SiteId(1)).expect("status of revived site");
    assert_eq!(status.epoch, 2, "{method:?}: restart did not bump the epoch");
    for i in 0..N {
        let audit = c
            .audit_of(SiteId(i as u64))
            .unwrap_or_else(|e| panic!("{method:?}: audit {i}: {e}"));
        assert_eq!(
            audit.journaled,
            2 * PHASE,
            "{method:?}: site {i} journal incomplete"
        );
    }
    certify_cluster(&c, method, N);
    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ordup_survives_kill9_and_restart() {
    assert_proc_scenario(RtMethod::Ordup, "ordup");
}

#[test]
fn commu_survives_kill9_and_restart() {
    assert_proc_scenario(RtMethod::Commu, "commu");
}

#[test]
fn ritu_survives_kill9_and_restart() {
    assert_proc_scenario(RtMethod::Ritu, "ritu");
}

#[test]
fn ritu_mv_survives_kill9_and_restart() {
    assert_proc_scenario(RtMethod::RituMv, "ritu-mv");
}

#[test]
fn compe_survives_kill9_and_restart() {
    assert_proc_scenario(RtMethod::Compe, "compe");
}

#[test]
fn journal_replay_alone_restores_acknowledged_state() {
    // Quiesce first so nothing is in flight, then SIGKILL and restart:
    // the revived daemon has only its journal to rebuild from (the
    // peers' queues are empty), and must come back bit-identical.
    let dir = fresh_dir("journal");
    let mut c = ProcCluster::spawn(esrd(), &dir, RtMethod::Commu, N).expect("spawn");
    for i in 0..PHASE {
        submit(&c, RtMethod::Commu, i, &[0, 1, 2]);
    }
    c.quiesce_within(QUIESCE).expect("quiesce before kill");
    let before = c.snapshot_of(SiteId(1)).expect("snapshot before kill");
    c.kill(SiteId(1));
    c.restart(SiteId(1)).expect("restart");
    c.quiesce_within(QUIESCE).expect("quiesce after restart");
    assert_eq!(
        c.snapshot_of(SiteId(1)).expect("snapshot after restart"),
        before,
        "journal replay lost acknowledged state"
    );
    assert!(c.converged().expect("converged"));
    certify_cluster(&c, RtMethod::Commu, N);
    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn esrctl_submits_and_audits_a_live_daemon() {
    // The CLI end of the acceptance criteria: drive a 2-site cluster
    // purely through the esrctl binary — submit at site 0, watch the
    // update propagate to site 1, and read its audit log back.
    let esrctl = env!("CARGO_BIN_EXE_esrctl");
    let dir = fresh_dir("esrctl");
    let mut c = ProcCluster::spawn(esrd(), &dir, RtMethod::Commu, 2).expect("spawn");
    let ctl = |args: &[&str]| -> String {
        let out = Command::new(esrctl)
            .arg("--dir")
            .arg(&dir)
            .args(args)
            .output()
            .expect("run esrctl");
        assert!(
            out.status.success(),
            "esrctl {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    assert_eq!(
        ctl(&["--site", "0", "submit", "--et", "1", "7", "incr", "5"]).trim(),
        "submitted et=1"
    );
    assert_eq!(
        ctl(&["--site", "0", "submit", "--et", "2", "7", "incr", "3"]).trim(),
        "submitted et=2"
    );
    c.quiesce_within(QUIESCE).expect("quiesce");
    let snapshot = ctl(&["--site", "1", "snapshot"]);
    assert_eq!(snapshot.trim(), "7\tInt(8)");
    let audit = ctl(&["--site", "1", "audit"]);
    assert!(
        audit.contains("journaled=2") && audit.contains("commu\tet=1"),
        "unexpected audit output:\n{audit}"
    );
    let query = ctl(&["--site", "1", "query", "7"]);
    assert!(query.contains("admitted=true"), "query rejected:\n{query}");
    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn esrctl_metrics_scrapes_live_series_from_every_site() {
    // Observability acceptance: a live 3-site RITU-MV cluster must
    // answer `esrctl metrics` at every site with the per-site MSet,
    // epsilon, VTNC-lag, and link queue-depth series, and `esrctl
    // trace` must show the structured event ring.
    let esrctl = env!("CARGO_BIN_EXE_esrctl");
    let dir = fresh_dir("metrics");
    let mut c = ProcCluster::spawn(esrd(), &dir, RtMethod::RituMv, N).expect("spawn");
    for i in 0..6u64 {
        c.submit_blind_write(SiteId(i % N as u64), X, Value::Int(i as i64))
            .expect("submit");
    }
    c.quiesce_within(QUIESCE).expect("quiesce");
    for s in 0..N {
        // A bounded query so the epsilon gauges reflect a real admission.
        let out = c
            .client(SiteId(s as u64))
            .expect("client")
            .query(&[X], 1_000)
            .expect("query");
        assert!(out.admitted);
    }

    let ctl = |args: &[&str]| -> String {
        let out = Command::new(esrctl)
            .arg("--dir")
            .arg(&dir)
            .args(args)
            .output()
            .expect("run esrctl");
        assert!(
            out.status.success(),
            "esrctl {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    for s in 0..N {
        let site = s.to_string();
        let text = ctl(&["--site", &site, "metrics"]);
        let site_labels = format!("{{method=\"ritu-mv\",site=\"{site}\"}}");
        for series in [
            "esr_msets_delivered_total",
            "esr_msets_applied_total",
            "esr_query_epsilon_charged",
            "esr_query_epsilon_limit",
            "esr_vtnc_time",
            "esr_vtnc_lag",
        ] {
            assert!(
                text.contains(&format!("{series}{site_labels}")),
                "site {s}: metrics scrape is missing {series}:\n{text}"
            );
        }
        assert!(
            text.contains(&format!("esr_msets_applied_total{site_labels} 6")),
            "site {s} must report all 6 applies:\n{text}"
        );
        assert!(
            text.contains(&format!("esr_vtnc_lag{site_labels} 0")),
            "site {s} VTNC lag must be 0 at quiescence:\n{text}"
        );
        assert!(
            text.contains(&format!("esr_query_epsilon_limit{site_labels} 1000")),
            "site {s} must report the admitted query's limit:\n{text}"
        );
        // One outbound link per peer, with its durable-queue gauges.
        for peer in 0..N {
            if peer == s {
                continue;
            }
            assert!(
                text.contains(&format!(
                    "esr_link_queue_depth{{link=\"{s}->{peer}\"}}"
                )),
                "site {s}: no queue-depth series for link to {peer}:\n{text}"
            );
        }
        assert!(
            text.contains("esr_recovery_replays_total"),
            "site {s}: recovery replay counter missing:\n{text}"
        );
        assert!(
            text.contains("esr_apply_latency_micros_count")
                && text.contains("esr_rpc_latency_micros_count"),
            "site {s}: latency histograms missing:\n{text}"
        );

        let trace = ctl(&["--site", &site, "trace"]);
        assert!(
            trace.contains("boot") && trace.contains("apply"),
            "site {s}: trace ring missing boot/apply events:\n{trace}"
        );
    }
    certify_cluster(&c, RtMethod::RituMv, N);
    c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
