//! Integration stress of the thread-per-site runtime: many concurrent
//! submitters, mixed queries, commit/abort races, convergence at
//! quiescence under real scheduling nondeterminism.

use std::sync::Arc;
use std::thread;

use esr::core::{EpsilonSpec, ObjectId, ObjectOp, Operation, SiteId, Value};
use esr::runtime::{Cluster, RtMethod};

#[test]
fn commu_heavy_concurrency_converges_to_exact_sum() {
    let cluster = Arc::new(Cluster::new(RtMethod::Commu, 4));
    let threads = 8u64;
    let per_thread = 100u64;
    let mut handles = Vec::new();
    for t in 0..threads {
        let c = Arc::clone(&cluster);
        handles.push(thread::spawn(move || {
            for i in 0..per_thread {
                c.submit_update(
                    SiteId(t % 4),
                    vec![ObjectOp::new(ObjectId(i % 4), Operation::Incr(1))],
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    cluster.quiesce();
    assert!(cluster.converged());
    let snap = cluster.snapshot_of(SiteId(2));
    let total: i64 = snap.values().filter_map(|v| v.as_int()).sum();
    assert_eq!(total, (threads * per_thread) as i64);
}

#[test]
fn ordup_non_commutative_stream_agrees_across_threads() {
    let cluster = Arc::new(Cluster::new(RtMethod::Ordup, 3));
    // Two racing submitters issue conflicting families; whatever global
    // order the sequencer picks, all replicas must agree on it.
    let c1 = Arc::clone(&cluster);
    let h1 = thread::spawn(move || {
        for _ in 0..50 {
            c1.submit_update(SiteId(0), vec![ObjectOp::new(ObjectId(0), Operation::Incr(3))]);
        }
    });
    let c2 = Arc::clone(&cluster);
    let h2 = thread::spawn(move || {
        for _ in 0..20 {
            c2.submit_update(SiteId(1), vec![ObjectOp::new(ObjectId(0), Operation::MulBy(2))]);
        }
    });
    h1.join().unwrap();
    h2.join().unwrap();
    cluster.quiesce();
    assert!(cluster.converged(), "replicas disagree on the global order");
}

#[test]
fn ritu_concurrent_blind_writes_pick_one_winner() {
    let cluster = Arc::new(Cluster::new(RtMethod::Ritu, 3));
    let mut handles = Vec::new();
    for t in 0..6u64 {
        let c = Arc::clone(&cluster);
        handles.push(thread::spawn(move || {
            for i in 0..30u64 {
                c.submit_blind_write(SiteId(t % 3), ObjectId(0), Value::Int((t * 100 + i) as i64));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    cluster.quiesce();
    assert!(cluster.converged());
    // The winner carries the globally newest version — some write from
    // the run, identical on every replica.
    let winner = cluster.snapshot_of(SiteId(0))[&ObjectId(0)].clone();
    assert!(winner.as_int().is_some());
}

#[test]
fn compe_concurrent_aborts_leave_only_committed_effects() {
    let cluster = Arc::new(Cluster::new(RtMethod::Compe, 3));
    let mut committed_sum = 0i64;
    let mut ets = Vec::new();
    for i in 0..60u64 {
        let amount = 1 + (i % 7) as i64;
        let et = cluster.submit_update(
            SiteId(i % 3),
            vec![ObjectOp::new(ObjectId(0), Operation::Incr(amount))],
        );
        ets.push((et, amount, i % 3 == 0));
    }
    // Resolve in a scrambled order: every third update aborts.
    for (et, amount, abort) in ets.iter().rev() {
        if *abort {
            cluster.abort(*et);
        } else {
            cluster.commit(*et);
            committed_sum += amount;
        }
    }
    cluster.quiesce();
    assert!(cluster.converged());
    assert_eq!(
        cluster.snapshot_of(SiteId(1))[&ObjectId(0)],
        Value::Int(committed_sum)
    );
}

#[test]
fn strict_queries_match_quiescent_state() {
    let cluster = Cluster::new(RtMethod::Commu, 4);
    for i in 0..40u64 {
        cluster.submit_update(
            SiteId(i % 4),
            vec![ObjectOp::new(ObjectId(0), Operation::Incr(2))],
        );
    }
    let strict = cluster.query_blocking(SiteId(3), &[ObjectId(0)], EpsilonSpec::STRICT);
    assert!(strict.admitted);
    assert_eq!(strict.charged, 0);
    assert_eq!(strict.values[0], Value::Int(80));
}

#[test]
fn bounded_queries_respect_budget_under_load() {
    let cluster = Arc::new(Cluster::new(RtMethod::Commu, 4));
    let c = Arc::clone(&cluster);
    let writer = thread::spawn(move || {
        for i in 0..200u64 {
            c.submit_update(
                SiteId(i % 4),
                vec![ObjectOp::new(ObjectId(0), Operation::Incr(1))],
            );
        }
    });
    let mut max_charge = 0;
    for _ in 0..100 {
        let out = cluster.query(SiteId(1), &[ObjectId(0)], EpsilonSpec::bounded(5));
        if out.admitted {
            max_charge = max_charge.max(out.charged);
            assert!(out.charged <= 5, "budget violated: {}", out.charged);
        }
    }
    writer.join().unwrap();
    cluster.quiesce();
    assert!(cluster.converged());
}

#[test]
fn mixed_object_workload_with_multi_op_msets() {
    let cluster = Cluster::new(RtMethod::Commu, 3);
    for i in 0..50u64 {
        cluster.submit_update(
            SiteId(i % 3),
            vec![
                ObjectOp::new(ObjectId(0), Operation::Decr(1)),
                ObjectOp::new(ObjectId(1), Operation::Incr(1)),
            ],
        );
    }
    cluster.quiesce();
    assert!(cluster.converged());
    let snap = cluster.snapshot_of(SiteId(0));
    assert_eq!(snap[&ObjectId(0)], Value::Int(-50));
    assert_eq!(snap[&ObjectId(1)], Value::Int(50));
}
