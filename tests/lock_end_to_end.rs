//! End-to-end locking: drive transaction mixes through the ET lock
//! manager under each protocol, record the history that the grants
//! admit, and check it with the serializability machinery — Table 2/3
//! semantics verified at the history level, not just the cell level.

use esr::core::history::History;
use esr::core::lock::{LockManager, LockMode, LockOutcome, Protocol};
use esr::core::serializability::{is_epsilon_serializable, is_serializable};
use esr::core::{EtId, ObjectId, ObjectOp, Operation, Value};

/// A scripted transaction: its lock mode class and operations.
struct Script {
    et: EtId,
    is_query: bool,
    ops: Vec<ObjectOp>,
}

/// Executes scripts round-robin, one operation per turn: each operation
/// first acquires its lock (skipping the turn if queued), then appends
/// to the history; a finished script releases its locks. Returns the
/// admitted history.
fn run_scripts(protocol: Protocol, scripts: Vec<Script>) -> History {
    let mut manager = LockManager::new(protocol);
    let mut history = History::new();
    let mut cursors = vec![0usize; scripts.len()];
    let mut done = vec![false; scripts.len()];
    let mut progress = true;
    while progress {
        progress = false;
        for (i, script) in scripts.iter().enumerate() {
            if done[i] {
                continue;
            }
            let Some(op) = script.ops.get(cursors[i]) else {
                manager.release_all(script.et);
                done[i] = true;
                progress = true;
                continue;
            };
            let mode = if script.is_query {
                LockMode::RQ
            } else if op.op.is_write() {
                LockMode::WU
            } else {
                LockMode::RU
            };
            // Skip if this ET is already waiting on this object.
            if manager.waiting(script.et, op.object) {
                continue;
            }
            match manager.acquire(script.et, op.object, mode, Some(op.op.clone())) {
                Ok(LockOutcome::Granted) => {
                    history.push(script.et, op.clone());
                    cursors[i] += 1;
                    progress = true;
                }
                Ok(LockOutcome::Queued) => {}
                Err(_) => {
                    // Deadlock victim: abort by releasing (simplified —
                    // its partial history stays, as a query-free reader).
                    manager.release_all(script.et);
                    done[i] = true;
                    progress = true;
                }
            }
        }
    }
    history
}

fn update(et: u64, ops: Vec<ObjectOp>) -> Script {
    Script {
        et: EtId(et),
        is_query: false,
        ops,
    }
}

fn query(et: u64, objects: &[u64]) -> Script {
    Script {
        et: EtId(et),
        is_query: true,
        ops: objects
            .iter()
            .map(|&o| ObjectOp::new(ObjectId(o), Operation::Read))
            .collect(),
    }
}

fn w(obj: u64, v: i64) -> ObjectOp {
    ObjectOp::new(ObjectId(obj), Operation::Write(Value::Int(v)))
}

fn r(obj: u64) -> ObjectOp {
    ObjectOp::new(ObjectId(obj), Operation::Read)
}

fn inc(obj: u64, n: i64) -> ObjectOp {
    ObjectOp::new(ObjectId(obj), Operation::Incr(n))
}

#[test]
fn standard_2pl_histories_are_serializable() {
    let h = run_scripts(
        Protocol::Standard2pl,
        vec![
            update(1, vec![r(0), w(0, 1), w(1, 1)]),
            update(2, vec![r(1), w(1, 2), w(2, 2)]),
            update(3, vec![r(2), w(2, 3)]),
        ],
    );
    assert!(is_serializable(&h), "2PL admits only SR histories: {h}");
}

#[test]
fn ordup_histories_are_epsilon_serializable() {
    // Queries interleave freely under Table 2; updates stay SR.
    let h = run_scripts(
        Protocol::Ordup,
        vec![
            update(1, vec![w(0, 1), w(1, 1)]),
            query(10, &[0, 1]),
            update(2, vec![r(0), w(0, 2)]),
            query(11, &[1, 0]),
        ],
    );
    assert!(
        is_epsilon_serializable(&h),
        "ORDUP histories must be ε-serial: {h}"
    );
    // The update projection alone is SR.
    assert!(is_serializable(&h.project_updates()));
}

#[test]
fn commu_admits_more_but_stays_epsilon_serializable() {
    let scripts = |proto_marker: u64| {
        vec![
            update(proto_marker + 1, vec![inc(0, 5), inc(1, 1)]),
            update(proto_marker + 2, vec![inc(0, 3), inc(1, 2)]),
            query(proto_marker + 10, &[0, 1]),
        ]
    };
    let h_commu = run_scripts(Protocol::Commu, scripts(0));
    assert!(is_epsilon_serializable(&h_commu));
    // Commutativity-aware SR holds even for the whole log here, since
    // increments commute and queries only read.
    assert!(is_serializable(&h_commu.project_updates()));

    // COMMU finishes the commuting updates concurrently; standard 2PL
    // serializes them — compare granted-immediately counts.
    let mut commu = LockManager::new(Protocol::Commu);
    let mut std2pl = LockManager::new(Protocol::Standard2pl);
    commu
        .acquire(EtId(1), ObjectId(0), LockMode::WU, Some(Operation::Incr(5)))
        .unwrap();
    std2pl
        .acquire(EtId(1), ObjectId(0), LockMode::WU, Some(Operation::Incr(5)))
        .unwrap();
    let commu_second = commu
        .acquire(EtId(2), ObjectId(0), LockMode::WU, Some(Operation::Incr(3)))
        .unwrap();
    let std_second = std2pl
        .acquire(EtId(2), ObjectId(0), LockMode::WU, Some(Operation::Incr(3)))
        .unwrap();
    assert_eq!(commu_second, LockOutcome::Granted);
    assert_eq!(std_second, LockOutcome::Queued);
}

#[test]
fn queries_never_stall_under_et_protocols() {
    for protocol in [Protocol::Ordup, Protocol::Commu] {
        let h = run_scripts(
            protocol,
            vec![
                update(1, vec![w(0, 1), w(1, 1), w(2, 1)]),
                query(10, &[0, 1, 2]),
                query(11, &[2, 1, 0]),
            ],
        );
        // Both queries completed all three reads.
        assert_eq!(h.events_of(EtId(10)).len(), 3, "{protocol}: {h}");
        assert_eq!(h.events_of(EtId(11)).len(), 3, "{protocol}: {h}");
        assert!(is_epsilon_serializable(&h), "{protocol}: {h}");
    }
}

#[test]
fn standard_2pl_blocks_queries_behind_writers() {
    // Under plain 2PL, the query cannot finish until the writer
    // releases — the round-robin driver interleaves them accordingly,
    // and the resulting history is fully SR (no ε needed).
    let h = run_scripts(
        Protocol::Standard2pl,
        vec![update(1, vec![w(0, 1), w(1, 1)]), query(10, &[0, 1])],
    );
    assert!(is_serializable(&h));
}
