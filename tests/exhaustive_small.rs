//! Exhaustive small-case verification: enumerate *every* interleaving of
//! small ET sets and check the theory on each one — no sampling, no
//! luck. These are the ground-truth counterparts of the randomized
//! property tests.

use std::collections::BTreeMap;

use esr::core::history::interleavings;
use esr::core::overlap::all_errors_within_overlap;
use esr::core::serializability::{
    is_epsilon_serializable, is_final_state_serializable, is_serializable,
};
use esr::core::{EtBuilder, EtKind, Value};

/// Two conflicting update ETs (the paper's Inc/Mul pair) and one query.
fn inc_mul_query() -> Vec<esr::core::EpsilonTransaction> {
    vec![
        EtBuilder::new(1u64).incr(0u64, 10).incr(1u64, 1).build(),
        EtBuilder::new(2u64).mul(0u64, 2).mul(1u64, 3).build(),
        EtBuilder::new(3u64).read(0u64).read(1u64).build(),
    ]
}

#[test]
fn every_interleaving_respects_the_overlap_bound() {
    // 6!/(2!2!2!) = 90 interleavings; the bound must hold in each.
    let all = interleavings(&inc_mul_query());
    assert_eq!(all.len(), 90);
    for h in &all {
        assert!(all_errors_within_overlap(h), "bound broken in {h}");
    }
}

#[test]
fn epsilon_serial_iff_update_projection_serializable() {
    // Definition check on every interleaving: the ε-serial test must
    // coincide with "delete queries, test SR".
    for h in interleavings(&inc_mul_query()) {
        assert_eq!(
            is_epsilon_serializable(&h),
            is_serializable(&h.project_updates()),
            "definitions disagree on {h}"
        );
    }
}

#[test]
fn conflict_sr_implies_final_state_sr_exhaustively() {
    for h in interleavings(&inc_mul_query()) {
        if is_serializable(&h) {
            assert!(
                is_final_state_serializable(&h, &BTreeMap::new()),
                "graph said SR but no serial order matches: {h}"
            );
        }
    }
}

#[test]
fn some_interleavings_are_esr_but_not_sr() {
    // The whole point of ESR: strictly more histories are admissible.
    let all = interleavings(&inc_mul_query());
    let sr = all.iter().filter(|h| is_serializable(h)).count();
    let esr = all.iter().filter(|h| is_epsilon_serializable(h)).count();
    assert!(esr > sr, "ESR admits {esr}, SR admits {sr}");
    // Sanity: serial update orders with the query anywhere are ε-serial.
    assert!(esr >= 30, "at least the serial-update interleavings");
}

#[test]
fn commutative_updates_make_everything_epsilon_serial() {
    // Two increment-only update ETs commute: every single interleaving
    // is ε-serial (and in fact SR under the commutativity-aware test).
    let ets = vec![
        EtBuilder::new(1u64).incr(0u64, 5).incr(1u64, 5).build(),
        EtBuilder::new(2u64).incr(0u64, 7).incr(1u64, 7).build(),
        EtBuilder::new(3u64).read(0u64).read(1u64).build(),
    ];
    let all = interleavings(&ets);
    assert_eq!(all.len(), 90);
    for h in &all {
        assert!(is_epsilon_serializable(h), "{h}");
        assert!(
            is_serializable(&h.project_updates()),
            "commuting updates are always SR: {h}"
        );
    }
}

#[test]
fn every_interleaving_of_commuting_updates_converges() {
    // Final state identical across all interleavings of commuting ETs.
    let ets = vec![
        EtBuilder::new(1u64).incr(0u64, 5).decr(1u64, 2).build(),
        EtBuilder::new(2u64).incr(0u64, 7).decr(1u64, 4).build(),
    ];
    let mut finals = std::collections::BTreeSet::new();
    for h in interleavings(&ets) {
        let ex = h.execute(&BTreeMap::new()).expect("executes");
        finals.insert(format!("{:?}", ex.final_state));
    }
    assert_eq!(finals.len(), 1, "convergence under all {finals:?}");
}

#[test]
fn conflicting_updates_diverge_without_ordering() {
    // The counterpoint: Inc/Mul interleavings reach different final
    // states — exactly why ORDUP (or COMPE) is needed for such mixes.
    let ets = vec![
        EtBuilder::new(1u64).incr(0u64, 10).build(),
        EtBuilder::new(2u64).mul(0u64, 2).build(),
    ];
    let mut finals = std::collections::BTreeSet::new();
    for h in interleavings(&ets) {
        let ex = h.execute(&BTreeMap::new()).expect("executes");
        finals.insert(ex.final_state[&esr::core::ObjectId(0)].clone());
    }
    assert_eq!(
        finals,
        [Value::Int(10), Value::Int(20)].into_iter().collect(),
        "two orders, two outcomes"
    );
}

#[test]
fn query_kind_is_preserved_in_every_interleaving() {
    for h in interleavings(&inc_mul_query()) {
        assert_eq!(h.kind_of(esr::core::EtId(3)), Some(EtKind::Query));
        assert_eq!(h.kind_of(esr::core::EtId(1)), Some(EtKind::Update));
    }
}
