//! Error types for the core ESR crate.

use std::fmt;

use crate::ids::{EtId, ObjectId};

/// Errors produced by core ESR operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An arithmetic operation overflowed an object value.
    ArithmeticOverflow {
        /// Object the operation was applied to.
        object: ObjectId,
        /// Human-readable description of the operation.
        op: String,
    },
    /// Division by zero (e.g. `DivBy(0)` used as an operation or as a
    /// compensation).
    DivisionByZero {
        /// Object the operation was applied to.
        object: ObjectId,
    },
    /// An operation was applied to a value of the wrong type (e.g. `Incr`
    /// on a string value).
    TypeMismatch {
        /// Object the operation was applied to.
        object: ObjectId,
        /// What the operation expected.
        expected: &'static str,
        /// What the object actually held.
        found: &'static str,
    },
    /// An operation that has no defined inverse was asked for its
    /// compensation.
    NoCompensation {
        /// Description of the operation.
        op: String,
    },
    /// A query ET attempted to import more inconsistency than its epsilon
    /// specification allows.
    EpsilonExceeded {
        /// The query ET that was rejected.
        et: EtId,
        /// The epsilon limit it declared.
        limit: u64,
    },
    /// A transaction referenced in a history does not exist.
    UnknownEt(EtId),
    /// A lock request would deadlock.
    Deadlock {
        /// The ET whose request closed the cycle.
        et: EtId,
    },
    /// A lock request was made by an ET that already released locks
    /// (two-phase rule violation).
    TwoPhaseViolation {
        /// The offending ET.
        et: EtId,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArithmeticOverflow { object, op } => {
                write!(f, "arithmetic overflow applying {op} to {object}")
            }
            CoreError::DivisionByZero { object } => {
                write!(f, "division by zero on {object}")
            }
            CoreError::TypeMismatch {
                object,
                expected,
                found,
            } => write!(
                f,
                "type mismatch on {object}: operation expects {expected}, value is {found}"
            ),
            CoreError::NoCompensation { op } => {
                write!(f, "operation {op} has no defined compensation")
            }
            CoreError::EpsilonExceeded { et, limit } => {
                write!(f, "query {et} exceeded its epsilon limit of {limit}")
            }
            CoreError::UnknownEt(et) => write!(f, "unknown epsilon-transaction {et}"),
            CoreError::Deadlock { et } => write!(f, "lock request by {et} would deadlock"),
            CoreError::TwoPhaseViolation { et } => {
                write!(f, "{et} requested a lock after releasing (2PL violation)")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias for core results.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EtId, ObjectId};

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::ArithmeticOverflow {
            object: ObjectId::new(1),
            op: "Incr(5)".into(),
        };
        assert!(e.to_string().contains("overflow"));
        assert!(e.to_string().contains("x1"));

        let e = CoreError::EpsilonExceeded {
            et: EtId::new(3),
            limit: 2,
        };
        assert!(e.to_string().contains("et3"));
        assert!(e.to_string().contains('2'));

        let e = CoreError::Deadlock { et: EtId::new(4) };
        assert!(e.to_string().contains("deadlock"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&CoreError::UnknownEt(EtId::new(0)));
    }
}
