//! Overlap analysis (§2.1–§2.2).
//!
//! The *overlap* of a query ET is the set of update ETs concurrent with it
//! in the history — those that had not finished when the query started,
//! plus those that started before the query finished — restricted to
//! update ETs that actually conflict with objects the query accesses. The
//! overlap is the paper's **upper bound** on the inconsistency (error) a
//! query ET can accumulate; if the overlap is empty the query is SR.
//!
//! [`imported_inconsistency`] measures the inconsistency a query actually
//! imported in a given history: the update ETs whose *intermediate* state
//! the query observed. The central theorem — checked by unit tests here
//! and property tests in `tests/` — is
//! `imported_inconsistency(h, q) ⊆ overlap_set(h, q)`.

use std::collections::BTreeSet;

use crate::et::EtKind;
use crate::history::History;
use crate::ids::EtId;

/// The overlap set of query ET `q` in `history`: all update ETs whose
/// lifetime interval intersects `q`'s and which conflict with at least one
/// of `q`'s operations.
///
/// Returns an empty set when `q` is absent or is itself an update ET.
pub fn overlap_set(history: &History, q: EtId) -> BTreeSet<EtId> {
    if history.kind_of(q) != Some(EtKind::Query) {
        return BTreeSet::new();
    }
    let q_first = history
        .first_index_of(q)
        .expect("kind_of returned Some, so q exists");
    let q_last = history.last_index_of(q).expect("q exists");
    let q_events = history.events_of(q);

    let mut result = BTreeSet::new();
    for u in history.ets() {
        if u == q || history.kind_of(u) != Some(EtKind::Update) {
            continue;
        }
        let u_first = history.first_index_of(u).expect("u exists");
        let u_last = history.last_index_of(u).expect("u exists");
        // Lifetime intervals must intersect.
        if u_last < q_first || u_first > q_last {
            continue;
        }
        // The update must actually affect objects the query accesses
        // (an R/W dependency — "update ETs that actually affect objects
        // that the query ET seeks to access").
        let conflicts = history.events_of(u).iter().any(|ue| {
            q_events
                .iter()
                .any(|qe| qe.op.conflicts_with(&ue.op))
        });
        if conflicts {
            result.insert(u);
        }
    }
    result
}

/// `overlap_set(history, q).len()` — the paper's upper bound of error.
pub fn overlap_size(history: &History, q: EtId) -> u64 {
    overlap_set(history, q).len() as u64
}

/// The update ETs whose *intermediate* state query `q` actually observed:
/// update ETs `u` such that some read of `q` happens strictly between two
/// operations of `u`, at a point where `u` has already performed at least
/// one conflicting write.
///
/// This is the inconsistency a divergence-control method would charge to
/// `q`'s inconsistency counter.
pub fn imported_inconsistency(history: &History, q: EtId) -> BTreeSet<EtId> {
    if history.kind_of(q) != Some(EtKind::Query) {
        return BTreeSet::new();
    }
    let events = history.events();
    let mut imported = BTreeSet::new();
    for (qi, qe) in events.iter().enumerate() {
        if qe.et != q {
            continue;
        }
        for u in history.ets() {
            if u == q || history.kind_of(u) != Some(EtKind::Update) {
                continue;
            }
            let u_first = history.first_index_of(u).expect("u exists");
            let u_last = history.last_index_of(u).expect("u exists");
            // The read must sit strictly inside u's lifetime: u is
            // mid-flight, so the query may be seeing a partial state.
            if !(u_first < qi && qi < u_last) {
                continue;
            }
            // Charge only if u has already performed a write that
            // conflicts with this read.
            let wrote_conflicting = events[..qi]
                .iter()
                .any(|ue| ue.et == u && ue.op.op.is_write() && ue.op.conflicts_with(&qe.op));
            if wrote_conflicting {
                imported.insert(u);
            }
        }
    }
    imported
}

/// Checks the bound theorem for one query: everything the query imported
/// lies inside its overlap.
pub fn error_within_overlap(history: &History, q: EtId) -> bool {
    imported_inconsistency(history, q).is_subset(&overlap_set(history, q))
}

/// Checks the bound theorem for every query ET in the history.
pub fn all_errors_within_overlap(history: &History) -> bool {
    history
        .ets()
        .into_iter()
        .filter(|&et| history.kind_of(et) == Some(EtKind::Query))
        .all(|q| error_within_overlap(history, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryEvent;
    use crate::ids::ObjectId;
    use crate::op::{ObjectOp, Operation};
    use crate::value::Value;

    fn ev(et: u64, obj: u64, op: Operation) -> HistoryEvent {
        HistoryEvent::new(EtId(et), ObjectOp::new(ObjectId(obj), op))
    }

    #[test]
    fn paper_log1_overlap_is_u1_and_u2() {
        // In log (1) the paper says "U1 and Q3 overlap". Q3 = R3(a) R3(b)
        // spans indices 3..5; U1 spans 0..1 (finished before Q3 starts),
        // U2 spans 2..4 (alive during Q3) and writes both a and b.
        let h = History::paper_example_log1();
        let o = overlap_set(&h, EtId(3));
        assert!(o.contains(&EtId(2)), "U2 is mid-flight during Q3");
        assert!(!o.contains(&EtId(1)), "U1 finished before Q3's first op");
        assert_eq!(overlap_size(&h, EtId(3)), 1);
    }

    #[test]
    fn query_imports_intermediate_state() {
        let h = History::paper_example_log1();
        // Q3's read of a at index 3 happens inside U2 (2..4), after U2
        // wrote b but that doesn't conflict with R(a)... R3(a) at index 3:
        // U2 wrote b at 2 (W2(b) conflicts with R3(b) not R3(a)).
        // R3(b) at index 5 is NOT inside U2 (u_last = 4). So imported set
        // here is empty even though the overlap is {U2} — the bound holds
        // strictly.
        let imp = imported_inconsistency(&h, EtId(3));
        assert!(imp.is_subset(&overlap_set(&h, EtId(3))));
        assert!(error_within_overlap(&h, EtId(3)));
    }

    #[test]
    fn mid_flight_read_is_charged() {
        // U1: W(x) ... W(y); Q2 reads x strictly between them.
        let h = History::from_events(vec![
            ev(1, 0, Operation::Write(Value::Int(1))),
            ev(2, 0, Operation::Read),
            ev(2, 1, Operation::Read),
            ev(1, 1, Operation::Write(Value::Int(2))),
        ]);
        let imp = imported_inconsistency(&h, EtId(2));
        assert_eq!(imp.len(), 1);
        assert!(imp.contains(&EtId(1)));
        assert!(error_within_overlap(&h, EtId(2)));
    }

    #[test]
    fn disjoint_objects_do_not_overlap() {
        // Update on y concurrent with a query on x: intervals intersect
        // but no conflict, so not in the overlap.
        let h = History::from_events(vec![
            ev(1, 1, Operation::Write(Value::Int(1))),
            ev(2, 0, Operation::Read),
            ev(1, 1, Operation::Write(Value::Int(2))),
        ]);
        assert!(overlap_set(&h, EtId(2)).is_empty());
        assert!(imported_inconsistency(&h, EtId(2)).is_empty());
    }

    #[test]
    fn sequential_update_then_query_has_empty_overlap() {
        let h = History::from_events(vec![
            ev(1, 0, Operation::Write(Value::Int(1))),
            ev(2, 0, Operation::Read),
        ]);
        assert!(overlap_set(&h, EtId(2)).is_empty(), "U1 finished first");
    }

    #[test]
    fn update_starting_during_query_counts() {
        let h = History::from_events(vec![
            ev(2, 0, Operation::Read),
            ev(1, 0, Operation::Write(Value::Int(1))),
            ev(2, 1, Operation::Read),
        ]);
        let o = overlap_set(&h, EtId(2));
        assert_eq!(o.len(), 1);
        assert!(o.contains(&EtId(1)));
    }

    #[test]
    fn empty_overlap_means_sr_query() {
        // The paper: "if a query ET's overlap is empty, then it is SR."
        // A query whose overlap is empty interleaves with nothing that
        // conflicts, so adding it to the SR update log keeps SR.
        let h = History::from_events(vec![
            ev(1, 0, Operation::Write(Value::Int(1))),
            ev(2, 0, Operation::Read),
            ev(3, 0, Operation::Write(Value::Int(2))),
        ]);
        assert!(overlap_set(&h, EtId(2)).is_empty());
        assert!(crate::serializability::is_serializable(&h));
    }

    #[test]
    fn non_query_ids_yield_empty_sets() {
        let h = History::paper_example_log1();
        assert!(overlap_set(&h, EtId(1)).is_empty(), "U1 is an update");
        assert!(overlap_set(&h, EtId(42)).is_empty(), "absent ET");
        assert!(imported_inconsistency(&h, EtId(1)).is_empty());
    }

    #[test]
    fn all_errors_within_overlap_on_paper_log() {
        assert!(all_errors_within_overlap(&History::paper_example_log1()));
    }

    #[test]
    fn commutative_updates_do_not_enter_read_overlap_unless_conflicting() {
        // Incr conflicts with Read, so it still shows up in the overlap of
        // a query on the same object.
        let h = History::from_events(vec![
            ev(1, 0, Operation::Incr(5)),
            ev(2, 0, Operation::Read),
            ev(2, 0, Operation::Read),
            ev(1, 0, Operation::Incr(5)),
        ]);
        let o = overlap_set(&h, EtId(2));
        assert_eq!(o.len(), 1);
        let imp = imported_inconsistency(&h, EtId(2));
        assert!(imp.contains(&EtId(1)), "query read between the two incrs");
    }
}
