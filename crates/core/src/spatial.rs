//! Spatial consistency criteria (§5.1).
//!
//! Sheth and Rusinkiewicz's interdependent-data taxonomy divides spatial
//! consistency into three cases: inconsistency is controlled by limiting
//! (1) the number of data items changed asynchronously, (2) the data
//! *value* changed asynchronously, or (3) the number of allowed
//! asynchronous operations. The paper notes "conservative ESR directly
//! models the idea of limiting the number of asynchronous operations …
//! in order to implement the other spatial consistency criteria, replica
//! control methods would need to explicitly include these factors."
//!
//! This module includes those factors: [`DeviationTracker`] generalizes
//! the lock-counter to track, per object, the *magnitude* of pending
//! (in-flight) change alongside the operation and item counts, and
//! [`SpatialSpec`] expresses all three admission criteria. Barbara and
//! Garcia-Molina's Controlled Inconsistency (arithmetic constraints on
//! values) corresponds to [`SpatialSpec::MaxValueDeviation`].

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::ids::{EtId, ObjectId};
use crate::op::Operation;
use crate::value::Value;

/// A spatial admission criterion for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpatialSpec {
    /// Limit the number of asynchronous (in-flight) operations whose
    /// effects the query may expose — conservative ESR, the paper's
    /// native criterion.
    MaxOperations(u64),
    /// Limit the total pending *value deviation* over the read set: the
    /// answer may be off by at most this much (in value units).
    MaxValueDeviation(u64),
    /// Limit the number of distinct read-set *items* with any pending
    /// change.
    MaxChangedItems(u64),
}

/// Per-object pending-change bookkeeping for in-flight updates.
#[derive(Debug, Clone, Default)]
struct PendingChange {
    /// In-flight operations touching the object.
    operations: u64,
    /// Total absolute value deviation those operations can cause
    /// (`u64::MAX` when unbounded, e.g. a blind overwrite).
    deviation: u64,
    /// The ETs contributing.
    ets: BTreeSet<EtId>,
}

/// Tracks the spatial footprint of in-flight updates, generalizing the
/// §3.2 lock-counter: `begin` when an update originates, `end` when it
/// has been resolved at every replica.
#[derive(Debug, Clone, Default)]
pub struct DeviationTracker {
    pending: BTreeMap<ObjectId, PendingChange>,
    per_et: BTreeMap<EtId, Vec<(ObjectId, u64)>>,
}

/// The worst-case value deviation one write operation can cause.
///
/// Arithmetic deltas are exact for additive operations; multiplicative
/// and overwriting operations depend on the current value, so they are
/// reported as unbounded (`u64::MAX`) — the conservative answer.
pub fn worst_case_deviation(op: &Operation) -> u64 {
    match op {
        Operation::Read => 0,
        Operation::Incr(n) | Operation::Decr(n) => n.unsigned_abs(),
        Operation::InsertElem(_) | Operation::RemoveElem(_) => 1,
        Operation::MulBy(_) | Operation::DivBy(_) => u64::MAX,
        Operation::Write(_) | Operation::TimestampedWrite(_, _) => u64::MAX,
    }
}

impl DeviationTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an in-flight update: its write operations and targets.
    /// Accepts owned or borrowed operations — callers on the delivery
    /// path hand references and avoid cloning.
    pub fn begin<B: std::borrow::Borrow<Operation>>(
        &mut self,
        et: EtId,
        writes: impl IntoIterator<Item = (ObjectId, B)>,
    ) {
        let mut contributions = Vec::new();
        for (object, op) in writes {
            let op = op.borrow();
            if !op.is_write() {
                continue;
            }
            let dev = worst_case_deviation(op);
            let p = self.pending.entry(object).or_default();
            p.operations += 1;
            p.deviation = p.deviation.saturating_add(dev);
            p.ets.insert(et);
            contributions.push((object, dev));
        }
        self.per_et.entry(et).or_default().extend(contributions);
    }

    /// Releases an update's contributions (resolved everywhere).
    /// Idempotent.
    pub fn end(&mut self, et: EtId) {
        let Some(contributions) = self.per_et.remove(&et) else {
            return;
        };
        for (object, dev) in contributions {
            if let Some(p) = self.pending.get_mut(&object) {
                p.operations -= 1;
                p.deviation = if p.deviation == u64::MAX {
                    // Recompute: an unbounded contributor may have left.
                    u64::MAX
                } else {
                    p.deviation.saturating_sub(dev)
                };
                p.ets.remove(&et);
                if p.operations == 0 {
                    self.pending.remove(&object);
                }
            }
        }
        // Exact recompute for objects that held an unbounded contributor.
        let unbounded_objects: Vec<ObjectId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deviation == u64::MAX)
            .map(|(o, _)| *o)
            .collect();
        for object in unbounded_objects {
            let total: u64 = self
                .per_et
                .values()
                .flatten()
                .filter(|(o, _)| *o == object)
                .fold(0u64, |acc, (_, d)| acc.saturating_add(*d));
            if let Some(p) = self.pending.get_mut(&object) {
                p.deviation = total;
            }
        }
    }

    /// In-flight operations over a read set (criterion 3).
    pub fn pending_operations(&self, read_set: &[ObjectId]) -> u64 {
        read_set
            .iter()
            .map(|o| self.pending.get(o).map_or(0, |p| p.operations))
            .sum()
    }

    /// Worst-case pending value deviation over a read set (criterion 2).
    pub fn pending_deviation(&self, read_set: &[ObjectId]) -> u64 {
        read_set.iter().fold(0u64, |acc, o| {
            acc.saturating_add(self.pending.get(o).map_or(0, |p| p.deviation))
        })
    }

    /// Read-set items with any pending change (criterion 1).
    pub fn changed_items(&self, read_set: &[ObjectId]) -> u64 {
        read_set
            .iter()
            .filter(|o| self.pending.contains_key(o))
            .count() as u64
    }

    /// Would a query over `read_set` satisfy `spec` right now?
    pub fn admits(&self, read_set: &[ObjectId], spec: SpatialSpec) -> bool {
        match spec {
            SpatialSpec::MaxOperations(limit) => self.pending_operations(read_set) <= limit,
            SpatialSpec::MaxValueDeviation(limit) => self.pending_deviation(read_set) <= limit,
            SpatialSpec::MaxChangedItems(limit) => self.changed_items(read_set) <= limit,
        }
    }

    /// True when nothing is in flight.
    pub fn quiescent(&self) -> bool {
        self.pending.is_empty()
    }
}

/// The deviation between a query answer and the authoritative values —
/// used by experiments to check that `MaxValueDeviation` really bounds
/// the answer's error for additive workloads.
pub fn answer_deviation(answer: &[Value], truth: &[Value]) -> u64 {
    answer
        .iter()
        .zip(truth)
        .fold(0u64, |acc, (a, t)| acc.saturating_add(a.distance(t)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: ObjectId = ObjectId(0);
    const Y: ObjectId = ObjectId(1);

    fn inc(n: i64) -> Operation {
        Operation::Incr(n)
    }

    #[test]
    fn worst_case_deviations() {
        assert_eq!(worst_case_deviation(&Operation::Incr(5)), 5);
        assert_eq!(worst_case_deviation(&Operation::Decr(7)), 7);
        assert_eq!(worst_case_deviation(&Operation::Read), 0);
        assert_eq!(worst_case_deviation(&Operation::InsertElem(1)), 1);
        assert_eq!(worst_case_deviation(&Operation::MulBy(2)), u64::MAX);
        assert_eq!(
            worst_case_deviation(&Operation::Write(Value::Int(1))),
            u64::MAX
        );
    }

    #[test]
    fn begin_end_track_operations_and_deviation() {
        let mut t = DeviationTracker::new();
        t.begin(EtId(1), [(X, inc(5)), (Y, inc(3))]);
        t.begin(EtId(2), [(X, inc(2))]);
        assert_eq!(t.pending_operations(&[X]), 2);
        assert_eq!(t.pending_operations(&[X, Y]), 3);
        assert_eq!(t.pending_deviation(&[X]), 7);
        assert_eq!(t.pending_deviation(&[X, Y]), 10);
        assert_eq!(t.changed_items(&[X, Y]), 2);
        t.end(EtId(1));
        assert_eq!(t.pending_deviation(&[X, Y]), 2);
        assert_eq!(t.changed_items(&[X, Y]), 1);
        t.end(EtId(2));
        assert!(t.quiescent());
    }

    #[test]
    fn end_is_idempotent() {
        let mut t = DeviationTracker::new();
        t.begin(EtId(1), [(X, inc(5))]);
        t.end(EtId(1));
        t.end(EtId(1));
        assert!(t.quiescent());
    }

    #[test]
    fn reads_contribute_nothing() {
        let mut t = DeviationTracker::new();
        t.begin(EtId(1), [(X, Operation::Read)]);
        assert!(t.quiescent());
    }

    #[test]
    fn unbounded_ops_poison_deviation_until_released() {
        let mut t = DeviationTracker::new();
        t.begin(EtId(1), [(X, inc(5))]);
        t.begin(EtId(2), [(X, Operation::MulBy(2))]);
        assert_eq!(t.pending_deviation(&[X]), u64::MAX, "Mul is unbounded");
        assert!(!t.admits(&[X], SpatialSpec::MaxValueDeviation(1_000_000)));
        // Count-based criteria still work.
        assert!(t.admits(&[X], SpatialSpec::MaxOperations(2)));
        t.end(EtId(2));
        assert_eq!(
            t.pending_deviation(&[X]),
            5,
            "exact recompute after the unbounded contributor leaves"
        );
    }

    #[test]
    fn all_three_criteria_admit_and_reject() {
        let mut t = DeviationTracker::new();
        t.begin(EtId(1), [(X, inc(10)), (Y, inc(1))]);
        t.begin(EtId(2), [(X, inc(10))]);

        // Criterion 3: operations.
        assert!(t.admits(&[X], SpatialSpec::MaxOperations(2)));
        assert!(!t.admits(&[X], SpatialSpec::MaxOperations(1)));

        // Criterion 2: value deviation.
        assert!(t.admits(&[X], SpatialSpec::MaxValueDeviation(20)));
        assert!(!t.admits(&[X], SpatialSpec::MaxValueDeviation(19)));

        // Criterion 1: changed items.
        assert!(t.admits(&[X, Y], SpatialSpec::MaxChangedItems(2)));
        assert!(!t.admits(&[X, Y], SpatialSpec::MaxChangedItems(1)));
        assert!(t.admits(&[ObjectId(9)], SpatialSpec::MaxChangedItems(0)));
    }

    #[test]
    fn deviation_bounds_real_answer_error_for_additive_ops() {
        // If the pending deviation over the read set is D, then any
        // answer the replica can give differs from the converged truth
        // by at most D — check concretely.
        let mut t = DeviationTracker::new();
        let pending_ops = [(X, inc(5)), (X, inc(-3i64).clone()), (Y, inc(2))];
        t.begin(EtId(1), [(X, inc(5))]);
        t.begin(EtId(2), [(X, Operation::Incr(-3))]);
        t.begin(EtId(3), [(Y, inc(2))]);
        let bound = t.pending_deviation(&[X, Y]);
        assert_eq!(bound, 10);

        // Stale answer: none applied. Truth: all applied.
        let stale = vec![Value::Int(100), Value::Int(50)];
        let truth = vec![Value::Int(100 + 5 - 3), Value::Int(52)];
        assert!(answer_deviation(&stale, &truth) <= bound);
        // Partially applied answers too.
        let partial = vec![Value::Int(105), Value::Int(50)];
        assert!(answer_deviation(&partial, &truth) <= bound);
        let _ = pending_ops;
    }

    #[test]
    fn answer_deviation_sums_distances() {
        let a = vec![Value::Int(10), Value::Int(0)];
        let b = vec![Value::Int(7), Value::Int(5)];
        assert_eq!(answer_deviation(&a, &b), 8);
        assert_eq!(answer_deviation(&a, &a), 0);
    }
}
