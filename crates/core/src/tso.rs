//! Basic-timestamp divergence control (§3.1).
//!
//! ORDUP's MSet processing may locally interleave operations "as long as
//! the end result is an ESRlog. For example, the basic-timestamp … method
//! applied to update ETs will produce an SRlog." And for bounding
//! queries: "each object maintains the timestamp of the latest access.
//! The divergence control checks the ordering of each access. In an SR
//! execution, out-of-order reads are either rejected or cause an abort of
//! a write. In an ESR execution, the divergence control increments the
//! inconsistency counter and decides whether to allow the read depending
//! on the specified divergence limit."
//!
//! [`TimestampOrdering`] implements exactly that: update-ET accesses are
//! validated with classic timestamp ordering (optionally the Thomas
//! write rule), while query-ET reads are *never rejected outright* —
//! an out-of-order read is charged one unit against the query's
//! inconsistency counter and refused only when the budget is exhausted.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::divergence::InconsistencyCounter;
use crate::ids::ObjectId;

/// What the divergence control decided about one update-ET access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsoDecision {
    /// The access is in timestamp order: perform it.
    Allow,
    /// Out-of-order write made obsolete by a newer write: skip it but
    /// continue the transaction (Thomas write rule).
    SkipObsolete,
    /// Out-of-order conflicting access: the update ET must abort and
    /// retry with a fresh timestamp.
    Abort,
}

/// What the divergence control decided about a query-ET read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryReadDecision {
    /// In order: a consistent read, no charge.
    InOrder,
    /// Out of order, but the budget absorbed it: read allowed, one unit
    /// charged.
    OutOfOrderCharged,
    /// Out of order and the budget is exhausted: the query must fall
    /// back to a synchronous (in-order) execution.
    Refused,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct AccessStamps {
    /// Largest update-ET timestamp that read the object.
    read_ts: u64,
    /// Largest update-ET timestamp that wrote the object.
    write_ts: u64,
}

/// Basic timestamp-ordering state for one site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimestampOrdering {
    stamps: BTreeMap<ObjectId, AccessStamps>,
    thomas_write_rule: bool,
    /// Update accesses rejected (aborts signalled).
    aborts: u64,
    /// Obsolete writes skipped under the Thomas rule.
    skipped: u64,
}

impl TimestampOrdering {
    /// Strict basic TO: any out-of-order conflicting access aborts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Basic TO with the Thomas write rule: an obsolete write (older
    /// than the newest write) is skipped instead of aborting.
    pub fn with_thomas_write_rule() -> Self {
        Self {
            thomas_write_rule: true,
            ..Self::default()
        }
    }

    /// Aborts signalled so far.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Writes skipped as obsolete so far.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The recorded stamps of one object (0, 0 if untouched).
    pub fn stamps_of(&self, object: ObjectId) -> (u64, u64) {
        let s = self.stamps.get(&object).copied().unwrap_or_default();
        (s.read_ts, s.write_ts)
    }

    /// Validates a read by an **update ET** with timestamp `ts`.
    pub fn update_read(&mut self, ts: u64, object: ObjectId) -> TsoDecision {
        let s = self.stamps.entry(object).or_default();
        if ts < s.write_ts {
            // The version this read should have seen was overwritten by
            // a younger transaction: too late.
            self.aborts += 1;
            return TsoDecision::Abort;
        }
        s.read_ts = s.read_ts.max(ts);
        TsoDecision::Allow
    }

    /// Validates a write by an **update ET** with timestamp `ts`.
    pub fn update_write(&mut self, ts: u64, object: ObjectId) -> TsoDecision {
        let s = self.stamps.entry(object).or_default();
        if ts < s.read_ts {
            // A younger transaction already read the value this write
            // would replace.
            self.aborts += 1;
            return TsoDecision::Abort;
        }
        if ts < s.write_ts {
            if self.thomas_write_rule {
                self.skipped += 1;
                return TsoDecision::SkipObsolete;
            }
            self.aborts += 1;
            return TsoDecision::Abort;
        }
        s.write_ts = ts;
        TsoDecision::Allow
    }

    /// Validates a read by a **query ET** serialized at timestamp `ts`.
    ///
    /// Query reads never disturb update stamps (queries don't constrain
    /// updates — that is the whole point of ESR). An in-order read
    /// (`ts >= write_ts`) is free; an out-of-order read charges one unit
    /// and is allowed while the budget lasts.
    pub fn query_read(
        &mut self,
        ts: u64,
        object: ObjectId,
        counter: &mut InconsistencyCounter,
    ) -> QueryReadDecision {
        let s = self.stamps.entry(object).or_default();
        if ts >= s.write_ts {
            return QueryReadDecision::InOrder;
        }
        if counter.charge(1).is_admitted() {
            QueryReadDecision::OutOfOrderCharged
        } else {
            QueryReadDecision::Refused
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::divergence::EpsilonSpec;

    const X: ObjectId = ObjectId(0);
    const Y: ObjectId = ObjectId(1);

    #[test]
    fn in_order_accesses_allowed() {
        let mut tso = TimestampOrdering::new();
        assert_eq!(tso.update_read(1, X), TsoDecision::Allow);
        assert_eq!(tso.update_write(2, X), TsoDecision::Allow);
        assert_eq!(tso.update_read(3, X), TsoDecision::Allow);
        assert_eq!(tso.update_write(4, X), TsoDecision::Allow);
        assert_eq!(tso.stamps_of(X), (3, 4));
        assert_eq!(tso.aborts(), 0);
    }

    #[test]
    fn late_read_aborts() {
        let mut tso = TimestampOrdering::new();
        tso.update_write(10, X);
        assert_eq!(tso.update_read(5, X), TsoDecision::Abort);
        assert_eq!(tso.aborts(), 1);
        // Reads of other objects are unaffected.
        assert_eq!(tso.update_read(5, Y), TsoDecision::Allow);
    }

    #[test]
    fn late_write_after_read_aborts() {
        let mut tso = TimestampOrdering::new();
        tso.update_read(10, X);
        assert_eq!(tso.update_write(5, X), TsoDecision::Abort);
    }

    #[test]
    fn strict_mode_aborts_obsolete_write() {
        let mut tso = TimestampOrdering::new();
        tso.update_write(10, X);
        assert_eq!(tso.update_write(5, X), TsoDecision::Abort);
    }

    #[test]
    fn thomas_rule_skips_obsolete_write() {
        let mut tso = TimestampOrdering::with_thomas_write_rule();
        tso.update_write(10, X);
        assert_eq!(tso.update_write(5, X), TsoDecision::SkipObsolete);
        assert_eq!(tso.skipped(), 1);
        assert_eq!(tso.aborts(), 0);
        assert_eq!(tso.stamps_of(X).1, 10, "newest write stamp kept");
        // But a write under a younger *read* still aborts.
        tso.update_read(20, X);
        assert_eq!(tso.update_write(15, X), TsoDecision::Abort);
    }

    #[test]
    fn read_stamp_is_max_not_last() {
        let mut tso = TimestampOrdering::new();
        tso.update_read(10, X);
        assert_eq!(tso.update_read(3, X), TsoDecision::Allow, "old read is fine");
        assert_eq!(tso.stamps_of(X).0, 10);
    }

    #[test]
    fn query_reads_in_order_are_free() {
        let mut tso = TimestampOrdering::new();
        tso.update_write(5, X);
        let mut c = InconsistencyCounter::new(EpsilonSpec::STRICT);
        assert_eq!(
            tso.query_read(10, X, &mut c),
            QueryReadDecision::InOrder,
            "query serialized after the write sees a consistent value"
        );
        assert_eq!(c.imported(), 0);
    }

    #[test]
    fn out_of_order_query_reads_charge_until_limit() {
        let mut tso = TimestampOrdering::new();
        tso.update_write(10, X);
        tso.update_write(10, Y);
        let mut c = InconsistencyCounter::new(EpsilonSpec::bounded(1));
        // The query is serialized at ts 5, before the writes.
        assert_eq!(
            tso.query_read(5, X, &mut c),
            QueryReadDecision::OutOfOrderCharged
        );
        assert_eq!(c.imported(), 1);
        assert_eq!(tso.query_read(5, Y, &mut c), QueryReadDecision::Refused);
        assert_eq!(c.imported(), 1, "refused read charges nothing");
    }

    #[test]
    fn query_reads_never_disturb_update_stamps() {
        let mut tso = TimestampOrdering::new();
        tso.update_write(5, X);
        let mut c = InconsistencyCounter::new(EpsilonSpec::UNBOUNDED);
        tso.query_read(100, X, &mut c);
        // An update write at ts 6 still succeeds: the query's ts-100
        // read left no read stamp.
        assert_eq!(tso.update_write(6, X), TsoDecision::Allow);
    }

    #[test]
    fn allowed_update_schedules_are_serializable() {
        // Drive random-ish access sequences through TO; keep only the
        // allowed operations and verify the surviving history is SR in
        // timestamp order (the §3.1 claim).
        use crate::history::History;
        use crate::ids::EtId;
        use crate::op::{ObjectOp, Operation};
        use crate::serializability::is_serializable;
        use crate::value::Value;

        let mut tso = TimestampOrdering::new();
        let mut history = History::new();
        // Interleave accesses of three update ETs (ts = et id).
        let script: [(u64, ObjectId, bool); 9] = [
            (1, X, false), // R1(x)
            (2, X, true),  // W2(x)
            (1, Y, true),  // W1(y)  — fine, y untouched
            (3, X, false), // R3(x)
            (2, Y, true),  // W2(y)
            (1, X, true),  // W1(x)  — aborts: ts1 < read_ts 3
            (3, Y, false), // R3(y)
            (3, X, true),  // W3(x)
            (2, X, false), // R2(x)  — aborts: ts2 < write_ts 3
        ];
        for (ts, obj, is_write) in script {
            let decision = if is_write {
                tso.update_write(ts, obj)
            } else {
                tso.update_read(ts, obj)
            };
            if decision == TsoDecision::Allow {
                let op = if is_write {
                    Operation::Write(Value::Int(ts as i64))
                } else {
                    Operation::Read
                };
                history.push(EtId(ts), ObjectOp::new(obj, op));
            }
        }
        assert!(tso.aborts() >= 2);
        assert!(
            is_serializable(&history),
            "TO-admitted history must be SR: {history}"
        );
    }
}
