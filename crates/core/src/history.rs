//! Histories (logs) of ET operations.
//!
//! A history is a sequence of operations, each tagged with the ET that
//! issued it (§2.1). The serializability and overlap analyses all operate
//! on this representation. The module also provides constructors for
//! serial logs and the paper's running example, log (1):
//!
//! ```text
//! R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)
//! ```

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::et::{EpsilonTransaction, EtKind};
use crate::ids::{EtId, ObjectId};
use crate::op::{ObjectOp, Operation};
use crate::value::Value;

/// One event in a history: an operation performed by an ET.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryEvent {
    /// The ET issuing the operation.
    pub et: EtId,
    /// The operation and its target object.
    pub op: ObjectOp,
}

impl HistoryEvent {
    /// Builds an event.
    pub fn new(et: EtId, op: ObjectOp) -> Self {
        Self { et, op }
    }
}

impl fmt::Display for HistoryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sub = self.et.raw();
        match &self.op.op {
            Operation::Read => write!(f, "R{sub}({})", self.op.object),
            _ => write!(f, "{}{sub}({})", short_name(&self.op.op), self.op.object),
        }
    }
}

fn short_name(op: &Operation) -> String {
    match op {
        Operation::Read => "R".into(),
        Operation::Write(_) => "W".into(),
        Operation::Incr(_) => "Inc".into(),
        Operation::Decr(_) => "Dec".into(),
        Operation::MulBy(_) => "Mul".into(),
        Operation::DivBy(_) => "Div".into(),
        Operation::InsertElem(_) => "Ins".into(),
        Operation::RemoveElem(_) => "Rem".into(),
        Operation::TimestampedWrite(_, _) => "TW".into(),
    }
}

/// A history (log) of ET operations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct History {
    events: Vec<HistoryEvent>,
}

impl History {
    /// The empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a history from events.
    pub fn from_events(events: Vec<HistoryEvent>) -> Self {
        Self { events }
    }

    /// Builds a *serial* history: each transaction's operations appear
    /// consecutively, in the order given.
    pub fn serial(ets: &[EpsilonTransaction]) -> Self {
        let mut events = Vec::new();
        for et in ets {
            for op in &et.ops {
                events.push(HistoryEvent::new(et.id, op.clone()));
            }
        }
        Self { events }
    }

    /// Appends an event.
    pub fn push(&mut self, et: EtId, op: ObjectOp) {
        self.events.push(HistoryEvent::new(et, op));
    }

    /// The events in order.
    pub fn events(&self) -> &[HistoryEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the history has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The distinct ETs in order of first appearance.
    pub fn ets(&self) -> Vec<EtId> {
        let mut seen = Vec::new();
        for e in &self.events {
            if !seen.contains(&e.et) {
                seen.push(e.et);
            }
        }
        seen
    }

    /// The kind of an ET as evidenced by its operations in this history:
    /// update iff it performed at least one write here.
    pub fn kind_of(&self, et: EtId) -> Option<EtKind> {
        let mut seen = false;
        for e in &self.events {
            if e.et == et {
                seen = true;
                if e.op.op.is_write() {
                    return Some(EtKind::Update);
                }
            }
        }
        seen.then_some(EtKind::Query)
    }

    /// Index of the first event of `et`, if present.
    pub fn first_index_of(&self, et: EtId) -> Option<usize> {
        self.events.iter().position(|e| e.et == et)
    }

    /// Index of the last event of `et`, if present.
    pub fn last_index_of(&self, et: EtId) -> Option<usize> {
        self.events.iter().rposition(|e| e.et == et)
    }

    /// All events of one ET, in order.
    pub fn events_of(&self, et: EtId) -> Vec<&HistoryEvent> {
        self.events.iter().filter(|e| e.et == et).collect()
    }

    /// Deletes all query-ET events, leaving only update-ET events — the
    /// projection used by the epsilon-serial test (§2.1): a log is
    /// ε-serial if, after deleting query ETs, the remaining update ETs
    /// form an SR log.
    pub fn project_updates(&self) -> History {
        let update_ets: Vec<EtId> = self
            .ets()
            .into_iter()
            .filter(|&et| self.kind_of(et) == Some(EtKind::Update))
            .collect();
        History {
            events: self
                .events
                .iter()
                .filter(|e| update_ets.contains(&e.et))
                .cloned()
                .collect(),
        }
    }

    /// True when every ET's operations are contiguous (a serial log).
    pub fn is_serial(&self) -> bool {
        let mut finished: Vec<EtId> = Vec::new();
        let mut current: Option<EtId> = None;
        for e in &self.events {
            match current {
                Some(c) if c == e.et => {}
                _ => {
                    if finished.contains(&e.et) {
                        return false;
                    }
                    if let Some(c) = current {
                        finished.push(c);
                    }
                    current = Some(e.et);
                }
            }
        }
        true
    }

    /// Executes the history sequentially against an initial database,
    /// returning the final object values and, for each read event, the
    /// value observed. Used by the brute-force serializability oracle.
    pub fn execute(
        &self,
        initial: &BTreeMap<ObjectId, Value>,
    ) -> crate::error::CoreResult<Execution> {
        let mut db = initial.clone();
        let mut reads = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            let v = db.entry(e.op.object).or_default().clone();
            match &e.op.op {
                Operation::Read => reads.push((i, e.et, e.op.object, v)),
                op => {
                    let nv = op.apply(e.op.object, &v)?;
                    db.insert(e.op.object, nv);
                }
            }
        }
        Ok(Execution {
            final_state: db,
            reads,
        })
    }

    /// Reconstructs per-ET programs (operation lists) from the history.
    pub fn programs(&self) -> Vec<EpsilonTransaction> {
        let mut map: BTreeMap<EtId, Vec<ObjectOp>> = BTreeMap::new();
        for e in &self.events {
            map.entry(e.et).or_default().push(e.op.clone());
        }
        map.into_iter()
            .map(|(id, ops)| EpsilonTransaction::new(id, ops))
            .collect()
    }

    /// The paper's example log (1):
    /// `R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)` with `a = x0`, `b = x1`.
    ///
    /// ET 1 and ET 2 are update ETs, ET 3 is a query ET. The log is not SR
    /// but is ε-serial: deleting `Q3` leaves the serial log `U1 U2`.
    pub fn paper_example_log1() -> History {
        let a = ObjectId(0);
        let b = ObjectId(1);
        let ev = |et: u64, obj: ObjectId, op: Operation| {
            HistoryEvent::new(EtId(et), ObjectOp::new(obj, op))
        };
        History::from_events(vec![
            ev(1, a, Operation::Read),
            ev(1, b, Operation::Write(Value::Int(1))),
            ev(2, b, Operation::Write(Value::Int(2))),
            ev(3, a, Operation::Read),
            ev(2, a, Operation::Write(Value::Int(3))),
            ev(3, b, Operation::Read),
        ])
    }
}

/// Enumerates **every** interleaving of the given ETs' operation
/// sequences (each ET's own order is preserved). The count is the
/// multinomial coefficient of the lengths, so keep the inputs small —
/// this exists for exhaustive checking of theory properties on small
/// cases (see `tests/exhaustive_small.rs`). Panics if more than
/// 1 000 000 interleavings would be produced.
pub fn interleavings(ets: &[EpsilonTransaction]) -> Vec<History> {
    // Multinomial bound check.
    let total: usize = ets.iter().map(|e| e.ops.len()).sum();
    let mut count: u128 = 1;
    let mut used = 0usize;
    for et in ets {
        for k in 1..=et.ops.len() {
            used += 1;
            count = count * used as u128 / k as u128;
        }
    }
    let _ = total;
    assert!(count <= 1_000_000, "{count} interleavings is too many");

    let mut results = Vec::with_capacity(count as usize);
    let mut cursors = vec![0usize; ets.len()];
    let mut current: Vec<HistoryEvent> = Vec::with_capacity(total);
    fn recurse(
        ets: &[EpsilonTransaction],
        cursors: &mut Vec<usize>,
        current: &mut Vec<HistoryEvent>,
        results: &mut Vec<History>,
    ) {
        let mut extended = false;
        for i in 0..ets.len() {
            if cursors[i] < ets[i].ops.len() {
                extended = true;
                current.push(HistoryEvent::new(ets[i].id, ets[i].ops[cursors[i]].clone()));
                cursors[i] += 1;
                recurse(ets, cursors, current, results);
                cursors[i] -= 1;
                current.pop();
            }
        }
        if !extended {
            results.push(History::from_events(current.clone()));
        }
    }
    recurse(ets, &mut cursors, &mut current, &mut results);
    results
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Result of sequentially executing a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// Final value of every touched object.
    pub final_state: BTreeMap<ObjectId, Value>,
    /// `(event index, et, object, value read)` for every read.
    pub reads: Vec<(usize, EtId, ObjectId, Value)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::et::EtBuilder;

    fn inc(et: u64, obj: u64, n: i64) -> HistoryEvent {
        HistoryEvent::new(EtId(et), ObjectOp::new(ObjectId(obj), Operation::Incr(n)))
    }
    fn read(et: u64, obj: u64) -> HistoryEvent {
        HistoryEvent::new(EtId(et), ObjectOp::new(ObjectId(obj), Operation::Read))
    }

    #[test]
    fn serial_construction_is_serial() {
        let t1 = EtBuilder::new(1u64).read(0u64).incr(0u64, 1).build();
        let t2 = EtBuilder::new(2u64).read(0u64).build();
        let h = History::serial(&[t1, t2]);
        assert!(h.is_serial());
        assert_eq!(h.len(), 3);
        assert_eq!(h.ets(), vec![EtId(1), EtId(2)]);
    }

    #[test]
    fn interleaved_is_not_serial() {
        let h = History::from_events(vec![read(1, 0), read(2, 0), read(1, 1)]);
        assert!(!h.is_serial());
    }

    #[test]
    fn empty_and_single_are_serial() {
        assert!(History::new().is_serial());
        assert!(History::from_events(vec![read(1, 0)]).is_serial());
        assert!(History::new().is_empty());
    }

    #[test]
    fn kind_of_derives_from_ops() {
        let h = History::from_events(vec![read(1, 0), inc(2, 0, 1), read(2, 1)]);
        assert_eq!(h.kind_of(EtId(1)), Some(EtKind::Query));
        assert_eq!(h.kind_of(EtId(2)), Some(EtKind::Update));
        assert_eq!(h.kind_of(EtId(99)), None);
    }

    #[test]
    fn projection_deletes_query_ets() {
        let h = History::paper_example_log1();
        let p = h.project_updates();
        assert_eq!(p.ets(), vec![EtId(1), EtId(2)]);
        assert_eq!(p.len(), 4);
        // The projection of log (1) is serial — exactly the paper's claim.
        assert!(p.is_serial());
    }

    #[test]
    fn indices() {
        let h = History::paper_example_log1();
        assert_eq!(h.first_index_of(EtId(3)), Some(3));
        assert_eq!(h.last_index_of(EtId(3)), Some(5));
        assert_eq!(h.first_index_of(EtId(1)), Some(0));
        assert_eq!(h.last_index_of(EtId(1)), Some(1));
        assert_eq!(h.first_index_of(EtId(42)), None);
    }

    #[test]
    fn execute_tracks_reads_and_final_state() {
        let mut initial = BTreeMap::new();
        initial.insert(ObjectId(0), Value::Int(10));
        let h = History::from_events(vec![read(1, 0), inc(2, 0, 5), read(3, 0)]);
        let ex = h.execute(&initial).unwrap();
        assert_eq!(ex.final_state[&ObjectId(0)], Value::Int(15));
        assert_eq!(ex.reads.len(), 2);
        assert_eq!(ex.reads[0].3, Value::Int(10));
        assert_eq!(ex.reads[1].3, Value::Int(15));
    }

    #[test]
    fn execute_defaults_missing_objects_to_zero() {
        let h = History::from_events(vec![inc(1, 7, 3), read(2, 7)]);
        let ex = h.execute(&BTreeMap::new()).unwrap();
        assert_eq!(ex.final_state[&ObjectId(7)], Value::Int(3));
    }

    #[test]
    fn programs_reconstruct_ets() {
        let h = History::paper_example_log1();
        let progs = h.programs();
        assert_eq!(progs.len(), 3);
        assert_eq!(progs[0].id, EtId(1));
        assert!(progs[0].is_update());
        assert!(progs[2].is_query());
        assert_eq!(progs[2].ops.len(), 2);
    }

    #[test]
    fn display_matches_paper_notation() {
        let h = History::paper_example_log1();
        let s = h.to_string();
        assert_eq!(s, "R1(x0) W1(x1) W2(x1) R3(x0) W2(x0) R3(x1)");
    }

    #[test]
    fn interleavings_enumerate_all_merges() {
        use crate::et::EtBuilder;
        let a = EtBuilder::new(1u64).incr(0u64, 1).incr(1u64, 1).build();
        let b = EtBuilder::new(2u64).read(0u64).build();
        let all = super::interleavings(&[a, b]);
        // C(3,1) = 3 positions for b's single op.
        assert_eq!(all.len(), 3);
        for h in &all {
            assert_eq!(h.len(), 3);
            // Each ET's internal order is preserved.
            let a_events = h.events_of(EtId(1));
            assert_eq!(a_events.len(), 2);
            assert_eq!(a_events[0].op.object, ObjectId(0));
            assert_eq!(a_events[1].op.object, ObjectId(1));
        }
        // All distinct.
        let mut uniq = all.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), 3);
    }

    #[test]
    fn push_appends() {
        let mut h = History::new();
        h.push(EtId(1), ObjectOp::new(ObjectId(0), Operation::Read));
        assert_eq!(h.len(), 1);
        assert_eq!(h.events()[0].et, EtId(1));
    }
}
