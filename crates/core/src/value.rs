//! Object values.
//!
//! The paper's examples use counter-like objects (`Inc(x, 10)`,
//! `Mul(x, 2)`) as well as timestamped versions and append-style
//! operations. [`Value`] is a small dynamic value type covering those
//! shapes: 64-bit integers, strings, and ordered sets of integers.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// The value held by one replica of an object.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A 64-bit signed counter. The default for numeric workloads.
    Int(i64),
    /// A text value (used by directory-style RITU workloads).
    Text(String),
    /// An ordered set of integers (used by insert/remove commutative
    /// workloads such as membership lists).
    Set(BTreeSet<i64>),
}

impl Value {
    /// A zero counter, the conventional initial value.
    pub const ZERO: Value = Value::Int(0);

    /// Returns the integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the text inside, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the set inside, if this is a `Set`.
    pub fn as_set(&self) -> Option<&BTreeSet<i64>> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Text(_) => "text",
            Value::Set(_) => "set",
        }
    }

    /// Absolute numeric distance between two values, used to measure how
    /// far a query result diverges from the serializable result.
    ///
    /// For non-numeric values the distance is `0` when equal and `1`
    /// otherwise (discrete metric); for sets it is the size of the
    /// symmetric difference.
    pub fn distance(&self, other: &Value) -> u64 {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.abs_diff(*b),
            (Value::Set(a), Value::Set(b)) => a.symmetric_difference(b).count() as u64,
            (a, b) => u64::from(a != b),
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::ZERO
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, e) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_type_names() {
        let i = Value::from(5);
        assert_eq!(i.as_int(), Some(5));
        assert_eq!(i.as_text(), None);
        assert_eq!(i.type_name(), "int");

        let t = Value::from("hi");
        assert_eq!(t.as_text(), Some("hi"));
        assert_eq!(t.as_int(), None);
        assert_eq!(t.type_name(), "text");

        let s = Value::Set([1, 2].into_iter().collect());
        assert_eq!(s.as_set().unwrap().len(), 2);
        assert_eq!(s.type_name(), "set");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Value::default(), Value::Int(0));
    }

    #[test]
    fn int_distance_is_absolute_difference() {
        assert_eq!(Value::Int(10).distance(&Value::Int(3)), 7);
        assert_eq!(Value::Int(-5).distance(&Value::Int(5)), 10);
        assert_eq!(Value::Int(i64::MIN).distance(&Value::Int(i64::MAX)), u64::MAX);
    }

    #[test]
    fn set_distance_is_symmetric_difference() {
        let a = Value::Set([1, 2, 3].into_iter().collect());
        let b = Value::Set([3, 4].into_iter().collect());
        assert_eq!(a.distance(&b), 3);
        assert_eq!(a.distance(&a), 0);
    }

    #[test]
    fn mixed_distance_is_discrete() {
        assert_eq!(Value::Int(1).distance(&Value::from("1")), 1);
        assert_eq!(Value::from("a").distance(&Value::from("a")), 0);
        assert_eq!(Value::from("a").distance(&Value::from("b")), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from("x").to_string(), "\"x\"");
        let s = Value::Set([2, 1].into_iter().collect());
        assert_eq!(s.to_string(), "{1,2}");
    }
}
