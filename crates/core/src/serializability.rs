//! Serializability and epsilon-serializability checkers.
//!
//! The standard SR test builds the conflict (serialization) graph of a
//! history — an edge `Ti → Tj` whenever an operation of `Ti` precedes and
//! conflicts with an operation of `Tj` — and checks it for cycles. The
//! conflict relation is *commutativity-aware* ([`crate::op::ObjectOp::conflicts_with`]):
//! two increments of the same counter do not conflict, which is exactly
//! how COMMU buys extra concurrency while preserving equivalence to a
//! serial schedule.
//!
//! The ε-serializability test (§2.1) deletes all query-ET events from the
//! log and requires the remaining update ETs to be serializable.
//!
//! A brute-force *final-state* checker over all permutations of the ETs
//! doubles as a test oracle for the graph-based test on small logs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::history::History;
use crate::ids::{EtId, ObjectId};
use crate::value::Value;

/// The conflict graph of a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictGraph {
    /// Nodes, in order of first appearance in the history.
    pub nodes: Vec<EtId>,
    /// Directed edges `from → to` (deduplicated, deterministic order).
    pub edges: BTreeSet<(EtId, EtId)>,
}

impl ConflictGraph {
    /// Builds the conflict graph of `history`.
    pub fn build(history: &History) -> Self {
        let nodes = history.ets();
        let mut edges = BTreeSet::new();
        let events = history.events();
        for (i, a) in events.iter().enumerate() {
            for b in events.iter().skip(i + 1) {
                if a.et != b.et && a.op.conflicts_with(&b.op) {
                    edges.insert((a.et, b.et));
                }
            }
        }
        Self { nodes, edges }
    }

    /// Successors of a node.
    pub fn successors(&self, n: EtId) -> impl Iterator<Item = EtId> + '_ {
        self.edges
            .iter()
            .filter(move |(f, _)| *f == n)
            .map(|(_, t)| *t)
    }

    /// True when the graph contains a directed cycle.
    pub fn has_cycle(&self) -> bool {
        self.topological_order().is_none()
    }

    /// A topological order of the nodes (an equivalent serial order), or
    /// `None` if the graph is cyclic. Kahn's algorithm with deterministic
    /// tie-breaking by node order of first appearance.
    pub fn topological_order(&self) -> Option<Vec<EtId>> {
        let mut indegree: BTreeMap<EtId, usize> =
            self.nodes.iter().map(|&n| (n, 0)).collect();
        for (_, t) in &self.edges {
            *indegree
                .get_mut(t)
                .expect("conflict edge references unknown node") += 1;
        }
        let mut queue: VecDeque<EtId> = self
            .nodes
            .iter()
            .filter(|n| indegree[n] == 0)
            .copied()
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(n) = queue.pop_front() {
            order.push(n);
            for s in self.successors(n) {
                let d = indegree.get_mut(&s).expect("edge to unknown node");
                *d -= 1;
                if *d == 0 {
                    // Preserve first-appearance order among newly free nodes.
                    queue.push_back(s);
                }
            }
        }
        (order.len() == self.nodes.len()).then_some(order)
    }
}

/// Is the history conflict-serializable (SR)?
pub fn is_serializable(history: &History) -> bool {
    !ConflictGraph::build(history).has_cycle()
}

/// An equivalent serial order of the history's ETs, if one exists.
pub fn serialization_order(history: &History) -> Option<Vec<EtId>> {
    ConflictGraph::build(history).topological_order()
}

/// Is the history epsilon-serializable (§2.1)? Query-ET events are
/// deleted; the remaining update ETs must form an SR log.
///
/// The paper's example log (1) is ε-serial but not SR:
///
/// ```
/// use esr_core::history::History;
/// use esr_core::serializability::{is_epsilon_serializable, is_serializable};
///
/// let log1 = History::paper_example_log1();
/// assert!(!is_serializable(&log1));
/// assert!(is_epsilon_serializable(&log1));
/// ```
pub fn is_epsilon_serializable(history: &History) -> bool {
    is_serializable(&history.project_updates())
}

/// Brute-force final-state serializability: does *some* serial execution
/// of the history's reconstructed ET programs produce the same final
/// database state as the interleaved execution?
///
/// Exponential in the number of ETs — usable only as a test oracle on
/// small logs (≤ 8 ETs). Panics if the log has more.
pub fn is_final_state_serializable(
    history: &History,
    initial: &BTreeMap<ObjectId, Value>,
) -> bool {
    let programs = history.programs();
    assert!(
        programs.len() <= 8,
        "brute-force oracle limited to 8 ETs, got {}",
        programs.len()
    );
    let Ok(actual) = history.execute(initial) else {
        return false;
    };
    let mut indices: Vec<usize> = (0..programs.len()).collect();
    permute(&mut indices, 0, &mut |perm| {
        let ordered: Vec<_> = perm.iter().map(|&i| programs[i].clone()).collect();
        let serial = History::serial(&ordered);
        match serial.execute(initial) {
            Ok(ex) => ex.final_state == actual.final_state,
            Err(_) => false,
        }
    })
}

/// Visits all permutations of `items[at..]`; returns true as soon as `f`
/// accepts one.
fn permute(items: &mut [usize], at: usize, f: &mut impl FnMut(&[usize]) -> bool) -> bool {
    if at == items.len() {
        return f(items);
    }
    for i in at..items.len() {
        items.swap(at, i);
        if permute(items, at + 1, f) {
            items.swap(at, i);
            return true;
        }
        items.swap(at, i);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::et::EtBuilder;
    use crate::history::HistoryEvent;
    use crate::op::{ObjectOp, Operation};

    fn ev(et: u64, obj: u64, op: Operation) -> HistoryEvent {
        HistoryEvent::new(EtId(et), ObjectOp::new(ObjectId(obj), op))
    }

    #[test]
    fn serial_history_is_sr() {
        let t1 = EtBuilder::new(1u64).read(0u64).write(0u64, 1i64).build();
        let t2 = EtBuilder::new(2u64).read(0u64).write(0u64, 2i64).build();
        let h = History::serial(&[t1, t2]);
        assert!(is_serializable(&h));
        assert_eq!(serialization_order(&h), Some(vec![EtId(1), EtId(2)]));
    }

    #[test]
    fn classic_lost_update_is_not_sr() {
        // R1(x) R2(x) W1(x) W2(x): cycle 1→2 (R1 before W2) and 2→1.
        let h = History::from_events(vec![
            ev(1, 0, Operation::Read),
            ev(2, 0, Operation::Read),
            ev(1, 0, Operation::Write(Value::Int(1))),
            ev(2, 0, Operation::Write(Value::Int(2))),
        ]);
        assert!(!is_serializable(&h));
        assert!(ConflictGraph::build(&h).has_cycle());
    }

    #[test]
    fn commutative_interleaving_is_sr() {
        // Two interleaved increment transactions conflict under plain R/W
        // rules but commute, so the commutativity-aware test accepts them.
        let h = History::from_events(vec![
            ev(1, 0, Operation::Incr(1)),
            ev(2, 0, Operation::Incr(2)),
            ev(1, 1, Operation::Incr(3)),
            ev(2, 1, Operation::Incr(4)),
        ]);
        assert!(is_serializable(&h));
        assert!(ConflictGraph::build(&h).edges.is_empty());
    }

    #[test]
    fn non_commutative_interleaving_cycles() {
        // Inc1(x) Mul2(x) Inc1(y)... build a real cycle:
        // Inc1(x) Mul2(x) Mul2(y) Inc1(y): 1→2 on x, 2→1 on y.
        let h = History::from_events(vec![
            ev(1, 0, Operation::Incr(1)),
            ev(2, 0, Operation::MulBy(2)),
            ev(2, 1, Operation::MulBy(2)),
            ev(1, 1, Operation::Incr(1)),
        ]);
        assert!(!is_serializable(&h));
    }

    #[test]
    fn paper_log1_is_epsilon_serial_but_not_sr() {
        // The paper's example log (1): not SR (Q3 sees W2(a) but not W2(b)
        // ordering consistently) yet ε-serial.
        let h = History::paper_example_log1();
        assert!(!is_serializable(&h), "log (1) must not be SR");
        assert!(is_epsilon_serializable(&h), "log (1) must be ε-serial");
    }

    #[test]
    fn epsilon_serial_fails_when_updates_cycle() {
        // Two update ETs in a genuine W-cycle: not ε-serial either.
        let h = History::from_events(vec![
            ev(1, 0, Operation::Write(Value::Int(1))),
            ev(2, 0, Operation::Write(Value::Int(2))),
            ev(2, 1, Operation::Write(Value::Int(3))),
            ev(1, 1, Operation::Write(Value::Int(4))),
        ]);
        assert!(!is_epsilon_serializable(&h));
    }

    #[test]
    fn query_only_history_is_trivially_epsilon_serial() {
        let h = History::from_events(vec![
            ev(1, 0, Operation::Read),
            ev(2, 0, Operation::Read),
            ev(1, 1, Operation::Read),
        ]);
        assert!(is_epsilon_serializable(&h));
        assert!(is_serializable(&h), "reads never conflict");
    }

    #[test]
    fn topological_order_respects_edges() {
        let h = History::from_events(vec![
            ev(1, 0, Operation::Write(Value::Int(1))),
            ev(2, 0, Operation::Read),
            ev(2, 1, Operation::Write(Value::Int(2))),
            ev(3, 1, Operation::Read),
        ]);
        let order = serialization_order(&h).unwrap();
        let pos = |e: u64| order.iter().position(|&x| x == EtId(e)).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn brute_force_agrees_with_graph_on_sr_histories() {
        let h = History::from_events(vec![
            ev(1, 0, Operation::Incr(5)),
            ev(2, 0, Operation::Incr(3)),
            ev(1, 1, Operation::Incr(1)),
        ]);
        assert!(is_serializable(&h));
        assert!(is_final_state_serializable(&h, &BTreeMap::new()));
    }

    #[test]
    fn brute_force_rejects_unserializable_final_state() {
        // W1(x,=1) then interleave an Inc2 so no serial order reproduces it:
        // Inc2(x,10) W1(x,5) Inc2(y,1) — serial orders give (5,1) for
        // [1,2]→x=5+? wait: T1 = W(x,5); T2 = Inc(x,10), Inc(y,1).
        // Interleaved: x = 0+10 then =5, y=1 → final x=5,y=1.
        // Serial T1,T2: x=15,y=1. Serial T2,T1: x=5,y=1 → equal! So this IS
        // final-state serializable. Build a genuinely non-FSR one instead:
        // T1 = Inc(x,10); T2 = Mul(x,2). Interleave so each sees half:
        // impossible with single ops; use two objects:
        // T1: Inc(x,10), Inc(y,10); T2: Mul(x,2), Mul(y,2)
        // Interleaved Inc1(x) Mul2(x) Mul2(y) Inc1(y):
        //   x=(0+10)*2=20, y=0*2+10=10 → neither serial order matches.
        let h = History::from_events(vec![
            ev(1, 0, Operation::Incr(10)),
            ev(2, 0, Operation::MulBy(2)),
            ev(2, 1, Operation::MulBy(2)),
            ev(1, 1, Operation::Incr(10)),
        ]);
        let mut initial = BTreeMap::new();
        initial.insert(ObjectId(0), Value::Int(0));
        initial.insert(ObjectId(1), Value::Int(0));
        assert!(!is_final_state_serializable(&h, &initial));
        assert!(!is_serializable(&h), "graph test agrees");
    }

    #[test]
    fn conflict_sr_implies_final_state_sr_on_samples() {
        // Soundness spot-check (full property covered by proptests).
        let samples = vec![
            History::serial(&[
                EtBuilder::new(1u64).incr(0u64, 1).build(),
                EtBuilder::new(2u64).mul(0u64, 3).build(),
            ]),
            History::from_events(vec![
                ev(1, 0, Operation::Incr(1)),
                ev(2, 1, Operation::MulBy(2)),
                ev(1, 1, Operation::Read),
            ]),
        ];
        for h in samples {
            if is_serializable(&h) {
                assert!(is_final_state_serializable(&h, &BTreeMap::new()), "{h}");
            }
        }
    }

    #[test]
    fn empty_history_is_sr_and_esr() {
        let h = History::new();
        assert!(is_serializable(&h));
        assert!(is_epsilon_serializable(&h));
        assert_eq!(serialization_order(&h), Some(vec![]));
    }

    #[test]
    fn graph_successors() {
        let h = History::from_events(vec![
            ev(1, 0, Operation::Write(Value::Int(1))),
            ev(2, 0, Operation::Read),
        ]);
        let g = ConflictGraph::build(&h);
        let succ: Vec<_> = g.successors(EtId(1)).collect();
        assert_eq!(succ, vec![EtId(2)]);
        assert_eq!(g.successors(EtId(2)).count(), 0);
    }
}
