//! Epsilon-transactions (ETs).
//!
//! An ET is a sequence of operations on data objects (§2.1). An ET
//! containing only reads is a *query ET*; an ET containing at least one
//! write is an *update ET*. Update ETs must be serializable with respect
//! to each other; query ETs may interleave freely and accumulate bounded
//! inconsistency.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{EtId, ObjectId};
use crate::op::{ObjectOp, Operation};

/// Whether an ET is a query (read-only) or an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EtKind {
    /// Read-only epsilon-transaction (`Q^ET`).
    Query,
    /// Epsilon-transaction containing at least one write (`U^ET`).
    Update,
}

impl fmt::Display for EtKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtKind::Query => write!(f, "Q"),
            EtKind::Update => write!(f, "U"),
        }
    }
}

/// A complete epsilon-transaction program: its identity and the ordered
/// operations it performs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpsilonTransaction {
    /// Unique identity.
    pub id: EtId,
    /// The ordered operations.
    pub ops: Vec<ObjectOp>,
    /// The inconsistency budget of a query ET: the maximum number of
    /// conflicting concurrent update ETs it may import. `u64::MAX` means
    /// unbounded; `0` demands strict serializability. Ignored for update
    /// ETs (updates are always SR among themselves).
    pub epsilon: u64,
}

impl EpsilonTransaction {
    /// Builds an ET with an unbounded epsilon.
    pub fn new(id: EtId, ops: Vec<ObjectOp>) -> Self {
        Self {
            id,
            ops,
            epsilon: u64::MAX,
        }
    }

    /// Builds an ET with the given inconsistency budget.
    pub fn with_epsilon(id: EtId, ops: Vec<ObjectOp>, epsilon: u64) -> Self {
        Self { id, ops, epsilon }
    }

    /// Classifies the ET (§2.1): update iff it contains at least one
    /// write.
    pub fn kind(&self) -> EtKind {
        if self.ops.iter().any(|o| o.op.is_write()) {
            EtKind::Update
        } else {
            EtKind::Query
        }
    }

    /// True for query ETs.
    pub fn is_query(&self) -> bool {
        self.kind() == EtKind::Query
    }

    /// True for update ETs.
    pub fn is_update(&self) -> bool {
        self.kind() == EtKind::Update
    }

    /// The set of objects read by this ET.
    pub fn read_set(&self) -> BTreeSet<ObjectId> {
        self.ops
            .iter()
            .filter(|o| matches!(o.op, Operation::Read))
            .map(|o| o.object)
            .collect()
    }

    /// The set of objects written by this ET.
    pub fn write_set(&self) -> BTreeSet<ObjectId> {
        self.ops
            .iter()
            .filter(|o| o.op.is_write())
            .map(|o| o.object)
            .collect()
    }

    /// All objects touched by this ET.
    pub fn access_set(&self) -> BTreeSet<ObjectId> {
        self.ops.iter().map(|o| o.object).collect()
    }

    /// True when every write in this ET is read-independent (a RITU
    /// candidate, §3.3).
    pub fn is_read_independent(&self) -> bool {
        self.ops
            .iter()
            .filter(|o| o.op.is_write())
            .all(|o| o.op.is_read_independent())
    }

    /// True when every pair of write operations in this ET commutes with
    /// every write of `other` that targets the same object (a COMMU
    /// candidate pair, §3.2).
    pub fn writes_commute_with(&self, other: &EpsilonTransaction) -> bool {
        self.ops
            .iter()
            .filter(|o| o.op.is_write())
            .all(|a| {
                other
                    .ops
                    .iter()
                    .filter(|o| o.op.is_write() && o.object == a.object)
                    .all(|b| a.op.commutes_with(&b.op))
            })
    }

    /// True when every write has a defined exact compensation (a COMPE
    /// fast-path candidate, §4).
    pub fn is_self_compensatable(&self) -> bool {
        self.ops
            .iter()
            .filter(|o| o.op.is_write())
            .all(|o| o.op.compensation().is_some())
    }
}

impl fmt::Display for EpsilonTransaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}:", self.kind(), self.id)?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

/// Fluent builder for [`EpsilonTransaction`]s, used pervasively in tests,
/// examples, and workload generators.
///
/// ```
/// use esr_core::et::{EtBuilder, EtKind};
///
/// let audit = EtBuilder::new(1u64).read(0u64).read(1u64).epsilon(2).build();
/// assert_eq!(audit.kind(), EtKind::Query);
/// assert_eq!(audit.epsilon, 2);
///
/// let transfer = EtBuilder::new(2u64).decr(0u64, 50).incr(1u64, 50).build();
/// assert!(transfer.is_update());
/// assert!(transfer.writes_commute_with(&transfer));
/// ```
#[derive(Debug, Clone)]
pub struct EtBuilder {
    id: EtId,
    ops: Vec<ObjectOp>,
    epsilon: u64,
}

impl EtBuilder {
    /// Starts building an ET with the given id.
    pub fn new(id: impl Into<EtId>) -> Self {
        Self {
            id: id.into(),
            ops: Vec::new(),
            epsilon: u64::MAX,
        }
    }

    /// Adds a read of `object`.
    pub fn read(mut self, object: impl Into<ObjectId>) -> Self {
        self.ops
            .push(ObjectOp::new(object.into(), Operation::Read));
        self
    }

    /// Adds a write of `value` to `object`.
    pub fn write(mut self, object: impl Into<ObjectId>, value: impl Into<crate::value::Value>) -> Self {
        self.ops
            .push(ObjectOp::new(object.into(), Operation::Write(value.into())));
        self
    }

    /// Adds an increment of `object` by `n`.
    pub fn incr(mut self, object: impl Into<ObjectId>, n: i64) -> Self {
        self.ops
            .push(ObjectOp::new(object.into(), Operation::Incr(n)));
        self
    }

    /// Adds a decrement of `object` by `n`.
    pub fn decr(mut self, object: impl Into<ObjectId>, n: i64) -> Self {
        self.ops
            .push(ObjectOp::new(object.into(), Operation::Decr(n)));
        self
    }

    /// Adds a multiplication of `object` by `k`.
    pub fn mul(mut self, object: impl Into<ObjectId>, k: i64) -> Self {
        self.ops
            .push(ObjectOp::new(object.into(), Operation::MulBy(k)));
        self
    }

    /// Adds an arbitrary operation.
    pub fn op(mut self, object: impl Into<ObjectId>, op: Operation) -> Self {
        self.ops.push(ObjectOp::new(object.into(), op));
        self
    }

    /// Sets the inconsistency budget.
    pub fn epsilon(mut self, epsilon: u64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Finishes the ET.
    pub fn build(self) -> EpsilonTransaction {
        EpsilonTransaction::with_epsilon(self.id, self.ops, self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn classification() {
        let q = EtBuilder::new(1u64).read(0u64).read(1u64).build();
        assert_eq!(q.kind(), EtKind::Query);
        assert!(q.is_query() && !q.is_update());

        let u = EtBuilder::new(2u64).read(0u64).incr(0u64, 1).build();
        assert_eq!(u.kind(), EtKind::Update);
        assert!(u.is_update());

        let empty = EtBuilder::new(3u64).build();
        assert_eq!(empty.kind(), EtKind::Query, "empty ET is a trivial query");
    }

    #[test]
    fn read_write_access_sets() {
        let et = EtBuilder::new(1u64)
            .read(0u64)
            .incr(1u64, 5)
            .write(2u64, Value::Int(9))
            .read(1u64)
            .build();
        assert_eq!(et.read_set().len(), 2);
        assert!(et.read_set().contains(&ObjectId(0)));
        assert!(et.read_set().contains(&ObjectId(1)));
        assert_eq!(et.write_set().len(), 2);
        assert!(et.write_set().contains(&ObjectId(1)));
        assert!(et.write_set().contains(&ObjectId(2)));
        assert_eq!(et.access_set().len(), 3);
    }

    #[test]
    fn read_independence_predicate() {
        let blind = EtBuilder::new(1u64).write(0u64, 5i64).build();
        assert!(blind.is_read_independent());
        let dependent = EtBuilder::new(2u64).incr(0u64, 5).build();
        assert!(!dependent.is_read_independent());
        // A query is vacuously read-independent.
        assert!(EtBuilder::new(3u64).read(0u64).build().is_read_independent());
    }

    #[test]
    fn writes_commute_with_detects_commu_pairs() {
        let a = EtBuilder::new(1u64).incr(0u64, 5).decr(1u64, 2).build();
        let b = EtBuilder::new(2u64).incr(0u64, 3).build();
        assert!(a.writes_commute_with(&b));
        assert!(b.writes_commute_with(&a));

        let c = EtBuilder::new(3u64).mul(0u64, 2).build();
        assert!(!a.writes_commute_with(&c));
        // But c commutes with an ET touching only a different object.
        let d = EtBuilder::new(4u64).incr(5u64, 1).build();
        assert!(c.writes_commute_with(&d));
    }

    #[test]
    fn self_compensatable_predicate() {
        assert!(EtBuilder::new(1u64).incr(0u64, 5).mul(1u64, 2).build().is_self_compensatable());
        assert!(!EtBuilder::new(2u64).write(0u64, 1i64).build().is_self_compensatable());
    }

    #[test]
    fn epsilon_defaults_and_override() {
        let et = EtBuilder::new(1u64).read(0u64).build();
        assert_eq!(et.epsilon, u64::MAX);
        let et = EtBuilder::new(1u64).read(0u64).epsilon(3).build();
        assert_eq!(et.epsilon, 3);
    }

    #[test]
    fn display_shows_kind_and_ops() {
        let et = EtBuilder::new(7u64).read(0u64).incr(1u64, 2).build();
        let s = et.to_string();
        assert!(s.starts_with("Uet7:"), "{s}");
        assert!(s.contains("R[x0]"));
        assert!(s.contains("Inc(2)[x1]"));
    }
}
