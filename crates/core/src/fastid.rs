//! A cheap hasher for id-keyed internal maps.
//!
//! The repo's identifier types ([`crate::ids`]) are plain `u64`
//! counters, so SipHash's per-call cost on the hot apply and metrics
//! paths is pure overhead. [`FastIdHasher`] mixes a fixed-width integer
//! with one Fibonacci multiply plus an xorshift — enough to spread
//! dense counters over hash buckets. Not DoS-resistant: use only for
//! transient internal maps (batch accumulators, metric label caches),
//! never for anything fed by a network peer.
//!
//! Moved here from `esr-storage` so that crates below the storage
//! layer (notably `esr-obs`) can share it; `esr_storage::shard`
//! re-exports these names for existing callers.

/// A multiply-xorshift hasher for id-keyed internal maps. Ids are plain
/// counters (already uniform after a Fibonacci multiply), so one
/// multiply plus a shift mixes them fine.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastIdHasher(u64);

impl std::hash::Hasher for FastIdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys (FNV-1a); id types hit the
        // fixed-width paths below.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let mut h = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        self.0 = h;
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }
}

/// `BuildHasher` for [`FastIdHasher`].
pub type FastIdBuildHasher = std::hash::BuildHasherDefault<FastIdHasher>;

/// A `HashMap` keyed by an id type, using [`FastIdHasher`].
pub type FastIdMap<K, V> = std::collections::HashMap<K, V, FastIdBuildHasher>;

/// A `HashSet` keyed by an id type, using [`FastIdHasher`].
pub type FastIdSet<K> = std::collections::HashSet<K, FastIdBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ObjectId;

    #[test]
    fn fast_id_map_round_trips() {
        let mut m: FastIdMap<ObjectId, u64> = FastIdMap::default();
        for i in 0..1000u64 {
            m.insert(ObjectId(i), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&ObjectId(123)), Some(&123));
        let mut s: FastIdSet<ObjectId> = FastIdSet::default();
        assert!(s.insert(ObjectId(1)));
        assert!(!s.insert(ObjectId(1)));
    }

    #[test]
    fn byte_fallback_distinguishes_strings() {
        use std::hash::{Hash, Hasher};
        let hash = |s: &str| {
            let mut h = FastIdHasher::default();
            s.hash(&mut h);
            h.finish()
        };
        assert_ne!(hash("esr_msets_applied_total"), hash("esr_backlog"));
    }
}
