//! # esr-core — epsilon-serializability theory
//!
//! Core model of **epsilon-serializability (ESR)** after Pu & Leff,
//! *Replica Control in Distributed Systems: An Asynchronous Approach*
//! (Columbia TR CUCS-053-90 / SIGMOD 1991).
//!
//! ESR extends 1-copy serializability by letting read-only *query ETs*
//! interleave freely with *update ETs* and observe **bounded**
//! inconsistency, while update ETs remain serializable among themselves.
//! The error a query can accumulate is bounded by its *overlap* — the set
//! of conflicting update ETs concurrent with it — and users tune the
//! bound per query with an epsilon specification; at epsilon = 0 queries
//! are strictly serializable.
//!
//! This crate supplies the machinery every replica-control method builds
//! on:
//!
//! * [`ids`] — newtyped identifiers (ETs, sites, objects, timestamps);
//! * [`value`] / [`op`] — object values and the operation algebra with
//!   commutativity, read-independence, and compensation semantics;
//! * [`et`] — epsilon-transaction programs and classification;
//! * [`history`] — operation logs, including the paper's example log (1);
//! * [`serializability`] — conflict-graph SR test, ε-serializability
//!   test, brute-force oracle;
//! * [`overlap`] — overlap sets and the error-bound theorem;
//! * [`divergence`] — inconsistency counters, epsilon specs, and COMMU
//!   lock-counters;
//! * [`lock`] — ET lock modes, the paper's Tables 2–3, and a queueing
//!   2PL lock manager with deadlock detection;
//! * [`tso`] — basic-timestamp divergence control: TO for update ETs,
//!   charged out-of-order reads for query ETs (§3.1);
//! * [`spatial`] — the §5.1 spatial consistency criteria: bounding
//!   queries by pending operations, value deviation, or changed items;
//! * [`fastid`] — a cheap non-cryptographic hasher for id-keyed
//!   internal maps (shared by the storage and observability layers).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod divergence;
pub mod error;
pub mod et;
pub mod fastid;
pub mod history;
pub mod ids;
pub mod lock;
pub mod op;
pub mod overlap;
pub mod serializability;
pub mod spatial;
pub mod tso;
pub mod value;

pub use divergence::{Admission, EpsilonSpec, InconsistencyCounter, LockCounters};
pub use error::{CoreError, CoreResult};
pub use et::{EpsilonTransaction, EtBuilder, EtKind};
pub use fastid::{FastIdBuildHasher, FastIdHasher, FastIdMap, FastIdSet};
pub use history::{interleavings, History, HistoryEvent};
pub use ids::{ClientId, EtId, LamportTs, MsgId, ObjectId, SeqNo, SiteId, VersionTs};
pub use lock::{Compat, LockManager, LockMode, LockOutcome, Protocol};
pub use op::{ObjectOp, Operation};
pub use overlap::{imported_inconsistency, overlap_set, overlap_size};
pub use serializability::{
    is_epsilon_serializable, is_final_state_serializable, is_serializable, serialization_order,
    ConflictGraph,
};
pub use spatial::{DeviationTracker, SpatialSpec};
pub use tso::{QueryReadDecision, TimestampOrdering, TsoDecision};
pub use value::Value;
