//! Locking for epsilon-transactions.
//!
//! Two halves:
//!
//! * [`compat`] — the lock modes (`RU`, `WU`, `RQ`) and the protocol
//!   compatibility tables, including the paper's Table 2 (ORDUP) and
//!   Table 3 (COMMU);
//! * [`manager`] — a queueing two-phase lock manager parameterized by
//!   protocol, with deadlock detection.

pub mod compat;
pub mod manager;

pub use compat::{Compat, LockMode, Protocol};
pub use manager::{LockManager, LockOutcome, LockRequest, LockStats};
