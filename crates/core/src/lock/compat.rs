//! ET lock modes and the compatibility tables of the paper.
//!
//! The paper refines two-phase locking for epsilon-transactions with
//! three lock classes (§3.1–§3.2):
//!
//! * `RU` — read lock taken by an **update** ET,
//! * `WU` — write lock taken by an **update** ET,
//! * `RQ` — read lock taken by a **query** ET.
//!
//! Three protocols give three compatibility tables:
//!
//! * **Standard 2PL** (reads/writes, no ET classes): only R/R compatible.
//! * **ORDUP** (Table 2): query reads are compatible with everything;
//!   update locks keep the standard R/W conflicts.
//! * **COMMU** (Table 3): additionally, `WU` locks are compatible with
//!   other update locks when the underlying operations *commute*.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::op::Operation;

/// Lock mode requested by an epsilon-transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LockMode {
    /// Read lock by an update ET.
    RU,
    /// Write lock by an update ET.
    WU,
    /// Read lock by a query ET.
    RQ,
}

impl LockMode {
    /// All modes, in the row/column order of the paper's tables.
    pub const ALL: [LockMode; 3] = [LockMode::RU, LockMode::WU, LockMode::RQ];

    /// Is this a read mode?
    pub fn is_read(self) -> bool {
        matches!(self, LockMode::RU | LockMode::RQ)
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::RU => write!(f, "RU"),
            LockMode::WU => write!(f, "WU"),
            LockMode::RQ => write!(f, "RQ"),
        }
    }
}

/// A cell of a compatibility table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Compat {
    /// Always compatible ("OK" in the paper's tables).
    Ok,
    /// Never compatible (blank in the paper's tables).
    Conflict,
    /// Compatible exactly when the two operations commute ("Comm").
    WhenCommutative,
}

impl fmt::Display for Compat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Compat::Ok => write!(f, "OK"),
            Compat::Conflict => write!(f, "--"),
            Compat::WhenCommutative => write!(f, "Comm"),
        }
    }
}

/// The locking protocol in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Standard 2PL: every ET is treated like an update ET, queries
    /// included, and only read/read pairs are compatible.
    Standard2pl,
    /// The ORDUP table (paper Table 2).
    Ordup,
    /// The COMMU table (paper Table 3).
    Commu,
}

impl Protocol {
    /// The static table entry for (held, requested) under this protocol.
    pub fn entry(self, held: LockMode, requested: LockMode) -> Compat {
        use Compat::*;
        use LockMode::*;
        match self {
            // Standard 2PL ignores the query/update distinction: RQ
            // behaves like RU, and only read/read is compatible.
            Protocol::Standard2pl => {
                if held.is_read() && requested.is_read() {
                    Ok
                } else {
                    Conflict
                }
            }
            // Table 2. Queries are compatible with everything (both as
            // holder and as requester); update locks conflict as usual.
            Protocol::Ordup => match (held, requested) {
                (RQ, _) | (_, RQ) => Ok,
                (RU, RU) => Ok,
                (RU, WU) | (WU, RU) | (WU, WU) => Conflict,
            },
            // Table 3. As Table 2, but WU is compatible with other update
            // locks when the operations commute. (The paper notes RU/WU
            // commutativity is rare but the table still says "Comm".)
            Protocol::Commu => match (held, requested) {
                (RQ, _) | (_, RQ) => Ok,
                (RU, RU) => Ok,
                (RU, WU) | (WU, RU) | (WU, WU) => WhenCommutative,
            },
        }
    }

    /// Decides actual compatibility of a request against a holder, using
    /// the operations to resolve `WhenCommutative` cells. A missing
    /// operation is treated conservatively as non-commutative.
    pub fn compatible(
        self,
        held: LockMode,
        held_op: Option<&Operation>,
        requested: LockMode,
        requested_op: Option<&Operation>,
    ) -> bool {
        match self.entry(held, requested) {
            Compat::Ok => true,
            Compat::Conflict => false,
            Compat::WhenCommutative => match (held_op, requested_op) {
                (Some(a), Some(b)) => a.commutes_with(b),
                _ => false,
            },
        }
    }

    /// The full 3×3 table in the paper's row/column order, for the
    /// table-regeneration harness.
    pub fn table(self) -> [[Compat; 3]; 3] {
        let mut t = [[Compat::Conflict; 3]; 3];
        for (i, held) in LockMode::ALL.iter().enumerate() {
            for (j, req) in LockMode::ALL.iter().enumerate() {
                t[i][j] = self.entry(*held, *req);
            }
        }
        t
    }

    /// Renders the table in the paper's layout (rows = held mode, columns
    /// = requested mode).
    pub fn render_table(self) -> String {
        let mut out = String::new();
        out.push_str("      ");
        for m in LockMode::ALL {
            out.push_str(&format!("{:>6}", m.to_string()));
        }
        out.push('\n');
        for held in LockMode::ALL {
            out.push_str(&format!("{:>6}", held.to_string()));
            for req in LockMode::ALL {
                out.push_str(&format!("{:>6}", self.entry(held, req).to_string()));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Standard2pl => write!(f, "2PL"),
            Protocol::Ordup => write!(f, "ORDUP"),
            Protocol::Commu => write!(f, "COMMU"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use Compat::*;
    use LockMode::*;

    #[test]
    fn standard_2pl_only_reads_compatible() {
        let p = Protocol::Standard2pl;
        assert_eq!(p.entry(RU, RU), Ok);
        assert_eq!(p.entry(RU, RQ), Ok);
        assert_eq!(p.entry(RQ, RQ), Ok);
        assert_eq!(p.entry(RU, WU), Conflict);
        assert_eq!(p.entry(WU, RQ), Conflict, "2PL blocks queries on writes");
        assert_eq!(p.entry(WU, WU), Conflict);
    }

    #[test]
    fn ordup_matches_paper_table2() {
        // Table 2:      RU    WU    RQ
        //        RU     OK    --    OK
        //        WU     --    --    OK
        //        RQ     OK    OK    OK
        let t = Protocol::Ordup.table();
        assert_eq!(t[0], [Ok, Conflict, Ok]); // RU row
        assert_eq!(t[1], [Conflict, Conflict, Ok]); // WU row
        assert_eq!(t[2], [Ok, Ok, Ok]); // RQ row
    }

    #[test]
    fn commu_matches_paper_table3() {
        // Table 3:      RU     WU     RQ
        //        RU     OK     Comm   OK
        //        WU     Comm   Comm   OK
        //        RQ     OK     OK     OK
        let t = Protocol::Commu.table();
        assert_eq!(t[0], [Ok, WhenCommutative, Ok]);
        assert_eq!(t[1], [WhenCommutative, WhenCommutative, Ok]);
        assert_eq!(t[2], [Ok, Ok, Ok]);
    }

    #[test]
    fn queries_never_blocked_under_et_protocols() {
        for p in [Protocol::Ordup, Protocol::Commu] {
            for held in LockMode::ALL {
                assert_eq!(p.entry(held, RQ), Ok, "{p}: {held} vs RQ");
                assert_eq!(p.entry(RQ, held), Ok, "{p}: RQ vs {held}");
            }
        }
    }

    #[test]
    fn commu_resolves_comm_cells_with_operations() {
        let p = Protocol::Commu;
        let inc = Operation::Incr(1);
        let inc2 = Operation::Incr(2);
        let mul = Operation::MulBy(2);
        assert!(p.compatible(WU, Some(&inc), WU, Some(&inc2)));
        assert!(!p.compatible(WU, Some(&inc), WU, Some(&mul)));
        // Write/Write never commutes.
        let w = Operation::Write(Value::Int(1));
        assert!(!p.compatible(WU, Some(&w), WU, Some(&w)));
    }

    #[test]
    fn missing_operation_is_conservative() {
        let p = Protocol::Commu;
        assert!(!p.compatible(WU, None, WU, Some(&Operation::Incr(1))));
        assert!(!p.compatible(WU, Some(&Operation::Incr(1)), WU, None));
        // But Ok cells don't need operations.
        assert!(p.compatible(RQ, None, WU, None));
    }

    #[test]
    fn ru_wu_comm_cell_exists_but_rarely_commutes() {
        // The paper: "there are … few examples of commutativity between
        // WU and RU". An RU lock's operation is a Read, which commutes
        // with no write — so the Comm cell resolves to incompatible.
        let p = Protocol::Commu;
        assert_eq!(p.entry(RU, WU), WhenCommutative);
        assert!(!p.compatible(RU, Some(&Operation::Read), WU, Some(&Operation::Incr(1))));
    }

    #[test]
    fn table_rendering_contains_all_cells() {
        let s = Protocol::Commu.render_table();
        assert!(s.contains("Comm"));
        assert!(s.contains("OK"));
        let s2 = Protocol::Ordup.render_table();
        assert!(s2.contains("--"));
        assert!(!s2.contains("Comm"));
    }

    #[test]
    fn mode_helpers() {
        assert!(RU.is_read());
        assert!(RQ.is_read());
        assert!(!WU.is_read());
        assert_eq!(WU.to_string(), "WU");
        assert_eq!(Protocol::Ordup.to_string(), "ORDUP");
    }
}
