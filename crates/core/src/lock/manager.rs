//! A two-phase lock manager parameterized by compatibility protocol.
//!
//! The manager implements the modified 2PL of §3.1–§3.2: requests are
//! granted when compatible with every current holder (per the protocol's
//! table, resolving `Comm` cells with the actual operations), queued FIFO
//! otherwise, with wait-for-graph deadlock detection at enqueue time and
//! strict two-phase enforcement (no acquisition after first release).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::error::{CoreError, CoreResult};
use crate::ids::{EtId, ObjectId};
use crate::op::Operation;

use super::compat::{LockMode, Protocol};

/// One granted or queued lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockRequest {
    /// Requesting ET.
    pub et: EtId,
    /// Requested mode.
    pub mode: LockMode,
    /// The operation to be performed under the lock, used to resolve
    /// `Comm` compatibility cells.
    pub op: Option<Operation>,
}

/// Outcome of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was granted immediately.
    Granted,
    /// The request was queued behind incompatible holders.
    Queued,
}

#[derive(Debug, Default)]
struct ObjectLocks {
    holders: Vec<LockRequest>,
    queue: VecDeque<LockRequest>,
}

/// The lock manager.
///
/// ```
/// use esr_core::ids::{EtId, ObjectId};
/// use esr_core::lock::{LockManager, LockMode, LockOutcome, Protocol};
/// use esr_core::op::Operation;
///
/// // Under the ORDUP table (Table 2) a query read never blocks, even
/// // behind an update writer.
/// let mut mgr = LockManager::new(Protocol::Ordup);
/// mgr.acquire(EtId(1), ObjectId(0), LockMode::WU, Some(Operation::Incr(1))).unwrap();
/// let outcome = mgr.acquire(EtId(2), ObjectId(0), LockMode::RQ, None).unwrap();
/// assert_eq!(outcome, LockOutcome::Granted);
/// ```
#[derive(Debug)]
pub struct LockManager {
    protocol: Protocol,
    objects: BTreeMap<ObjectId, ObjectLocks>,
    /// Objects on which each ET holds at least one lock.
    held_by: BTreeMap<EtId, BTreeSet<ObjectId>>,
    /// ETs that have released (shrinking phase) — may not acquire again.
    released: BTreeSet<EtId>,
    /// Statistics: total grants, queue events, deadlocks detected.
    stats: LockStats,
}

/// Counters exposed for benchmarking and the Table-1 probes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Requests granted immediately.
    pub granted: u64,
    /// Requests that had to queue.
    pub queued: u64,
    /// Requests refused because they would deadlock.
    pub deadlocks: u64,
}

impl LockManager {
    /// A fresh manager using the given protocol.
    pub fn new(protocol: Protocol) -> Self {
        Self {
            protocol,
            objects: BTreeMap::new(),
            held_by: BTreeMap::new(),
            released: BTreeSet::new(),
            stats: LockStats::default(),
        }
    }

    /// The protocol in force.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> LockStats {
        self.stats
    }

    /// Requests a lock on `object` in `mode` for `et`.
    ///
    /// Returns [`LockOutcome::Granted`] or [`LockOutcome::Queued`], or an
    /// error if the request violates two-phase locking or would close a
    /// deadlock cycle (in which case the request is not queued).
    pub fn acquire(
        &mut self,
        et: EtId,
        object: ObjectId,
        mode: LockMode,
        op: Option<Operation>,
    ) -> CoreResult<LockOutcome> {
        if self.released.contains(&et) {
            return Err(CoreError::TwoPhaseViolation { et });
        }
        let locks = self.objects.entry(object).or_default();

        // Re-entrant: already holding this object in a mode that covers
        // the request (same mode, or holding WU when asking for a read).
        if locks
            .holders
            .iter()
            .any(|h| h.et == et && (h.mode == mode || (h.mode == LockMode::WU && mode.is_read())))
        {
            self.stats.granted += 1;
            return Ok(LockOutcome::Granted);
        }

        let request = LockRequest { et, mode, op };
        let compatible_with_holders = locks
            .holders
            .iter()
            .filter(|h| h.et != et)
            .all(|h| {
                self.protocol
                    .compatible(h.mode, h.op.as_ref(), mode, request.op.as_ref())
            });
        // FIFO fairness: an incompatible queue ahead of us also blocks us
        // (prevents read streams from starving writers).
        let compatible_with_queue = locks.queue.iter().all(|qr| {
            self.protocol
                .compatible(qr.mode, qr.op.as_ref(), mode, request.op.as_ref())
        });

        if compatible_with_holders && compatible_with_queue {
            locks.holders.push(request);
            self.held_by.entry(et).or_default().insert(object);
            self.stats.granted += 1;
            return Ok(LockOutcome::Granted);
        }

        // Queue the request, then check for deadlock.
        locks.queue.push_back(request);
        if self.would_deadlock(et) {
            let locks = self.objects.get_mut(&object).expect("just inserted");
            // Remove the request we just queued (the newest one from et).
            if let Some(pos) = locks
                .queue
                .iter()
                .rposition(|r| r.et == et && r.mode == mode)
            {
                locks.queue.remove(pos);
            }
            self.stats.deadlocks += 1;
            return Err(CoreError::Deadlock { et });
        }
        self.stats.queued += 1;
        Ok(LockOutcome::Queued)
    }

    /// Releases every lock held or queued by `et` (end of transaction),
    /// marks it as shrunk, and promotes newly compatible queued requests.
    ///
    /// Returns the `(et, object)` pairs granted by promotion, in grant
    /// order, so the caller can resume waiting transactions.
    pub fn release_all(&mut self, et: EtId) -> Vec<(EtId, ObjectId)> {
        self.released.insert(et);
        self.held_by.remove(&et);
        for locks in self.objects.values_mut() {
            locks.holders.retain(|h| h.et != et);
            locks.queue.retain(|r| r.et != et);
        }
        self.promote()
    }

    /// Scans all queues and grants requests that have become compatible.
    fn promote(&mut self) -> Vec<(EtId, ObjectId)> {
        let mut granted = Vec::new();
        let object_ids: Vec<ObjectId> = self.objects.keys().copied().collect();
        for oid in object_ids {
            loop {
                let locks = self.objects.get_mut(&oid).expect("known object");
                let Some(front) = locks.queue.front() else {
                    break;
                };
                let compatible = locks
                    .holders
                    .iter()
                    .filter(|h| h.et != front.et)
                    .all(|h| {
                        self.protocol
                            .compatible(h.mode, h.op.as_ref(), front.mode, front.op.as_ref())
                    });
                if !compatible {
                    break;
                }
                let req = locks.queue.pop_front().expect("front exists");
                let et = req.et;
                locks.holders.push(req);
                self.held_by.entry(et).or_default().insert(oid);
                self.stats.granted += 1;
                granted.push((et, oid));
            }
        }
        granted
    }

    /// True when `et` currently holds a lock on `object`.
    pub fn holds(&self, et: EtId, object: ObjectId) -> bool {
        self.objects
            .get(&object)
            .is_some_and(|l| l.holders.iter().any(|h| h.et == et))
    }

    /// True when `et` has a queued (waiting) request on `object`.
    pub fn waiting(&self, et: EtId, object: ObjectId) -> bool {
        self.objects
            .get(&object)
            .is_some_and(|l| l.queue.iter().any(|r| r.et == et))
    }

    /// Number of lock holders on `object`.
    pub fn holder_count(&self, object: ObjectId) -> usize {
        self.objects.get(&object).map_or(0, |l| l.holders.len())
    }

    /// Builds the wait-for graph and checks whether `start` is on a
    /// cycle.
    fn would_deadlock(&self, start: EtId) -> bool {
        // waits_for: queued ET → holders of incompatible locks on that
        // object (and incompatible earlier queued requests).
        let mut edges: BTreeSet<(EtId, EtId)> = BTreeSet::new();
        for locks in self.objects.values() {
            for (qi, qr) in locks.queue.iter().enumerate() {
                for h in &locks.holders {
                    if h.et != qr.et
                        && !self
                            .protocol
                            .compatible(h.mode, h.op.as_ref(), qr.mode, qr.op.as_ref())
                    {
                        edges.insert((qr.et, h.et));
                    }
                }
                for ahead in locks.queue.iter().take(qi) {
                    if ahead.et != qr.et
                        && !self.protocol.compatible(
                            ahead.mode,
                            ahead.op.as_ref(),
                            qr.mode,
                            qr.op.as_ref(),
                        )
                    {
                        edges.insert((qr.et, ahead.et));
                    }
                }
            }
        }
        // DFS from `start` looking for a path back to `start`.
        let mut stack: Vec<EtId> = edges
            .iter()
            .filter(|(f, _)| *f == start)
            .map(|(_, t)| *t)
            .collect();
        let mut visited = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == start {
                return true;
            }
            if !visited.insert(n) {
                continue;
            }
            stack.extend(
                edges
                    .iter()
                    .filter(|(f, _)| *f == n)
                    .map(|(_, t)| *t),
            );
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use LockMode::*;

    const X: ObjectId = ObjectId(0);
    const Y: ObjectId = ObjectId(1);

    fn mgr(p: Protocol) -> LockManager {
        LockManager::new(p)
    }

    #[test]
    fn grant_and_hold() {
        let mut m = mgr(Protocol::Standard2pl);
        assert_eq!(m.acquire(EtId(1), X, RU, None).unwrap(), LockOutcome::Granted);
        assert!(m.holds(EtId(1), X));
        assert_eq!(m.holder_count(X), 1);
    }

    #[test]
    fn standard_2pl_blocks_query_behind_writer() {
        let mut m = mgr(Protocol::Standard2pl);
        m.acquire(EtId(1), X, WU, Some(Operation::Write(Value::Int(1))))
            .unwrap();
        let out = m.acquire(EtId(2), X, RQ, None).unwrap();
        assert_eq!(out, LockOutcome::Queued);
        assert!(m.waiting(EtId(2), X));
    }

    #[test]
    fn ordup_never_blocks_queries() {
        let mut m = mgr(Protocol::Ordup);
        m.acquire(EtId(1), X, WU, Some(Operation::Write(Value::Int(1))))
            .unwrap();
        assert_eq!(m.acquire(EtId(2), X, RQ, None).unwrap(), LockOutcome::Granted);
        // And writers are not blocked by queries either.
        let mut m = mgr(Protocol::Ordup);
        m.acquire(EtId(2), X, RQ, None).unwrap();
        assert_eq!(
            m.acquire(EtId(1), X, WU, Some(Operation::Write(Value::Int(1))))
                .unwrap(),
            LockOutcome::Granted
        );
    }

    #[test]
    fn ordup_blocks_conflicting_updates() {
        let mut m = mgr(Protocol::Ordup);
        m.acquire(EtId(1), X, WU, Some(Operation::Incr(1))).unwrap();
        assert_eq!(
            m.acquire(EtId(2), X, WU, Some(Operation::Incr(1))).unwrap(),
            LockOutcome::Queued,
            "ORDUP has no Comm cells: even commuting writes queue"
        );
    }

    #[test]
    fn commu_grants_commuting_writes() {
        let mut m = mgr(Protocol::Commu);
        m.acquire(EtId(1), X, WU, Some(Operation::Incr(1))).unwrap();
        assert_eq!(
            m.acquire(EtId(2), X, WU, Some(Operation::Incr(5))).unwrap(),
            LockOutcome::Granted
        );
        assert_eq!(m.holder_count(X), 2);
        // Non-commuting write still queues.
        assert_eq!(
            m.acquire(EtId(3), X, WU, Some(Operation::MulBy(2))).unwrap(),
            LockOutcome::Queued
        );
    }

    #[test]
    fn release_promotes_fifo() {
        let mut m = mgr(Protocol::Standard2pl);
        m.acquire(EtId(1), X, WU, Some(Operation::Write(Value::Int(1))))
            .unwrap();
        m.acquire(EtId(2), X, RU, None).unwrap();
        m.acquire(EtId(3), X, RU, None).unwrap();
        let granted = m.release_all(EtId(1));
        assert_eq!(granted, vec![(EtId(2), X), (EtId(3), X)]);
        assert!(m.holds(EtId(2), X) && m.holds(EtId(3), X));
    }

    #[test]
    fn fifo_prevents_barging() {
        let mut m = mgr(Protocol::Standard2pl);
        m.acquire(EtId(1), X, RU, None).unwrap();
        // Writer queues behind the reader...
        assert_eq!(
            m.acquire(EtId(2), X, WU, Some(Operation::Write(Value::Int(1))))
                .unwrap(),
            LockOutcome::Queued
        );
        // ...and a later reader may not barge past the queued writer.
        assert_eq!(m.acquire(EtId(3), X, RU, None).unwrap(), LockOutcome::Queued);
    }

    #[test]
    fn reentrant_same_mode_is_granted() {
        let mut m = mgr(Protocol::Standard2pl);
        m.acquire(EtId(1), X, RU, None).unwrap();
        assert_eq!(m.acquire(EtId(1), X, RU, None).unwrap(), LockOutcome::Granted);
        assert_eq!(m.holder_count(X), 1, "no duplicate holder entries");
    }

    #[test]
    fn wu_covers_read_requests() {
        let mut m = mgr(Protocol::Standard2pl);
        m.acquire(EtId(1), X, WU, Some(Operation::Write(Value::Int(1))))
            .unwrap();
        assert_eq!(m.acquire(EtId(1), X, RU, None).unwrap(), LockOutcome::Granted);
    }

    #[test]
    fn two_phase_violation_detected() {
        let mut m = mgr(Protocol::Standard2pl);
        m.acquire(EtId(1), X, RU, None).unwrap();
        m.release_all(EtId(1));
        assert!(matches!(
            m.acquire(EtId(1), Y, RU, None),
            Err(CoreError::TwoPhaseViolation { .. })
        ));
    }

    #[test]
    fn deadlock_detected_and_rejected() {
        let mut m = mgr(Protocol::Standard2pl);
        m.acquire(EtId(1), X, WU, Some(Operation::Write(Value::Int(1))))
            .unwrap();
        m.acquire(EtId(2), Y, WU, Some(Operation::Write(Value::Int(2))))
            .unwrap();
        // 1 waits for 2 on Y.
        assert_eq!(
            m.acquire(EtId(1), Y, WU, Some(Operation::Write(Value::Int(3))))
                .unwrap(),
            LockOutcome::Queued
        );
        // 2 requesting X would close the cycle.
        let err = m
            .acquire(EtId(2), X, WU, Some(Operation::Write(Value::Int(4))))
            .unwrap_err();
        assert_eq!(err, CoreError::Deadlock { et: EtId(2) });
        // The failed request is not left in the queue.
        assert!(!m.waiting(EtId(2), X));
        assert_eq!(m.stats().deadlocks, 1);
    }

    #[test]
    fn ordup_queries_cannot_deadlock() {
        // Under ORDUP the classic cycle cannot form through RQ locks.
        let mut m = mgr(Protocol::Ordup);
        m.acquire(EtId(1), X, WU, Some(Operation::Write(Value::Int(1))))
            .unwrap();
        m.acquire(EtId(2), Y, WU, Some(Operation::Write(Value::Int(2))))
            .unwrap();
        assert_eq!(m.acquire(EtId(1), Y, RQ, None).unwrap(), LockOutcome::Granted);
        assert_eq!(m.acquire(EtId(2), X, RQ, None).unwrap(), LockOutcome::Granted);
    }

    #[test]
    fn release_drops_queued_requests_too() {
        let mut m = mgr(Protocol::Standard2pl);
        m.acquire(EtId(1), X, WU, Some(Operation::Write(Value::Int(1))))
            .unwrap();
        m.acquire(EtId(2), X, WU, Some(Operation::Write(Value::Int(2))))
            .unwrap();
        m.release_all(EtId(2)); // abort the waiter
        assert!(!m.waiting(EtId(2), X));
        let granted = m.release_all(EtId(1));
        assert!(granted.is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let mut m = mgr(Protocol::Commu);
        m.acquire(EtId(1), X, WU, Some(Operation::Incr(1))).unwrap();
        m.acquire(EtId(2), X, WU, Some(Operation::Incr(2))).unwrap();
        m.acquire(EtId(3), X, WU, Some(Operation::MulBy(2))).unwrap();
        let s = m.stats();
        assert_eq!(s.granted, 2);
        assert_eq!(s.queued, 1);
    }

    #[test]
    fn promotion_resolves_comm_cells() {
        let mut m = mgr(Protocol::Commu);
        m.acquire(EtId(1), X, WU, Some(Operation::MulBy(2))).unwrap();
        m.acquire(EtId(2), X, WU, Some(Operation::Incr(1))).unwrap();
        m.acquire(EtId(3), X, WU, Some(Operation::Incr(2))).unwrap();
        let granted = m.release_all(EtId(1));
        // Both queued increments commute with each other: both promoted.
        assert_eq!(granted.len(), 2);
        assert!(m.holds(EtId(2), X) && m.holds(EtId(3), X));
    }
}
