//! Newtyped identifiers used throughout the ESR system.
//!
//! Every entity in the model — epsilon-transactions, sites, objects,
//! clients — gets its own integer newtype so that the type system prevents
//! mixing them up. All identifiers are `Copy`, ordered, hashable, and
//! serializable so that they can be used as map keys and carried inside
//! network messages.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw integer identifier.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw integer behind the identifier.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// Identifier of an epsilon-transaction (query or update ET).
    EtId,
    "et"
);
id_type!(
    /// Identifier of a site (node) holding one replica of each object.
    SiteId,
    "s"
);
id_type!(
    /// Identifier of a logical replicated object.
    ObjectId,
    "x"
);
id_type!(
    /// Identifier of a client issuing epsilon-transactions.
    ClientId,
    "c"
);
id_type!(
    /// Identifier of a network message.
    MsgId,
    "m"
);

/// A position in a global total order of update ETs, as produced by an
/// ORDUP sequencer. Sequence numbers are dense: the sequencer hands out
/// `0, 1, 2, …` with no gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SeqNo(pub u64);

impl SeqNo {
    /// The first sequence number handed out by a fresh sequencer.
    pub const ZERO: SeqNo = SeqNo(0);

    /// The sequence number immediately following this one.
    pub const fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }

    /// Raw integer value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A Lamport timestamp: a logical clock value paired with the site that
/// produced it. The site id breaks ties, giving a total order suitable for
/// distributed ORDUP ordering (paper §3.1, citing Lamport's clocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LamportTs {
    /// Logical clock component.
    pub counter: u64,
    /// Tie-breaking site component.
    pub site: SiteId,
}

impl LamportTs {
    /// Builds a timestamp from a counter value and originating site.
    pub const fn new(counter: u64, site: SiteId) -> Self {
        Self { counter, site }
    }
}

impl fmt::Display for LamportTs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.counter, self.site)
    }
}

/// A version timestamp for RITU (read-independent timestamped updates).
///
/// RITU writes carry a timestamp assigned at the *originating client*; the
/// `client` component breaks ties so that two updates never carry the same
/// version, making last-writer-wins deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VersionTs {
    /// Client-assigned logical time of the write.
    pub time: u64,
    /// Tie-breaking originating client.
    pub client: ClientId,
}

impl VersionTs {
    /// Builds a version timestamp.
    pub const fn new(time: u64, client: ClientId) -> Self {
        Self { time, client }
    }

    /// The smallest possible version: no real write carries it.
    pub const MIN: VersionTs = VersionTs {
        time: 0,
        client: ClientId(0),
    };
}

impl fmt::Display for VersionTs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}.{}", self.time, self.client.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_display() {
        let e = EtId::new(7);
        assert_eq!(e.raw(), 7);
        assert_eq!(e.to_string(), "et7");
        assert_eq!(EtId::from(7), e);
        assert_eq!(SiteId::new(3).to_string(), "s3");
        assert_eq!(ObjectId::new(1).to_string(), "x1");
        assert_eq!(ClientId::new(9).to_string(), "c9");
        assert_eq!(MsgId::new(2).to_string(), "m2");
    }

    #[test]
    fn ids_of_different_types_are_distinct_types() {
        // Compile-time property; here we just confirm values are independent.
        let a = EtId::new(1);
        let b = SiteId::new(1);
        assert_eq!(a.raw(), b.raw());
    }

    #[test]
    fn seqno_next_is_dense() {
        let s = SeqNo::ZERO;
        assert_eq!(s.next(), SeqNo(1));
        assert_eq!(s.next().next(), SeqNo(2));
        assert_eq!(SeqNo(5).to_string(), "#5");
    }

    #[test]
    fn lamport_order_breaks_ties_by_site() {
        let a = LamportTs::new(3, SiteId::new(1));
        let b = LamportTs::new(3, SiteId::new(2));
        let c = LamportTs::new(4, SiteId::new(0));
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a.to_string(), "3@s1");
    }

    #[test]
    fn version_ts_total_order() {
        let a = VersionTs::new(10, ClientId::new(1));
        let b = VersionTs::new(10, ClientId::new(2));
        let c = VersionTs::new(11, ClientId::new(0));
        assert!(a < b && b < c);
        assert!(VersionTs::MIN < a);
        assert_eq!(a.to_string(), "v10.1");
    }
}
