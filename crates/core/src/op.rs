//! The operation algebra.
//!
//! Epsilon-transactions are sequences of operations on objects. The paper
//! deliberately goes beyond plain Read/Write: COMMU exploits *commutative*
//! operations (`Inc`, `Dec`, set insert/remove), RITU exploits
//! *read-independent* (blind) timestamped writes, and COMPE exploits
//! operations with defined *compensations* (`Inc`/`Dec`, `Mul`/`Div` — the
//! paper's §4.1 example).
//!
//! This module defines the [`Operation`] type together with the three
//! semantic predicates the replica control methods rely on:
//!
//! * [`Operation::commutes_with`] — the commutativity relation (COMMU),
//! * [`Operation::is_read_independent`] — blind writes (RITU),
//! * [`Operation::compensation`] — exact inverses (COMPE).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::{CoreError, CoreResult};
use crate::ids::{ObjectId, VersionTs};
use crate::value::Value;

/// One operation of an epsilon-transaction, applied to a single object.
///
/// ```
/// use esr_core::op::Operation;
///
/// // COMMU's foundation: increments commute, families don't mix.
/// assert!(Operation::Incr(5).commutes_with(&Operation::Decr(3)));
/// assert!(!Operation::Incr(10).commutes_with(&Operation::MulBy(2)));
///
/// // COMPE's foundation: additive operations carry exact inverses.
/// assert_eq!(Operation::Incr(5).compensation(), Some(Operation::Decr(5)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operation {
    /// Read the current value of the object.
    Read,
    /// Overwrite the object with a new value (a classic write; blind but
    /// not commutative).
    Write(Value),
    /// Add `n` to an integer object. Commutes with `Incr`/`Decr`.
    Incr(i64),
    /// Subtract `n` from an integer object. Commutes with `Incr`/`Decr`.
    Decr(i64),
    /// Multiply an integer object by `k`. Commutes with `MulBy`/`DivBy`.
    MulBy(i64),
    /// Integer-divide an integer object by `k` (truncating). Commutes with
    /// `MulBy`/`DivBy` only in the exact (non-truncating) cases; we treat
    /// it as commutative within the multiplicative family, matching the
    /// paper's `Mul`/`Div` example, and exercise exactness in tests.
    DivBy(i64),
    /// Insert an element into a set object. Commutes with any insert or
    /// remove of a *different* element and with re-insertion of the same
    /// element (idempotent).
    InsertElem(i64),
    /// Remove an element from a set object.
    RemoveElem(i64),
    /// A read-independent timestamped write (RITU): overwrite the object
    /// iff `ts` is newer than the version currently stored. Commutes with
    /// other timestamped writes because last-writer-wins makes the
    /// application order irrelevant.
    TimestampedWrite(VersionTs, Value),
}

impl Operation {
    /// Does this operation modify the object?
    pub fn is_write(&self) -> bool {
        !matches!(self, Operation::Read)
    }

    /// Is this operation *read-independent* ("blind" — §3.3): its effect
    /// does not depend on the value it overwrites?
    pub fn is_read_independent(&self) -> bool {
        matches!(
            self,
            Operation::Write(_) | Operation::TimestampedWrite(_, _)
        )
    }

    /// Is this a RITU timestamped write?
    pub fn is_timestamped(&self) -> bool {
        matches!(self, Operation::TimestampedWrite(_, _))
    }

    /// The commutativity relation between two operations *on the same
    /// object*. Operations on different objects always commute; callers
    /// must only consult this for same-object pairs.
    ///
    /// Reads commute with reads. Additive operations (`Incr`, `Decr`)
    /// commute among themselves, multiplicative (`MulBy`, `DivBy`) among
    /// themselves; the two families do not mix (the paper's
    /// `Inc·Mul ≠ Mul·Inc` example). Set operations commute unless they
    /// touch the same element with opposite effect. Timestamped writes
    /// commute with each other (LWW) but not with anything that reads.
    pub fn commutes_with(&self, other: &Operation) -> bool {
        use Operation::*;
        match (self, other) {
            (Read, Read) => true,
            // A read never commutes with any write on the same object.
            (Read, w) | (w, Read) => !w.is_write(),
            // Additive family.
            (Incr(_) | Decr(_), Incr(_) | Decr(_)) => true,
            // Multiplicative family.
            (MulBy(_) | DivBy(_), MulBy(_) | DivBy(_)) => true,
            // Set operations.
            // Inserts commute with inserts (idempotent on the same element,
            // independent on different elements); likewise removes.
            (InsertElem(_), InsertElem(_)) | (RemoveElem(_), RemoveElem(_)) => true,
            (InsertElem(a), RemoveElem(b)) | (RemoveElem(a), InsertElem(b)) => a != b,
            // Timestamped (LWW) writes commute with each other.
            (TimestampedWrite(_, _), TimestampedWrite(_, _)) => true,
            // Everything else conflicts.
            _ => false,
        }
    }

    /// The exact inverse of this operation, if one exists independent of
    /// the state it was applied to (§4.1).
    ///
    /// * `Incr(n)` ↔ `Decr(n)`, `MulBy(k)` → `DivBy(k)` (exact because the
    ///   multiplication preceded it).
    /// * `DivBy` has **no** exact compensation: integer division loses
    ///   information, so COMPE must fall back to before-images.
    /// * `Write`, `TimestampedWrite`, and set operations are compensated
    ///   via before-images recorded in the recovery log, not here.
    pub fn compensation(&self) -> Option<Operation> {
        match self {
            Operation::Incr(n) => Some(Operation::Decr(*n)),
            Operation::Decr(n) => Some(Operation::Incr(*n)),
            Operation::MulBy(k) => Some(Operation::DivBy(*k)),
            _ => None,
        }
    }

    /// Folds two operations applied back-to-back *on the same object*
    /// into one equivalent operation, when an exact fold exists:
    ///
    /// * additive: `Incr(a)·Incr(b) = Incr(a+b)` (likewise any `Incr`/
    ///   `Decr` mix — the net delta is exact);
    /// * multiplicative: `MulBy(a)·MulBy(b) = MulBy(a·b)` (`DivBy` is
    ///   excluded: truncation makes `Mul·Div` inexact);
    /// * overwrites: `Write(_)·Write(v) = Write(v)` (the later write
    ///   clobbers the earlier);
    /// * LWW: two `TimestampedWrite`s fold to the max-timestamp one
    ///   (ties keep the *earlier* operand, matching store arbitration,
    ///   which ignores equal-version re-writes).
    ///
    /// Folds whose constant would overflow `i64` return `None` (the
    /// caller applies the operations unfolded). The fold is exact on the
    /// success path: for any starting value on which the unfolded pair
    /// applies cleanly, the folded operation produces the same result.
    /// Error behavior may differ — a pair whose *intermediate* result
    /// overflows can fold into an operation that doesn't — which batched
    /// apply paths accept, since update MSets are required to apply
    /// cleanly at every replica.
    pub fn fold_with(&self, next: &Operation) -> Option<Operation> {
        use Operation::*;
        let additive = |op: &Operation| match op {
            Incr(n) => Some(*n as i128),
            Decr(n) => Some(-(*n as i128)),
            _ => None,
        };
        if let (Some(a), Some(b)) = (additive(self), additive(next)) {
            let net = a + b; // i128: cannot overflow for two i64 terms
            return if net >= 0 {
                i64::try_from(net).ok().map(Incr)
            } else {
                i64::try_from(-net).ok().map(Decr)
            };
        }
        match (self, next) {
            (MulBy(a), MulBy(b)) => (*a as i128)
                .checked_mul(*b as i128)
                .and_then(|p| i64::try_from(p).ok())
                .map(MulBy),
            (Write(_), Write(v)) => Some(Write(v.clone())),
            (TimestampedWrite(t1, v1), TimestampedWrite(t2, v2)) => {
                if t2 > t1 {
                    Some(TimestampedWrite(*t2, v2.clone()))
                } else {
                    Some(TimestampedWrite(*t1, v1.clone()))
                }
            }
            _ => None,
        }
    }

    /// Applies the operation to a value, producing the new value.
    ///
    /// `Read` leaves the value unchanged. `object` is used only for error
    /// reporting. Arithmetic is checked: overflow and division by zero are
    /// reported as errors rather than wrapping, because a replica that
    /// silently wraps can never re-converge with one that didn't.
    pub fn apply(&self, object: ObjectId, value: &Value) -> CoreResult<Value> {
        let type_err = |expected: &'static str| CoreError::TypeMismatch {
            object,
            expected,
            found: value.type_name(),
        };
        match self {
            Operation::Read => Ok(value.clone()),
            Operation::Write(v) => Ok(v.clone()),
            // Plain `apply` ignores the timestamp: version arbitration is
            // the storage layer's job (it knows the stored version).
            Operation::TimestampedWrite(_, v) => Ok(v.clone()),
            Operation::Incr(n) => match value {
                Value::Int(i) => i
                    .checked_add(*n)
                    .map(Value::Int)
                    .ok_or_else(|| CoreError::ArithmeticOverflow {
                        object,
                        op: self.to_string(),
                    }),
                _ => Err(type_err("int")),
            },
            Operation::Decr(n) => match value {
                Value::Int(i) => i
                    .checked_sub(*n)
                    .map(Value::Int)
                    .ok_or_else(|| CoreError::ArithmeticOverflow {
                        object,
                        op: self.to_string(),
                    }),
                _ => Err(type_err("int")),
            },
            Operation::MulBy(k) => match value {
                Value::Int(i) => i
                    .checked_mul(*k)
                    .map(Value::Int)
                    .ok_or_else(|| CoreError::ArithmeticOverflow {
                        object,
                        op: self.to_string(),
                    }),
                _ => Err(type_err("int")),
            },
            Operation::DivBy(k) => match value {
                Value::Int(i) => {
                    if *k == 0 {
                        Err(CoreError::DivisionByZero { object })
                    } else {
                        i.checked_div(*k)
                            .map(Value::Int)
                            .ok_or_else(|| CoreError::ArithmeticOverflow {
                                object,
                                op: self.to_string(),
                            })
                    }
                }
                _ => Err(type_err("int")),
            },
            Operation::InsertElem(e) => match value {
                Value::Set(s) => {
                    let mut s = s.clone();
                    s.insert(*e);
                    Ok(Value::Set(s))
                }
                _ => Err(type_err("set")),
            },
            Operation::RemoveElem(e) => match value {
                Value::Set(s) => {
                    let mut s = s.clone();
                    s.remove(e);
                    Ok(Value::Set(s))
                }
                _ => Err(type_err("set")),
            },
        }
    }
}

/// Coalesces a same-object operation sequence by folding adjacent pairs
/// via [`Operation::fold_with`]. The per-object application order is
/// preserved, so the result is state-equivalent to applying `ops` one at
/// a time (see `fold_with` for the overflow caveat). `Read`s are dropped:
/// inside a batch apply nothing observes their return value.
///
/// This is the legality core of the batched apply pipeline: COMMU folds
/// long `Incr`/`Decr` runs into one store write, RITU-LWW reduces each
/// object's batch to its max-timestamp write.
pub fn coalesce_ops(ops: &[Operation]) -> Vec<Operation> {
    let mut out: Vec<Operation> = Vec::with_capacity(ops.len().min(8));
    for op in ops {
        if matches!(op, Operation::Read) {
            continue;
        }
        if let Some(last) = out.last() {
            if let Some(folded) = last.fold_with(op) {
                *out.last_mut().expect("non-empty") = folded;
                continue;
            }
        }
        out.push(op.clone());
    }
    out
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Read => write!(f, "R"),
            Operation::Write(v) => write!(f, "W({v})"),
            Operation::Incr(n) => write!(f, "Inc({n})"),
            Operation::Decr(n) => write!(f, "Dec({n})"),
            Operation::MulBy(k) => write!(f, "Mul({k})"),
            Operation::DivBy(k) => write!(f, "Div({k})"),
            Operation::InsertElem(e) => write!(f, "Ins({e})"),
            Operation::RemoveElem(e) => write!(f, "Rem({e})"),
            Operation::TimestampedWrite(ts, v) => write!(f, "TW({ts},{v})"),
        }
    }
}

/// An operation bound to the object it targets — the unit stored in ET
/// programs, histories, and MSets.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjectOp {
    /// Target object.
    pub object: ObjectId,
    /// The operation to perform on it.
    pub op: Operation,
}

impl ObjectOp {
    /// Binds an operation to an object.
    pub fn new(object: ObjectId, op: Operation) -> Self {
        Self { object, op }
    }

    /// Two bound operations *conflict* when they touch the same object
    /// and do not commute. This is the dependency relation used by the
    /// serializability checkers.
    pub fn conflicts_with(&self, other: &ObjectOp) -> bool {
        self.object == other.object && !self.op.commutes_with(&other.op)
    }

    /// Applies this operation to the given value of its object.
    pub fn apply(&self, value: &Value) -> CoreResult<Value> {
        self.op.apply(self.object, value)
    }
}

impl fmt::Display for ObjectOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.op, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    const X: ObjectId = ObjectId(0);

    #[test]
    fn read_is_not_a_write() {
        assert!(!Operation::Read.is_write());
        assert!(Operation::Write(Value::ZERO).is_write());
        assert!(Operation::Incr(1).is_write());
    }

    #[test]
    fn blind_writes_are_read_independent() {
        assert!(Operation::Write(Value::ZERO).is_read_independent());
        assert!(
            Operation::TimestampedWrite(VersionTs::new(1, ClientId::new(0)), Value::ZERO)
                .is_read_independent()
        );
        assert!(!Operation::Incr(1).is_read_independent());
        assert!(!Operation::Read.is_read_independent());
    }

    #[test]
    fn additive_family_commutes() {
        assert!(Operation::Incr(3).commutes_with(&Operation::Incr(5)));
        assert!(Operation::Incr(3).commutes_with(&Operation::Decr(5)));
        assert!(Operation::Decr(3).commutes_with(&Operation::Decr(5)));
    }

    #[test]
    fn multiplicative_family_commutes() {
        assert!(Operation::MulBy(2).commutes_with(&Operation::MulBy(3)));
        assert!(Operation::MulBy(2).commutes_with(&Operation::DivBy(3)));
    }

    #[test]
    fn families_do_not_mix() {
        // The paper's §4.1 example: Inc(10)·Mul(2) ≠ Mul(2)·Inc(10).
        assert!(!Operation::Incr(10).commutes_with(&Operation::MulBy(2)));
        assert!(!Operation::DivBy(2).commutes_with(&Operation::Decr(1)));
    }

    #[test]
    fn reads_conflict_with_writes() {
        assert!(Operation::Read.commutes_with(&Operation::Read));
        assert!(!Operation::Read.commutes_with(&Operation::Incr(1)));
        assert!(!Operation::Write(Value::ZERO).commutes_with(&Operation::Read));
        assert!(!Operation::Read.commutes_with(&Operation::TimestampedWrite(
            VersionTs::new(1, ClientId::new(0)),
            Value::ZERO
        )));
    }

    #[test]
    fn plain_writes_do_not_commute() {
        assert!(!Operation::Write(Value::Int(1)).commutes_with(&Operation::Write(Value::Int(2))));
        assert!(!Operation::Write(Value::Int(1)).commutes_with(&Operation::Incr(1)));
    }

    #[test]
    fn timestamped_writes_commute_with_each_other() {
        let a = Operation::TimestampedWrite(VersionTs::new(1, ClientId::new(0)), Value::Int(1));
        let b = Operation::TimestampedWrite(VersionTs::new(2, ClientId::new(0)), Value::Int(2));
        assert!(a.commutes_with(&b));
        assert!(!a.commutes_with(&Operation::Write(Value::Int(3))));
    }

    #[test]
    fn set_ops_commute_unless_opposed_on_same_element() {
        assert!(Operation::InsertElem(1).commutes_with(&Operation::InsertElem(2)));
        assert!(Operation::InsertElem(1).commutes_with(&Operation::InsertElem(1)));
        assert!(Operation::RemoveElem(1).commutes_with(&Operation::RemoveElem(1)));
        assert!(Operation::InsertElem(1).commutes_with(&Operation::RemoveElem(2)));
        assert!(!Operation::InsertElem(1).commutes_with(&Operation::RemoveElem(1)));
    }

    #[test]
    fn commutativity_is_symmetric_on_samples() {
        let ops = [
            Operation::Read,
            Operation::Write(Value::Int(1)),
            Operation::Incr(2),
            Operation::Decr(3),
            Operation::MulBy(2),
            Operation::DivBy(2),
            Operation::InsertElem(1),
            Operation::RemoveElem(1),
            Operation::TimestampedWrite(VersionTs::new(1, ClientId::new(0)), Value::Int(9)),
        ];
        for a in &ops {
            for b in &ops {
                assert_eq!(
                    a.commutes_with(b),
                    b.commutes_with(a),
                    "asymmetry between {a} and {b}"
                );
            }
        }
    }

    #[test]
    fn compensation_inverts_additive_ops() {
        assert_eq!(Operation::Incr(5).compensation(), Some(Operation::Decr(5)));
        assert_eq!(Operation::Decr(5).compensation(), Some(Operation::Incr(5)));
        assert_eq!(Operation::MulBy(4).compensation(), Some(Operation::DivBy(4)));
        assert_eq!(Operation::DivBy(4).compensation(), None);
        assert_eq!(Operation::Write(Value::ZERO).compensation(), None);
    }

    #[test]
    fn compensation_round_trips_on_value() {
        let v = Value::Int(7);
        for op in [Operation::Incr(10), Operation::Decr(3), Operation::MulBy(6)] {
            let applied = op.apply(X, &v).unwrap();
            let comp = op.compensation().unwrap();
            assert_eq!(comp.apply(X, &applied).unwrap(), v, "op {op}");
        }
    }

    #[test]
    fn apply_arithmetic() {
        assert_eq!(
            Operation::Incr(5).apply(X, &Value::Int(1)).unwrap(),
            Value::Int(6)
        );
        assert_eq!(
            Operation::Decr(5).apply(X, &Value::Int(1)).unwrap(),
            Value::Int(-4)
        );
        assert_eq!(
            Operation::MulBy(3).apply(X, &Value::Int(4)).unwrap(),
            Value::Int(12)
        );
        assert_eq!(
            Operation::DivBy(3).apply(X, &Value::Int(12)).unwrap(),
            Value::Int(4)
        );
    }

    #[test]
    fn apply_checks_overflow_and_div_zero() {
        assert!(matches!(
            Operation::Incr(1).apply(X, &Value::Int(i64::MAX)),
            Err(CoreError::ArithmeticOverflow { .. })
        ));
        assert!(matches!(
            Operation::MulBy(2).apply(X, &Value::Int(i64::MAX / 2 + 1)),
            Err(CoreError::ArithmeticOverflow { .. })
        ));
        assert!(matches!(
            Operation::DivBy(0).apply(X, &Value::Int(1)),
            Err(CoreError::DivisionByZero { .. })
        ));
        // i64::MIN / -1 overflows.
        assert!(matches!(
            Operation::DivBy(-1).apply(X, &Value::Int(i64::MIN)),
            Err(CoreError::ArithmeticOverflow { .. })
        ));
    }

    #[test]
    fn apply_checks_types() {
        assert!(matches!(
            Operation::Incr(1).apply(X, &Value::from("s")),
            Err(CoreError::TypeMismatch { .. })
        ));
        assert!(matches!(
            Operation::InsertElem(1).apply(X, &Value::Int(0)),
            Err(CoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn apply_set_ops() {
        let s = Value::Set([1].into_iter().collect());
        let s2 = Operation::InsertElem(2).apply(X, &s).unwrap();
        assert_eq!(s2.as_set().unwrap().len(), 2);
        let s3 = Operation::RemoveElem(1).apply(X, &s2).unwrap();
        assert_eq!(s3, Value::Set([2].into_iter().collect()));
        // Removing an absent element is a no-op.
        let s4 = Operation::RemoveElem(99).apply(X, &s3).unwrap();
        assert_eq!(s4, s3);
    }

    #[test]
    fn read_apply_is_identity() {
        let v = Value::Int(42);
        assert_eq!(Operation::Read.apply(X, &v).unwrap(), v);
    }

    #[test]
    fn object_op_conflicts() {
        let y = ObjectId(1);
        let a = ObjectOp::new(X, Operation::Incr(1));
        let b = ObjectOp::new(X, Operation::MulBy(2));
        let c = ObjectOp::new(y, Operation::MulBy(2));
        assert!(a.conflicts_with(&b));
        assert!(!a.conflicts_with(&c), "different objects never conflict");
        let d = ObjectOp::new(X, Operation::Incr(5));
        assert!(!a.conflicts_with(&d), "commuting ops don't conflict");
    }

    #[test]
    fn fold_additive_nets_out() {
        assert_eq!(
            Operation::Incr(5).fold_with(&Operation::Incr(3)),
            Some(Operation::Incr(8))
        );
        assert_eq!(
            Operation::Incr(5).fold_with(&Operation::Decr(8)),
            Some(Operation::Decr(3))
        );
        assert_eq!(
            Operation::Decr(2).fold_with(&Operation::Incr(2)),
            Some(Operation::Incr(0))
        );
        // Overflowing folds are refused, not wrapped.
        assert_eq!(Operation::Incr(i64::MAX).fold_with(&Operation::Incr(1)), None);
        // ... but a net that fits still folds.
        assert_eq!(
            Operation::Incr(i64::MAX).fold_with(&Operation::Decr(i64::MAX)),
            Some(Operation::Incr(0))
        );
    }

    #[test]
    fn fold_multiplicative_and_overwrites() {
        assert_eq!(
            Operation::MulBy(3).fold_with(&Operation::MulBy(4)),
            Some(Operation::MulBy(12))
        );
        assert_eq!(Operation::MulBy(i64::MAX).fold_with(&Operation::MulBy(2)), None);
        assert_eq!(
            Operation::DivBy(2).fold_with(&Operation::MulBy(2)),
            None,
            "truncating division never folds"
        );
        assert_eq!(
            Operation::Write(Value::Int(1)).fold_with(&Operation::Write(Value::Int(2))),
            Some(Operation::Write(Value::Int(2)))
        );
        assert_eq!(Operation::Incr(1).fold_with(&Operation::MulBy(2)), None);
    }

    #[test]
    fn fold_timestamped_keeps_max_and_breaks_ties_left() {
        let c = ClientId::new(0);
        let old = Operation::TimestampedWrite(VersionTs::new(1, c), Value::Int(10));
        let new = Operation::TimestampedWrite(VersionTs::new(2, c), Value::Int(20));
        assert_eq!(old.fold_with(&new), Some(new.clone()));
        assert_eq!(new.fold_with(&old), Some(new.clone()));
        let dup = Operation::TimestampedWrite(VersionTs::new(2, c), Value::Int(99));
        assert_eq!(
            new.fold_with(&dup),
            Some(new.clone()),
            "equal versions keep the first write, matching LWW arbitration"
        );
    }

    #[test]
    fn coalesce_preserves_sequential_semantics() {
        let runs: Vec<Vec<Operation>> = vec![
            vec![Operation::Incr(1); 10],
            vec![
                Operation::Incr(5),
                Operation::Decr(2),
                Operation::MulBy(3),
                Operation::MulBy(2),
                Operation::Incr(1),
                Operation::Read,
                Operation::Decr(4),
            ],
            vec![
                Operation::Write(Value::Int(7)),
                Operation::Write(Value::Int(9)),
                Operation::Incr(1),
            ],
        ];
        for ops in runs {
            let mut sequential = Value::Int(100);
            for op in &ops {
                sequential = op.apply(X, &sequential).unwrap();
            }
            let coalesced = coalesce_ops(&ops);
            assert!(coalesced.len() <= ops.len());
            let mut folded = Value::Int(100);
            for op in &coalesced {
                folded = op.apply(X, &folded).unwrap();
            }
            assert_eq!(sequential, folded, "ops {ops:?}");
        }
        // A pure-Incr run folds to a single op.
        assert_eq!(coalesce_ops(&vec![Operation::Incr(1); 10]).len(), 1);
        assert!(coalesce_ops(&[Operation::Read]).is_empty());
    }

    #[test]
    fn display_format() {
        assert_eq!(
            ObjectOp::new(X, Operation::Incr(10)).to_string(),
            "Inc(10)[x0]"
        );
        assert_eq!(Operation::Read.to_string(), "R");
    }

    #[test]
    fn commutative_application_order_is_irrelevant() {
        // The defining COMMU property, checked concretely.
        let v = Value::Int(100);
        let a = Operation::Incr(7);
        let b = Operation::Decr(3);
        let ab = b.apply(X, &a.apply(X, &v).unwrap()).unwrap();
        let ba = a.apply(X, &b.apply(X, &v).unwrap()).unwrap();
        assert_eq!(ab, ba);

        let m = Operation::MulBy(2);
        let n = Operation::MulBy(5);
        let mn = n.apply(X, &m.apply(X, &v).unwrap()).unwrap();
        let nm = m.apply(X, &n.apply(X, &v).unwrap()).unwrap();
        assert_eq!(mn, nm);
    }

    #[test]
    fn non_commutative_application_order_matters() {
        // Inc(10)·Mul(2) applied to 0: (0+10)*2 = 20 vs 0*2+10 = 10.
        let v = Value::Int(0);
        let inc = Operation::Incr(10);
        let mul = Operation::MulBy(2);
        let im = mul.apply(X, &inc.apply(X, &v).unwrap()).unwrap();
        let mi = inc.apply(X, &mul.apply(X, &v).unwrap()).unwrap();
        assert_ne!(im, mi);
    }
}
