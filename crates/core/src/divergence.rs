//! Divergence control primitives (§2.2, §3).
//!
//! Replica control bounds the inconsistency a query ET can see with an
//! *inconsistency counter*: each time the query is found to overlap a
//! conflicting update ET the counter is incremented, and once it reaches
//! the query's epsilon specification the query may only proceed
//! synchronously (in the global order / below the VTNC / after quiesce).
//!
//! COMMU additionally uses per-object *lock-counters* (§3.2): an update ET
//! increments the counter of every object it writes for the duration of
//! its execution; a non-zero counter tells queries how much inconsistency
//! a read of that object would import.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::ids::{EtId, ObjectId};

/// A per-query inconsistency budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpsilonSpec {
    /// Maximum number of conflicting concurrent update ETs this query may
    /// import. `0` = strict SR; `u64::MAX` = unbounded.
    pub limit: u64,
}

impl EpsilonSpec {
    /// No inconsistency allowed: the query must be serializable.
    pub const STRICT: EpsilonSpec = EpsilonSpec { limit: 0 };
    /// Unbounded inconsistency (overlap still bounds the error).
    pub const UNBOUNDED: EpsilonSpec = EpsilonSpec { limit: u64::MAX };

    /// A budget of exactly `limit` units.
    pub const fn bounded(limit: u64) -> Self {
        Self { limit }
    }

    /// True when the spec demands strict serializability.
    pub fn is_strict(&self) -> bool {
        self.limit == 0
    }
}

impl Default for EpsilonSpec {
    fn default() -> Self {
        Self::UNBOUNDED
    }
}

/// Outcome of asking to import inconsistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The charge fit in the budget and has been recorded.
    Admitted,
    /// The charge would exceed the budget; it was **not** recorded. The
    /// caller must fall back to a synchronous path (wait for global
    /// order, read below VTNC, or quiesce).
    Rejected,
}

impl Admission {
    /// True for [`Admission::Admitted`].
    pub fn is_admitted(self) -> bool {
        self == Admission::Admitted
    }
}

/// The inconsistency counter attached to one query ET.
///
/// ```
/// use esr_core::divergence::{Admission, EpsilonSpec, InconsistencyCounter};
///
/// let mut counter = InconsistencyCounter::new(EpsilonSpec::bounded(2));
/// assert!(counter.charge(2).is_admitted());
/// assert_eq!(counter.charge(1), Admission::Rejected); // budget spent
/// assert_eq!(counter.imported(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InconsistencyCounter {
    spec: EpsilonSpec,
    imported: u64,
}

impl InconsistencyCounter {
    /// A fresh counter with the given budget.
    pub fn new(spec: EpsilonSpec) -> Self {
        Self { spec, imported: 0 }
    }

    /// The budget.
    pub fn spec(&self) -> EpsilonSpec {
        self.spec
    }

    /// How much inconsistency has been imported so far.
    pub fn imported(&self) -> u64 {
        self.imported
    }

    /// How much budget remains.
    pub fn remaining(&self) -> u64 {
        self.spec.limit.saturating_sub(self.imported)
    }

    /// Would a charge of `amount` fit?
    pub fn can_import(&self, amount: u64) -> bool {
        amount <= self.remaining()
    }

    /// Attempts to import `amount` units of inconsistency. On rejection
    /// the counter is unchanged.
    pub fn charge(&mut self, amount: u64) -> Admission {
        if self.can_import(amount) {
            self.imported += amount;
            Admission::Admitted
        } else {
            Admission::Rejected
        }
    }
}

/// Per-object lock-counters (§3.2).
///
/// `begin_update` raises the counter of every object in the update's
/// write set; `end_update` lowers them. A query consults
/// [`LockCounters::inconsistency_of`] before reading: the current counter
/// value is the number of in-flight updates whose intermediate state the
/// read might expose.
///
/// Saga support (§4.2): keep every step's `begin_update` registration in
/// place until the whole saga ends — queries then carry a conservative
/// upper bound of the total potential (compensatable) inconsistency. The
/// `SagaCoordinator` in `esr-replica` drives exactly this discipline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockCounters {
    counters: BTreeMap<ObjectId, u64>,
    /// Objects currently held per in-flight update, so `end_update` can
    /// release exactly what was taken.
    held: BTreeMap<EtId, Vec<ObjectId>>,
}

impl LockCounters {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the counter of every object in `write_set` on behalf of
    /// update ET `et`. Returns the highest counter value reached.
    pub fn begin_update(&mut self, et: EtId, write_set: impl IntoIterator<Item = ObjectId>) -> u64 {
        let objs: Vec<ObjectId> = write_set.into_iter().collect();
        self.begin_updates(std::iter::once((et, objs)))
    }

    /// Registers a batch of updates at once — equivalent to calling
    /// [`LockCounters::begin_update`] per entry, but cheaper two ways:
    /// each write-set vector is installed directly into the held table
    /// (no collect-and-copy), and the counter increments are aggregated
    /// across the whole batch — one sort plus one counter-table entry
    /// per *distinct* object, instead of one entry per (update, object)
    /// pair. Correct because counters are plain sums: `+= k` for `k`
    /// registrations of the same object commutes with any interleaving
    /// of the per-update calls.
    ///
    /// Returns the highest counter value reached across the touched
    /// objects (0 for an empty batch) — the batch's lock-counter
    /// high-water mark, available here for free because every updated
    /// counter passes through this loop anyway.
    pub fn begin_updates(
        &mut self,
        updates: impl IntoIterator<Item = (EtId, Vec<ObjectId>)>,
    ) -> u64 {
        use std::collections::btree_map::Entry;
        let mut touched: Vec<ObjectId> = Vec::new();
        for (et, objs) in updates {
            touched.extend_from_slice(&objs);
            match self.held.entry(et) {
                Entry::Vacant(slot) => {
                    slot.insert(objs);
                }
                Entry::Occupied(mut slot) => slot.get_mut().extend(objs),
            }
        }
        touched.sort_unstable();
        let mut high_water = 0;
        let mut i = 0;
        while i < touched.len() {
            let o = touched[i];
            let mut end = i + 1;
            while end < touched.len() && touched[end] == o {
                end += 1;
            }
            let c = self.counters.entry(o).or_insert(0);
            *c += (end - i) as u64;
            high_water = high_water.max(*c);
            i = end;
        }
        high_water
    }

    /// Lowers the counters raised by `et`. Idempotent: a second call for
    /// the same ET is a no-op.
    pub fn end_update(&mut self, et: EtId) {
        let Some(objs) = self.held.remove(&et) else {
            return;
        };
        for o in objs {
            if let Some(c) = self.counters.get_mut(&o) {
                *c = c.saturating_sub(1);
                if *c == 0 {
                    self.counters.remove(&o);
                }
            }
        }
    }

    /// The current counter of one object — the inconsistency a read of it
    /// would import right now.
    pub fn inconsistency_of(&self, object: ObjectId) -> u64 {
        self.counters.get(&object).copied().unwrap_or(0)
    }

    /// Sum of counters over a read set — the inconsistency a whole query
    /// would import.
    pub fn inconsistency_of_set(&self, read_set: impl IntoIterator<Item = ObjectId>) -> u64 {
        read_set
            .into_iter()
            .map(|o| self.inconsistency_of(o))
            .sum()
    }

    /// Number of updates currently holding counters.
    pub fn in_flight(&self) -> usize {
        self.held.len()
    }

    /// The held write-sets, per in-flight update, in deterministic ET
    /// order — the checkpoint image. Feeding the dump back through
    /// [`LockCounters::begin_updates`] on a fresh table rebuilds both
    /// the held table and the counters (counters are pure sums over the
    /// held sets).
    pub fn held_sets(&self) -> Vec<(EtId, Vec<ObjectId>)> {
        self.held
            .iter()
            .map(|(et, objs)| (*et, objs.clone()))
            .collect()
    }

    /// True when no update is in flight (all counters zero).
    pub fn quiescent(&self) -> bool {
        self.counters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_constructors() {
        assert!(EpsilonSpec::STRICT.is_strict());
        assert!(!EpsilonSpec::UNBOUNDED.is_strict());
        assert_eq!(EpsilonSpec::bounded(5).limit, 5);
        assert_eq!(EpsilonSpec::default(), EpsilonSpec::UNBOUNDED);
    }

    #[test]
    fn counter_charges_until_limit() {
        let mut c = InconsistencyCounter::new(EpsilonSpec::bounded(3));
        assert_eq!(c.remaining(), 3);
        assert!(c.charge(1).is_admitted());
        assert!(c.charge(2).is_admitted());
        assert_eq!(c.imported(), 3);
        assert_eq!(c.remaining(), 0);
        assert_eq!(c.charge(1), Admission::Rejected);
        assert_eq!(c.imported(), 3, "rejected charge not recorded");
    }

    #[test]
    fn strict_counter_rejects_everything() {
        let mut c = InconsistencyCounter::new(EpsilonSpec::STRICT);
        assert_eq!(c.charge(1), Admission::Rejected);
        assert!(c.charge(0).is_admitted(), "zero charge always fits");
    }

    #[test]
    fn unbounded_counter_never_rejects() {
        let mut c = InconsistencyCounter::new(EpsilonSpec::UNBOUNDED);
        assert!(c.charge(u64::MAX / 2).is_admitted());
        assert!(c.charge(u64::MAX / 2).is_admitted());
        assert!(c.can_import(1));
    }

    #[test]
    fn lock_counters_raise_and_lower() {
        let mut lc = LockCounters::new();
        assert!(lc.quiescent());
        lc.begin_update(EtId(1), [ObjectId(0), ObjectId(1)]);
        lc.begin_update(EtId(2), [ObjectId(0)]);
        assert_eq!(lc.inconsistency_of(ObjectId(0)), 2);
        assert_eq!(lc.inconsistency_of(ObjectId(1)), 1);
        assert_eq!(lc.inconsistency_of(ObjectId(9)), 0);
        assert_eq!(lc.in_flight(), 2);
        assert!(!lc.quiescent());

        lc.end_update(EtId(1));
        assert_eq!(lc.inconsistency_of(ObjectId(0)), 1);
        assert_eq!(lc.inconsistency_of(ObjectId(1)), 0);
        lc.end_update(EtId(2));
        assert!(lc.quiescent());
    }

    #[test]
    fn end_update_is_idempotent() {
        let mut lc = LockCounters::new();
        lc.begin_update(EtId(1), [ObjectId(0)]);
        lc.end_update(EtId(1));
        lc.end_update(EtId(1));
        assert_eq!(lc.inconsistency_of(ObjectId(0)), 0);
        assert!(lc.quiescent());
    }

    #[test]
    fn set_inconsistency_sums() {
        let mut lc = LockCounters::new();
        lc.begin_update(EtId(1), [ObjectId(0), ObjectId(1)]);
        lc.begin_update(EtId(2), [ObjectId(1)]);
        let total = lc.inconsistency_of_set([ObjectId(0), ObjectId(1), ObjectId(2)]);
        assert_eq!(total, 3);
    }

    #[test]
    fn same_et_can_accumulate_objects() {
        // A saga step adds more objects under the same ET id.
        let mut lc = LockCounters::new();
        lc.begin_update(EtId(1), [ObjectId(0)]);
        lc.begin_update(EtId(1), [ObjectId(1)]);
        assert_eq!(lc.inconsistency_of(ObjectId(0)), 1);
        assert_eq!(lc.inconsistency_of(ObjectId(1)), 1);
        lc.end_update(EtId(1));
        assert!(lc.quiescent());
    }
}
