//! A thread-per-site replicated cluster with real concurrency.
//!
//! Where [`esr_replica::SimCluster`] runs the protocols under a
//! deterministic virtual clock, this runtime runs the *same site state
//! machines* on real OS threads connected by channels — the shape a
//! production deployment would take (one process per site, one queue per
//! link). Updates propagate asynchronously: `submit_update` returns as
//! soon as the MSets are enqueued, queries run against whichever state
//! the local replica has, and `quiesce` waits for the system to settle —
//! at which point all replicas are identical, the ESR convergence
//! guarantee.
//!
//! Clusters built with [`Cluster::chaos`] additionally route every
//! update through the fault-injection relays of [`crate::chaos`]
//! (seeded drops, duplicates, partition windows, durable at-least-once
//! queues) and support [`Cluster::crash`] / [`Cluster::restart`], with
//! recovery driven by the per-site journal and shared control log of
//! [`crate::recovery`].

use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::atomic::AtomicCell;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::RwLock;

use esr_core::divergence::{EpsilonSpec, InconsistencyCounter};
use esr_core::ids::{ClientId, EtId, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_obs::{GaugeFamily, MetricsRegistry, SiteInstruments};
use esr_replica::mset::MSet;
use esr_replica::site::QueryOutcome;
use esr_replica::wire::encode_mset;
use esr_sim::probe;
use esr_storage::stable_queue::EntryId;

use crate::chaos::{self, ChaosStats, FaultPlan, RelayHandle, RelayMsg, TraceEvent};
use crate::recovery::{ApplyJournal, ControlLog, Decision};
use crate::state::{RtMethod, SiteAudit, SiteState};

/// Logical shared-memory location namespace for the per-site protocol
/// state, annotated via [`probe::mem_read`] / [`probe::mem_write`] so
/// checked runs prove site state stays thread-confined (each location
/// is only ever touched by its owning site thread — any cross-thread
/// access without a happens-before edge is a race finding).
const SITE_STATE_LOC: u64 = 1 << 48;

/// A quiesce wait that did not settle before its deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuiesceTimeout {
    /// How long the wait actually lasted.
    pub waited: std::time::Duration,
    /// Pending work observed per site at the deadline: the site's inbox
    /// depth (thread runtime) or its reported apply backlog (process
    /// runtime). `None` when the site could not be reached — usually
    /// the site that is wedging the quiesce.
    pub site_queues: Vec<Option<u64>>,
    /// Which site reported holding the coordinator role at the
    /// deadline (process runtime; the thread runtime pins the role to
    /// site 0 and reports `None`). A timeout with no reachable
    /// coordinator usually means the killed coordinator was never
    /// restarted and no surviving site suspected it yet.
    pub coordinator: Option<SiteId>,
}

impl std::fmt::Display for QuiesceTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cluster did not quiesce within {:.1}s (crashed site never restarted, \
             partition outlasting the deadline, or a protocol bug); per-site queue depths: [",
            self.waited.as_secs_f64()
        )?;
        for (i, q) in self.site_queues.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match q {
                Some(d) => write!(f, "site {i}: {d}")?,
                None => write!(f, "site {i}: unreachable")?,
            }
        }
        write!(f, "]; coordinator role held by ")?;
        match self.coordinator {
            Some(s) => write!(f, "site {}", s.raw()),
            None => write!(f, "no reachable site"),
        }
    }
}

impl std::error::Error for QuiesceTimeout {}

/// Seeded defect canaries for `esr-check`: each one disables a single
/// safety mechanism the checker's oracles must then flag. Production
/// clusters always run [`RtCanary::None`]; the other variants exist so
/// the checking pipeline can prove it *would* catch each defect class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RtCanary {
    /// No fault injected (the only variant production code should use).
    #[default]
    None,
    /// ORDUP sites apply MSets in arrival order, bypassing the
    /// sequencer hold-back — the ORDUP global-order oracle must flag
    /// out-of-order applications.
    OrdupSequencerDisabled,
    /// Sites answer queries with an unbounded budget regardless of the
    /// declared `EpsilonSpec` — the epsilon-accounting oracle must flag
    /// admitted queries whose charge exceeds their declared bound.
    EpsilonIgnored,
    /// The tracker certifies a VTNC advance on the *first* site ack
    /// instead of waiting for all sites — the VTNC-safety oracle must
    /// flag advances past a site's installed prefix.
    VtncEagerCertify,
}

enum SiteMsg {
    Deliver(MSet),
    /// A relay-delivered MSet under chaos: journal, apply, then ack back
    /// through `ack` so the relay can retire the durable entry.
    ChaosDeliver {
        mset: MSet,
        entry: EntryId,
        ack: Sender<RelayMsg>,
    },
    Complete(EtId),
    AdvanceVtnc(VersionTs),
    Commit(EtId),
    Abort(EtId),
    Query {
        read_set: Vec<ObjectId>,
        epsilon: EpsilonSpec,
        reply: Sender<QueryOutcome>,
    },
    Snapshot {
        reply: Sender<BTreeMap<ObjectId, Value>>,
    },
    Settled {
        reply: Sender<bool>,
    },
    HasApplied {
        et: EtId,
        reply: Sender<bool>,
    },
    Audit {
        reply: Sender<SiteAudit>,
    },
    /// Tear the site thread down mid-stream (chaos): everything still in
    /// the channel is lost, exactly like a process kill; durable state
    /// (journal) survives for [`Cluster::restart`].
    Crash,
    Shutdown,
}

enum TrackerMsg {
    Applied { et: EtId, version: Option<VersionTs> },
    Shutdown,
}

type SharedSenders = Arc<RwLock<Vec<Sender<SiteMsg>>>>;

/// Everything a site thread needs besides its receiver; bundled so
/// [`Cluster::restart`] can respawn a site with identical wiring.
#[derive(Clone)]
struct SiteSpawn {
    method: RtMethod,
    audit: bool,
    canary: RtCanary,
    tracker: Option<Sender<TrackerMsg>>,
    /// Journal path + shared control log; `Some` only under chaos.
    chaos: Option<(PathBuf, Arc<ControlLog>)>,
    /// Shared registry: each incarnation of a site re-registers the same
    /// series (same labels → same cells), so counters survive
    /// crash/restart cycles.
    metrics: MetricsRegistry,
}

/// The chaos machinery attached to a cluster built with
/// [`Cluster::chaos`].
struct ChaosRuntime {
    /// Relay per directed link, indexed `from * n + to`.
    relays: Vec<RelayHandle>,
    control: Arc<ControlLog>,
    crashes: u64,
    restarts: u64,
}

/// A running thread-per-site cluster.
///
/// ```
/// use esr_core::divergence::EpsilonSpec;
/// use esr_core::ids::{ObjectId, SiteId};
/// use esr_core::op::{ObjectOp, Operation};
/// use esr_core::value::Value;
/// use esr_runtime::{Cluster, RtMethod};
///
/// let cluster = Cluster::new(RtMethod::Commu, 3);
/// cluster.submit_update(SiteId(0), vec![ObjectOp::new(ObjectId(0), Operation::Incr(5))]);
/// cluster.quiesce();
/// assert!(cluster.converged());
/// let out = cluster.query(SiteId(2), &[ObjectId(0)], EpsilonSpec::STRICT);
/// assert_eq!(out.values, vec![Value::Int(5)]);
/// ```
pub struct Cluster {
    method: RtMethod,
    /// Senders shared with the tracker and the relays so
    /// [`Cluster::restart`] can swap a crashed site's channel in place.
    site_senders: SharedSenders,
    site_threads: Vec<Option<JoinHandle<()>>>,
    tracker_sender: Option<Sender<TrackerMsg>>,
    tracker_thread: Option<JoinHandle<()>>,
    sequencer: AtomicCell,
    version_clock: AtomicCell,
    // Instrumented (an ET allocation is a preemption point): concurrent
    // submitters' ET numbering must be schedule-determined, not a free
    // race the explorer cannot replay.
    next_et: AtomicCell,
    n: usize,
    spawn_cfg: SiteSpawn,
    chaos: Option<ChaosRuntime>,
    metrics: MetricsRegistry,
    /// `esr_divergence{site}`: objects where the site's quiesced value
    /// disagrees with the cluster consensus (see
    /// [`Cluster::refresh_metrics`]).
    divergence_gauge: GaugeFamily,
    /// `esr_site_queue_depth{site}`: the site inbox depth, sampled by
    /// the quiesce polls and [`Cluster::refresh_metrics`].
    queue_depth_gauge: GaugeFamily,
}

fn spawn_site(i: usize, rx: Receiver<SiteMsg>, cfg: SiteSpawn) -> JoinHandle<()> {
    let id = SiteId(i as u64);
    std::thread::Builder::new()
        .name(format!("esr-site-{i}"))
        .spawn(move || {
            let SiteSpawn {
                method,
                audit,
                canary,
                tracker,
                chaos,
                metrics,
            } = cfg;
            let mut state = SiteState::new(method, id);
            state.attach_metrics(SiteInstruments::for_site(
                &metrics,
                method.name(),
                id.raw(),
            ));
            let replays = metrics.counter(
                "esr_recovery_replays_total",
                &[("site", &id.raw().to_string())],
            );
            if audit {
                state.enable_audit();
            }
            // Chaos recovery: rebuild from the durable journal (every
            // MSet this incarnation or a predecessor accepted), then
            // replay the control log to recover broadcasts that died
            // with a crashed predecessor's channel. Journal replay must
            // NOT re-notify the tracker — it already counted these
            // applies before the crash.
            let mut journal: Option<ApplyJournal> = None;
            let mut journaled: HashSet<EtId> = HashSet::new();
            if let Some((journal_path, control)) = &chaos {
                let j = ApplyJournal::open(journal_path).unwrap_or_else(|e| {
                    panic!("open site journal {}: {e}", journal_path.display())
                });
                for mset in j.replay() {
                    journaled.insert(mset.et);
                    state.deliver(mset);
                    replays.inc();
                }
                state.replay_control(&control.snapshot());
                journal = Some(j);
            }
            // Logical location of this site's protocol state for
            // the race detector: only this thread may touch it.
            let state_loc = SITE_STATE_LOC + i as u64;
            // One message may be carried over from a drain that
            // stopped at a non-matching message.
            let mut carried: Option<SiteMsg> = None;
            loop {
                let msg = match carried.take() {
                    Some(m) => m,
                    None => match rx.recv() {
                        Ok(m) => m,
                        Err(_) => break,
                    },
                };
                match msg {
                    SiteMsg::Deliver(mset) => {
                        // Drain the run of deliveries already
                        // queued behind this one so the site
                        // absorbs them through the method's
                        // batch fast path; the first
                        // non-delivery stops the run and is
                        // processed next, preserving order.
                        let mut batch = vec![mset];
                        loop {
                            match rx.try_recv() {
                                Ok(SiteMsg::Deliver(m)) => batch.push(m),
                                Ok(other) => {
                                    carried = Some(other);
                                    break;
                                }
                                Err(_) => break,
                            }
                        }
                        // ETs this batch may newly apply, deduped
                        // in arrival order (a duplicate delivery
                        // must not produce a second ack).
                        let mut candidates: Vec<(EtId, Option<VersionTs>)> = Vec::new();
                        for m in &batch {
                            if state.has_applied(m.et)
                                || candidates.iter().any(|(e, _)| *e == m.et)
                            {
                                continue;
                            }
                            let version = m
                                .ops
                                .iter()
                                .filter_map(|o| match &o.op {
                                    Operation::TimestampedWrite(ts, _) => Some(*ts),
                                    _ => None,
                                })
                                .max();
                            candidates.push((m.et, version));
                        }
                        probe::mem_write(state_loc);
                        match (&mut state, canary) {
                            // Canary: bypass the ORDUP hold-back
                            // and apply in raw arrival order —
                            // the global-order oracle must flag
                            // the resulting sequence gaps.
                            (
                                SiteState::Ordup(s),
                                RtCanary::OrdupSequencerDisabled,
                            ) => {
                                for m in batch.drain(..) {
                                    s.apply_unchecked(m);
                                }
                            }
                            _ => {
                                if batch.len() == 1 {
                                    if let Some(single) = batch.pop() {
                                        state.deliver(single);
                                    }
                                } else {
                                    state.deliver_batch(batch);
                                }
                            }
                        }
                        if let Some(t) = &tracker {
                            for (et, version) in candidates {
                                if state.has_applied(et) {
                                    let _ = t.send(TrackerMsg::Applied { et, version });
                                }
                            }
                        }
                    }
                    SiteMsg::ChaosDeliver { mset, entry, ack } => {
                        probe::mem_write(state_loc);
                        let et = mset.et;
                        // Write-ahead: journal before applying, so an
                        // acked entry is never lost to a crash. The
                        // `journaled` set (not `has_applied`) gates the
                        // append — an ORDUP MSet can be journalled yet
                        // still held back.
                        if !journaled.contains(&et) {
                            if let Some(j) = &mut journal {
                                j.record(&mset);
                            }
                            journaled.insert(et);
                        }
                        let before = state.has_applied(et);
                        let version = mset
                            .ops
                            .iter()
                            .filter_map(|o| match &o.op {
                                Operation::TimestampedWrite(ts, _) => Some(*ts),
                                _ => None,
                            })
                            .max();
                        state.deliver(mset);
                        // Notify the tracker only on the transition to
                        // applied: duplicates and journal replays must
                        // not inflate the per-ET ack count.
                        if !before && state.has_applied(et) {
                            if let Some(t) = &tracker {
                                let _ = t.send(TrackerMsg::Applied { et, version });
                            }
                        }
                        // Ack-after-journal+apply: the relay may now
                        // retire the durable entry.
                        let _ = ack.send(RelayMsg::Ack { entry });
                    }
                    SiteMsg::Complete(et) => {
                        probe::mem_write(state_loc);
                        state.complete(et);
                    }
                    SiteMsg::AdvanceVtnc(ts) => {
                        // The horizon is monotone, so a queued
                        // run of advances collapses to its max.
                        let mut horizon = ts;
                        loop {
                            match rx.try_recv() {
                                Ok(SiteMsg::AdvanceVtnc(t2)) => {
                                    horizon = horizon.max(t2);
                                }
                                Ok(other) => {
                                    carried = Some(other);
                                    break;
                                }
                                Err(_) => break,
                            }
                        }
                        probe::mem_write(state_loc);
                        state.advance_vtnc(horizon);
                    }
                    SiteMsg::Commit(et) => {
                        probe::mem_write(state_loc);
                        state.commit(et);
                    }
                    SiteMsg::Abort(et) => {
                        probe::mem_write(state_loc);
                        state.abort(et);
                    }
                    SiteMsg::Query {
                        read_set,
                        epsilon,
                        reply,
                    } => {
                        probe::mem_write(state_loc);
                        // Canary: ignore the declared budget —
                        // the epsilon-accounting oracle must
                        // flag admitted queries whose charge
                        // exceeds the spec the client declared.
                        let spec = if canary == RtCanary::EpsilonIgnored {
                            EpsilonSpec::UNBOUNDED
                        } else {
                            epsilon
                        };
                        let mut counter = InconsistencyCounter::new(spec);
                        let _ = reply.send(state.query(&read_set, &mut counter));
                    }
                    SiteMsg::Snapshot { reply } => {
                        probe::mem_read(state_loc);
                        let _ = reply.send(state.snapshot());
                    }
                    SiteMsg::Settled { reply } => {
                        probe::mem_read(state_loc);
                        let _ = reply.send(state.settled());
                    }
                    SiteMsg::HasApplied { et, reply } => {
                        probe::mem_read(state_loc);
                        let _ = reply.send(state.has_applied(et));
                    }
                    SiteMsg::Audit { reply } => {
                        probe::mem_read(state_loc);
                        let mut a = state.audit();
                        a.journaled = journal.as_ref().map_or(0, ApplyJournal::entries);
                        let _ = reply.send(a);
                    }
                    SiteMsg::Crash => break,
                    SiteMsg::Shutdown => break,
                }
            }
        })
        .unwrap_or_else(|e| panic!("spawn site thread {i}: {e}"))
}

impl Cluster {
    /// Spawns `n` site threads running `method`.
    pub fn new(method: RtMethod, n: usize) -> Self {
        Self::build(method, n, false, RtCanary::None, None)
    }

    /// Spawns a cluster with per-site oracle audits enabled and an
    /// optional canary fault injected — the constructor `esr-check`
    /// drives. Pass [`RtCanary::None`] for a faithful (audited but
    /// unmutated) cluster.
    pub fn checked(method: RtMethod, n: usize, canary: RtCanary) -> Self {
        Self::build(method, n, true, canary, None)
    }

    /// Spawns a chaos cluster: every update MSet travels through a
    /// durable per-link relay that injects the seeded faults of `plan`,
    /// and sites journal accepted MSets under `dir` so
    /// [`Cluster::crash`] / [`Cluster::restart`] can lose and rebuild a
    /// site mid-run. `dir` is created if missing and must be private to
    /// this cluster (queue and journal files are keyed by site index).
    pub fn chaos(method: RtMethod, n: usize, plan: FaultPlan, dir: impl AsRef<Path>) -> Self {
        Self::build(method, n, false, RtCanary::None, Some((plan, dir.as_ref().to_path_buf())))
    }

    fn build(
        method: RtMethod,
        n: usize,
        audit: bool,
        canary: RtCanary,
        chaos: Option<(FaultPlan, PathBuf)>,
    ) -> Self {
        assert!(n > 0);
        let metrics = MetricsRegistry::new();
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<SiteMsg>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let site_senders: SharedSenders = Arc::new(RwLock::new(senders));
        let control = Arc::new(ControlLog::new());
        let chaos_control = chaos.as_ref().map(|_| Arc::clone(&control));

        // Completion tracker (COMMU/RITU lock-counter release): counts
        // per-ET applies and broadcasts Complete once all sites report.
        let (tracker_sender, tracker_thread) = if matches!(
            method,
            RtMethod::Commu | RtMethod::Ritu | RtMethod::RituMv
        ) {
            let (ttx, trx) = unbounded::<TrackerMsg>();
            let senders = Arc::clone(&site_senders);
            let control = chaos_control.clone();
            // VtncEagerCertify canary: certify on the first ack instead
            // of waiting for every site — the injected defect the
            // VTNC-safety oracle must catch.
            let acks_needed = if canary == RtCanary::VtncEagerCertify {
                1
            } else {
                n
            };
            let handle = std::thread::Builder::new()
                .name("esr-tracker".into())
                .spawn(move || {
                    let mut counts: BTreeMap<EtId, (usize, Option<VersionTs>)> = BTreeMap::new();
                    // VTNC certification (RituMv). The atomic version
                    // clock hands out dense time components (1, 2, 3, …),
                    // so the horizon advances exactly through the
                    // contiguous prefix of fully-installed times — a gap
                    // means some earlier version is still propagating.
                    let mut fully_installed: BTreeMap<u64, VersionTs> = BTreeMap::new();
                    let mut next_time: u64 = 1;
                    while let Ok(msg) = trx.recv() {
                        match msg {
                            TrackerMsg::Applied { et, version } => {
                                let e = counts.entry(et).or_insert((0, version));
                                e.0 += 1;
                                if e.0 >= acks_needed {
                                    let Some((_, version)) = counts.remove(&et) else {
                                        continue;
                                    };
                                    if method == RtMethod::RituMv {
                                        if let Some(v) = version {
                                            fully_installed.insert(v.time, v);
                                            let mut horizon = None;
                                            while let Some(v) = fully_installed.remove(&next_time)
                                            {
                                                horizon = Some(v);
                                                next_time += 1;
                                            }
                                            if let Some(h) = horizon {
                                                // Log before broadcasting
                                                // so a site crashing now
                                                // recovers the notice at
                                                // restart.
                                                if let Some(c) = &control {
                                                    c.note_vtnc(h);
                                                }
                                                for s in senders.read().iter() {
                                                    let _ = s.send(SiteMsg::AdvanceVtnc(h));
                                                }
                                            }
                                        }
                                    } else {
                                        if let Some(c) = &control {
                                            c.note_complete(et);
                                        }
                                        for s in senders.read().iter() {
                                            let _ = s.send(SiteMsg::Complete(et));
                                        }
                                    }
                                }
                            }
                            TrackerMsg::Shutdown => break,
                        }
                    }
                })
                .unwrap_or_else(|e| panic!("spawn tracker thread: {e}"));
            (Some(ttx), Some(handle))
        } else {
            (None, None)
        };

        let chaos_dir = chaos.as_ref().map(|(_, dir)| {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("create chaos dir {}: {e}", dir.display()));
            dir.clone()
        });
        let spawn_cfg = SiteSpawn {
            method,
            audit,
            canary,
            tracker: tracker_sender.clone(),
            chaos: chaos_dir
                .as_ref()
                .map(|dir| (dir.clone(), Arc::clone(&control))),
            metrics: metrics.clone(),
        };
        let site_threads = receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let mut cfg = spawn_cfg.clone();
                if let Some((dir, control)) = cfg.chaos.take() {
                    cfg.chaos = Some((dir.join(format!("site-{i}.journal")), control));
                }
                Some(spawn_site(i, rx, cfg))
            })
            .collect();

        // Relays: one durable queue + fate planner per directed link
        // (self-links included — an origin's copy to itself rides the
        // same machinery, just never partitioned).
        let chaos = chaos.map(|(plan, dir)| {
            let mut relays = Vec::with_capacity(n * n);
            for from in 0..n {
                for to in 0..n {
                    let (tx, rx) = unbounded::<RelayMsg>();
                    let ack_tx = tx.clone();
                    let senders = Arc::clone(&site_senders);
                    let deliver = move |mset: MSet, entry: EntryId| {
                        let site = { senders.read()[to].clone() };
                        site.send(SiteMsg::ChaosDeliver {
                            mset,
                            entry,
                            ack: ack_tx.clone(),
                        })
                        .is_ok()
                    };
                    relays.push(chaos::spawn_relay(
                        SiteId(from as u64),
                        SiteId(to as u64),
                        n,
                        plan.clone(),
                        dir.join(format!("link-{from}-{to}.queue")),
                        (tx, rx),
                        deliver,
                    ));
                }
            }
            ChaosRuntime {
                relays,
                control,
                crashes: 0,
                restarts: 0,
            }
        });

        Self {
            method,
            site_senders,
            site_threads,
            tracker_sender,
            tracker_thread,
            sequencer: AtomicCell::new(0),
            version_clock: AtomicCell::new(0),
            next_et: AtomicCell::new(1),
            n,
            spawn_cfg,
            chaos,
            divergence_gauge: GaugeFamily::new(&metrics, "esr_divergence"),
            queue_depth_gauge: GaugeFamily::new(&metrics, "esr_site_queue_depth"),
            metrics,
        }
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.n
    }

    /// The method in force.
    pub fn method(&self) -> RtMethod {
        self.method
    }

    fn fresh_et(&self) -> EtId {
        EtId(self.next_et.fetch_add(1))
    }

    fn sender_of(&self, site: SiteId) -> Sender<SiteMsg> {
        self.site_senders.read()[site.raw() as usize].clone()
    }

    /// Submits an update ET originating at `origin`; the MSet fans out to
    /// every site asynchronously. Returns immediately with the ET id.
    /// On a chaos cluster the copies travel through the per-link durable
    /// relays (encoded with the wire codec) instead of being handed to
    /// the site channels directly.
    pub fn submit_update(&self, origin: SiteId, ops: Vec<ObjectOp>) -> EtId {
        let et = self.fresh_et();
        let mset = match self.method {
            RtMethod::Ordup => {
                let seq = SeqNo(self.sequencer.fetch_add(1));
                MSet::new(et, origin, ops).sequenced(seq)
            }
            _ => MSet::new(et, origin, ops),
        };
        if let Some(c) = &self.chaos {
            let bytes = encode_mset(&mset);
            let from = origin.raw() as usize;
            for to in 0..self.n {
                let _ = c.relays[from * self.n + to]
                    .sender
                    .send(RelayMsg::Send(bytes.clone()));
            }
        } else {
            for s in self.site_senders.read().iter() {
                let _ = s.send(SiteMsg::Deliver(mset.clone()));
            }
        }
        et
    }

    /// Stamps and submits a RITU blind write.
    pub fn submit_blind_write(&self, origin: SiteId, object: ObjectId, value: Value) -> EtId {
        let t = self.version_clock.fetch_add(1) + 1;
        let ts = VersionTs::new(t, ClientId(origin.raw()));
        self.submit_update(
            origin,
            vec![ObjectOp::new(object, Operation::TimestampedWrite(ts, value))],
        )
    }

    /// COMPE: broadcasts a commit decision for `et`. Control-plane
    /// traffic is not chaos-injected, but under chaos the decision is
    /// logged first so a crashed site recovers it at restart.
    pub fn commit(&self, et: EtId) {
        if let Some(c) = &self.chaos {
            c.control.note_decision(Decision::Commit(et));
        }
        for s in self.site_senders.read().iter() {
            let _ = s.send(SiteMsg::Commit(et));
        }
    }

    /// COMPE: broadcasts an abort decision for `et` (logged first under
    /// chaos, like [`Cluster::commit`]).
    pub fn abort(&self, et: EtId) {
        if let Some(c) = &self.chaos {
            c.control.note_decision(Decision::Abort(et));
        }
        for s in self.site_senders.read().iter() {
            let _ = s.send(SiteMsg::Abort(et));
        }
    }

    /// Crashes a site: the thread is torn down mid-stream and every
    /// message still in its channel — deliveries, completion notices,
    /// pending acks — is lost, as in a process kill. Durable state (the
    /// site's journal) survives. Only meaningful on chaos clusters;
    /// relays keep retrying the dead site until [`Cluster::restart`].
    pub fn crash(&mut self, site: SiteId) {
        assert!(self.chaos.is_some(), "crash() requires a chaos cluster");
        let i = site.raw() as usize;
        let sender = self.sender_of(site);
        let _ = sender.send(SiteMsg::Crash);
        if let Some(h) = self.site_threads[i].take() {
            let _ = h.join();
        }
        if let Some(c) = &mut self.chaos {
            c.crashes += 1;
        }
    }

    /// Restarts a crashed site: a fresh thread rebuilds the replica by
    /// replaying its durable journal, then the shared control log, and
    /// finally catches up on everything it missed through the relays'
    /// ack-timeout re-sends. The new channel is swapped into the shared
    /// sender table so the tracker and relays reach the new incarnation.
    pub fn restart(&mut self, site: SiteId) {
        assert!(self.chaos.is_some(), "restart() requires a chaos cluster");
        let i = site.raw() as usize;
        assert!(
            self.site_threads[i].is_none(),
            "restart() of a site that is still running"
        );
        let (tx, rx) = unbounded();
        self.site_senders.write()[i] = tx;
        let mut cfg = self.spawn_cfg.clone();
        if let Some((dir, control)) = cfg.chaos.take() {
            cfg.chaos = Some((dir.join(format!("site-{i}.journal")), control));
        }
        self.site_threads[i] = Some(spawn_site(i, rx, cfg));
        if let Some(c) = &mut self.chaos {
            c.restarts += 1;
        }
    }

    /// One request/reply rendezvous with a site thread. Degrades instead
    /// of panicking when the site is already down (shutdown or crash
    /// raced the caller): `fallback` supplies the answer a dead site
    /// gives.
    fn rendezvous<T>(
        &self,
        site: SiteId,
        make: impl FnOnce(Sender<T>) -> SiteMsg,
        fallback: impl FnOnce() -> T,
    ) -> T {
        let (tx, rx) = bounded(1);
        if self.sender_of(site).send(make(tx)).is_err() {
            return fallback();
        }
        rx.recv().unwrap_or_else(|_| fallback())
    }

    /// Runs a query ET at one site with the given budget. Blocks only for
    /// the rendezvous with the site thread, not for consistency. A query
    /// against a shut-down cluster is rejected (never panics).
    pub fn query(&self, site: SiteId, read_set: &[ObjectId], epsilon: EpsilonSpec) -> QueryOutcome {
        let read_set = read_set.to_vec();
        self.rendezvous(
            site,
            move |reply| SiteMsg::Query {
                read_set,
                epsilon,
                reply,
            },
            QueryOutcome::rejected,
        )
    }

    /// Retries a query until its budget admits it (the synchronous
    /// fallback): useful for strict (epsilon = 0) reads, which succeed
    /// once the replica has caught up.
    pub fn query_blocking(
        &self,
        site: SiteId,
        read_set: &[ObjectId],
        epsilon: EpsilonSpec,
    ) -> QueryOutcome {
        loop {
            let out = self.query(site, read_set, epsilon);
            if out.admitted {
                return out;
            }
            std::thread::yield_now();
        }
    }

    /// A site's full snapshot (empty once the cluster is shut down).
    pub fn snapshot_of(&self, site: SiteId) -> BTreeMap<ObjectId, Value> {
        self.rendezvous(site, |reply| SiteMsg::Snapshot { reply }, BTreeMap::new)
    }

    /// The oracle audit of one site. Protocol logs are meaningful only
    /// on clusters built with [`Cluster::checked`]; the chaos counters
    /// (`redelivered`, `journaled`, and the `link_*` fields aggregated
    /// over this site's inbound relays) are live on any chaos cluster.
    pub fn audit_of(&self, site: SiteId) -> SiteAudit {
        let mut a = self.rendezvous(site, |reply| SiteMsg::Audit { reply }, SiteAudit::default);
        if let Some(c) = &self.chaos {
            for r in c.relays.iter().filter(|r| r.to == site) {
                if let Some(s) = r.status() {
                    a.link_retries += s.retries;
                    a.link_resends += s.resends;
                    a.link_dropped += s.stats.dropped_attempts;
                    a.link_duplicated += s.stats.duplicated;
                }
            }
        }
        a
    }

    /// Has `site` applied `et` yet? (`false` once shut down.)
    pub fn has_applied(&self, site: SiteId, et: EtId) -> bool {
        self.rendezvous(site, |reply| SiteMsg::HasApplied { et, reply }, || false)
    }

    /// Aggregated fault counters across every relay, plus crash/restart
    /// counts. Zeroes on non-chaos clusters.
    pub fn chaos_stats(&self) -> ChaosStats {
        let mut agg = ChaosStats::default();
        if let Some(c) = &self.chaos {
            for r in &c.relays {
                if let Some(s) = r.status() {
                    agg.absorb(&s);
                }
            }
            agg.crashes = c.crashes;
            agg.restarts = c.restarts;
        }
        agg
    }

    /// The deterministic fault trace: every planned link-level fate,
    /// sorted by (from, to, entry). Two runs with the same
    /// [`FaultPlan`] and submission order produce identical traces
    /// regardless of thread scheduling. Empty on non-chaos clusters.
    pub fn fault_trace(&self) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        if let Some(c) = &self.chaos {
            for r in &c.relays {
                if let Some(s) = r.status() {
                    events.extend(s.trace);
                }
            }
        }
        events.sort_unstable();
        events
    }

    /// Blocks until every site reports settled twice in a row (no
    /// backlog, no in-flight updates) — the quiescent state at which ESR
    /// guarantees all replicas are identical. On a chaos cluster this
    /// additionally requires every relay queue to be drained (all
    /// entries acked), so call [`Cluster::restart`] for any crashed
    /// site first: a dead site can never ack and quiesce would spin.
    /// Dead sites on a *shut-down* cluster count as settled, so shutdown
    /// paths always terminate.
    ///
    /// Panics if the cluster fails to settle within a generous default
    /// deadline (two minutes) — use [`Cluster::quiesce_within`] to
    /// handle the timeout instead.
    pub fn quiesce(&self) {
        self.quiesce_within(std::time::Duration::from_secs(120))
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`Cluster::quiesce`] with an explicit deadline: returns
    /// `Err(QuiesceTimeout)` instead of spinning forever when the
    /// cluster cannot settle (a crashed-and-never-restarted site, a
    /// partition window outlasting the deadline, a protocol bug).
    pub fn quiesce_within(&self, deadline: std::time::Duration) -> Result<(), QuiesceTimeout> {
        let start = std::time::Instant::now();
        let mut stable_rounds = 0;
        while stable_rounds < 2 {
            if start.elapsed() > deadline {
                return Err(QuiesceTimeout {
                    waited: start.elapsed(),
                    site_queues: self.sample_queue_depths(),
                    coordinator: None,
                });
            }
            self.sample_queue_depths();
            let relays_drained = match &self.chaos {
                Some(c) => c
                    .relays
                    .iter()
                    .all(|r| r.status().is_none_or(|s| s.pending == 0)),
                None => true,
            };
            let all_settled = relays_drained
                && (0..self.n).all(|i| {
                    self.rendezvous(
                        SiteId(i as u64),
                        |reply| SiteMsg::Settled { reply },
                        || true,
                    )
                });
            if all_settled {
                stable_rounds += 1;
            } else {
                stable_rounds = 0;
                // A short sleep, not a hot yield: on a chaos cluster the
                // status polls would otherwise flood the relay channels.
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
        }
        self.refresh_metrics();
        Ok(())
    }

    /// True when all replicas expose identical values (call after
    /// [`Cluster::quiesce`]).
    pub fn converged(&self) -> bool {
        let first = self.snapshot_of(SiteId(0));
        (1..self.n).all(|i| self.snapshot_of(SiteId(i as u64)) == first)
    }

    /// The cluster's metrics registry. Per-site protocol series update
    /// live; the cluster-derived gauges (divergence, queue depth) are
    /// refreshed by the quiesce polls and [`Cluster::refresh_metrics`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Recomputes the cluster-derived gauges:
    ///
    /// * `esr_divergence{site}` — objects whose value at the site
    ///   differs from the cluster consensus (the snapshot the largest
    ///   number of sites agree on, zero values stripped). 0 everywhere
    ///   once the cluster has quiesced and converged — including after
    ///   crash/restart recovery.
    /// * `esr_site_queue_depth{site}` — current inbox depth.
    pub fn refresh_metrics(&self) {
        fn normalize(m: BTreeMap<ObjectId, Value>) -> BTreeMap<ObjectId, Value> {
            m.into_iter().filter(|(_, v)| *v != Value::ZERO).collect()
        }
        let snaps: Vec<BTreeMap<ObjectId, Value>> = (0..self.n)
            .map(|i| normalize(self.snapshot_of(SiteId(i as u64))))
            .collect();
        let consensus = snaps
            .iter()
            .max_by_key(|cand| snaps.iter().filter(|s| s == cand).count())
            .cloned()
            .unwrap_or_default();
        for (i, snap) in snaps.iter().enumerate() {
            let differing = snap
                .iter()
                .filter(|(k, v)| consensus.get(k) != Some(v))
                .count()
                + consensus.keys().filter(|k| !snap.contains_key(k)).count();
            self.divergence_gauge
                .set(i as u64, i64::try_from(differing).unwrap_or(i64::MAX));
        }
        self.sample_queue_depths();
    }

    /// Samples every site's inbox depth into `esr_site_queue_depth` and
    /// returns the depths.
    fn sample_queue_depths(&self) -> Vec<Option<u64>> {
        self.site_senders
            .read()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let depth = s.len() as u64;
                self.queue_depth_gauge
                    .set(i as u64, i64::try_from(depth).unwrap_or(i64::MAX));
                Some(depth)
            })
            .collect()
    }

    /// Stops all threads. Called automatically on drop. Relays go down
    /// first so no new deliveries race the site shutdown.
    pub fn shutdown(&mut self) {
        if let Some(c) = &mut self.chaos {
            for r in &c.relays {
                let _ = r.sender.send(RelayMsg::Shutdown);
            }
            for r in &mut c.relays {
                if let Some(h) = r.thread.take() {
                    let _ = h.join();
                }
            }
        }
        for s in self.site_senders.read().iter() {
            let _ = s.send(SiteMsg::Shutdown);
        }
        for h in &mut self.site_threads {
            if let Some(h) = h.take() {
                let _ = h.join();
            }
        }
        if let Some(t) = self.tracker_sender.take() {
            let _ = t.send(TrackerMsg::Shutdown);
        }
        if let Some(h) = self.tracker_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const X: ObjectId = ObjectId(0);

    fn incr(n: i64) -> Vec<ObjectOp> {
        vec![ObjectOp::new(X, Operation::Incr(n))]
    }

    #[test]
    fn commu_updates_converge_across_threads() {
        let c = Cluster::new(RtMethod::Commu, 4);
        for i in 0..50 {
            c.submit_update(SiteId(i % 4), incr(1));
        }
        c.quiesce();
        assert!(c.converged());
        assert_eq!(c.snapshot_of(SiteId(0))[&X], Value::Int(50));
    }

    #[test]
    fn ordup_applies_in_global_order() {
        let c = Cluster::new(RtMethod::Ordup, 3);
        c.submit_update(SiteId(0), incr(10));
        c.submit_update(SiteId(1), vec![ObjectOp::new(X, Operation::MulBy(3))]);
        c.submit_update(SiteId(2), vec![ObjectOp::new(X, Operation::Decr(5))]);
        c.quiesce();
        assert!(c.converged());
        assert_eq!(c.snapshot_of(SiteId(0))[&X], Value::Int(25), "(0+10)*3-5");
    }

    #[test]
    fn ritu_blind_writes_take_newest() {
        let c = Cluster::new(RtMethod::Ritu, 3);
        for i in 0..10 {
            c.submit_blind_write(SiteId(i % 3), X, Value::Int(i as i64));
        }
        c.quiesce();
        assert!(c.converged());
        assert_eq!(c.snapshot_of(SiteId(1))[&X], Value::Int(9));
    }

    #[test]
    fn compe_commit_and_abort() {
        let c = Cluster::new(RtMethod::Compe, 3);
        let a = c.submit_update(SiteId(0), incr(10));
        let b = c.submit_update(SiteId(1), incr(5));
        c.commit(a);
        c.abort(b);
        c.quiesce();
        assert!(c.converged());
        assert_eq!(c.snapshot_of(SiteId(2))[&X], Value::Int(10));
    }

    #[test]
    fn strict_query_blocks_until_caught_up() {
        let c = Cluster::new(RtMethod::Commu, 4);
        for _ in 0..20 {
            c.submit_update(SiteId(0), incr(1));
        }
        let out = c.query_blocking(SiteId(3), &[X], EpsilonSpec::STRICT);
        assert!(out.admitted);
        assert_eq!(out.charged, 0);
        assert_eq!(out.values, vec![Value::Int(20)]);
    }

    #[test]
    fn unbounded_query_returns_immediately() {
        let c = Cluster::new(RtMethod::Commu, 2);
        c.submit_update(SiteId(0), incr(7));
        let out = c.query(SiteId(1), &[X], EpsilonSpec::UNBOUNDED);
        assert!(out.admitted, "unbounded budget always admits");
    }

    #[test]
    fn concurrent_submitters_from_many_threads() {
        let c = Arc::new(Cluster::new(RtMethod::Commu, 4));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    c.submit_update(SiteId(t % 4), incr(1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        c.quiesce();
        assert!(c.converged());
        assert_eq!(c.snapshot_of(SiteId(0))[&X], Value::Int(200));
    }

    #[test]
    fn has_applied_visibility() {
        let c = Cluster::new(RtMethod::Commu, 2);
        let et = c.submit_update(SiteId(0), incr(1));
        c.quiesce();
        assert!(c.has_applied(SiteId(0), et));
        assert!(c.has_applied(SiteId(1), et));
        assert!(!c.has_applied(SiteId(0), EtId(999)));
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut c = Cluster::new(RtMethod::Commu, 2);
        c.submit_update(SiteId(0), incr(1));
        c.quiesce();
        c.shutdown();
        c.shutdown();
    }

    #[test]
    fn non_chaos_cluster_reports_zero_chaos_stats() {
        let c = Cluster::new(RtMethod::Commu, 2);
        c.submit_update(SiteId(0), incr(1));
        c.quiesce();
        assert_eq!(c.chaos_stats(), ChaosStats::default());
        assert!(c.fault_trace().is_empty());
        let a = c.audit_of(SiteId(0));
        assert_eq!(a.journaled, 0);
        assert_eq!(a.redelivered, 0);
    }
}

#[cfg(test)]
mod ritu_mv_tests {
    use super::*;

    const X: ObjectId = ObjectId(0);

    #[test]
    fn ritu_mv_converges_and_certifies_across_threads() {
        let c = Cluster::new(RtMethod::RituMv, 3);
        for i in 1..=20i64 {
            c.submit_blind_write(SiteId(i as u64 % 3), X, Value::Int(i));
        }
        c.quiesce();
        assert!(c.converged());
        assert_eq!(c.snapshot_of(SiteId(0))[&X], Value::Int(20));
        // VTNC certification is asynchronous: poll the strict read until
        // the horizon covers the newest version (bounded wait).
        for attempt in 0..10_000 {
            let out = c.query(SiteId(1), &[X], EpsilonSpec::STRICT);
            assert!(out.admitted, "RITU-MV strict reads never reject");
            if out.values == vec![Value::Int(20)] && out.charged == 0 {
                return;
            }
            if attempt % 100 == 99 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            std::thread::yield_now();
        }
        panic!("VTNC never certified the newest version");
    }

    #[test]
    fn ritu_mv_strict_reads_are_stable_not_torn() {
        let c = Cluster::new(RtMethod::RituMv, 4);
        for i in 1..=50i64 {
            c.submit_blind_write(SiteId(i as u64 % 4), X, Value::Int(i));
        }
        // Mid-flight strict reads serve *some* certified version — a
        // value that really was written (or zero) — never garbage.
        for _ in 0..50 {
            let out = c.query(SiteId(2), &[X], EpsilonSpec::STRICT);
            assert!(out.admitted);
            let v = out.values[0].as_int().unwrap();
            assert!((0..=50).contains(&v), "impossible value {v}");
        }
        c.quiesce();
        assert!(c.converged());
    }
}
