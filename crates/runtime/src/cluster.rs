//! A thread-per-site replicated cluster with real concurrency.
//!
//! Where [`esr_replica::SimCluster`] runs the protocols under a
//! deterministic virtual clock, this runtime runs the *same site state
//! machines* on real OS threads connected by channels — the shape a
//! production deployment would take (one process per site, one queue per
//! link). Updates propagate asynchronously: `submit_update` returns as
//! soon as the MSets are enqueued, queries run against whichever state
//! the local replica has, and `quiesce` waits for the system to settle —
//! at which point all replicas are identical, the ESR convergence
//! guarantee.

use std::collections::BTreeMap;

use std::thread::JoinHandle;

use crossbeam::atomic::AtomicCell;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

use esr_core::divergence::{EpsilonSpec, InconsistencyCounter};
use esr_core::ids::{ClientId, EtId, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_replica::commu::CommuSite;
use esr_replica::compe::{CompeEvent, CompeSite};
use esr_replica::mset::MSet;
use esr_replica::ordup::OrdupSite;
use esr_replica::ritu::{RituMvSite, RituOverwriteSite};
use esr_replica::site::{QueryOutcome, ReplicaSite};
use esr_sim::probe;

/// Logical shared-memory location namespace for the per-site protocol
/// state, annotated via [`probe::mem_read`] / [`probe::mem_write`] so
/// checked runs prove site state stays thread-confined (each location
/// is only ever touched by its owning site thread — any cross-thread
/// access without a happens-before edge is a race finding).
const SITE_STATE_LOC: u64 = 1 << 48;

/// Replica control methods available in the thread runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtMethod {
    /// ORDUP with an atomic global sequencer.
    Ordup,
    /// Commutative operations.
    Commu,
    /// RITU last-writer-wins overwrite.
    Ritu,
    /// RITU multiversion with VTNC visibility: the tracker thread acts
    /// as the certifier, advancing the horizon once a version is
    /// installed at every replica.
    RituMv,
    /// Compensation-based backward control (commit/abort driven by the
    /// client through [`Cluster::commit`] / [`Cluster::abort`]).
    Compe,
}

/// Seeded defect canaries for `esr-check`: each one disables a single
/// safety mechanism the checker's oracles must then flag. Production
/// clusters always run [`RtCanary::None`]; the other variants exist so
/// the checking pipeline can prove it *would* catch each defect class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RtCanary {
    /// No fault injected (the only variant production code should use).
    #[default]
    None,
    /// ORDUP sites apply MSets in arrival order, bypassing the
    /// sequencer hold-back — the ORDUP global-order oracle must flag
    /// out-of-order applications.
    OrdupSequencerDisabled,
    /// Sites answer queries with an unbounded budget regardless of the
    /// declared `EpsilonSpec` — the epsilon-accounting oracle must flag
    /// admitted queries whose charge exceeds their declared bound.
    EpsilonIgnored,
    /// The tracker certifies a VTNC advance on the *first* site ack
    /// instead of waiting for all sites — the VTNC-safety oracle must
    /// flag advances past a site's installed prefix.
    VtncEagerCertify,
}

/// Per-site oracle evidence extracted after a run via
/// [`Cluster::audit_of`] (populated only for clusters built with
/// [`Cluster::checked`]; fields irrelevant to the method in force stay
/// empty).
#[derive(Debug, Clone, Default)]
pub struct SiteAudit {
    /// ORDUP: `(et, seq)` in application order.
    pub ordup_order: Vec<(EtId, SeqNo)>,
    /// COMMU: ETs in application order.
    pub commu_order: Vec<EtId>,
    /// RITU overwrite: winning installs `(object, version)` in store
    /// order.
    pub ritu_installs: Vec<(ObjectId, VersionTs)>,
    /// RITU-MV: every VTNC target received, in arrival order.
    pub vtnc_targets: Vec<VersionTs>,
    /// RITU-MV: advances whose target exceeded the locally installed
    /// contiguous version prefix.
    pub vtnc_violations: u64,
    /// COMPE: lifecycle events in order.
    pub compe_events: Vec<(EtId, CompeEvent)>,
}

enum SiteState {
    Ordup(OrdupSite),
    Commu(CommuSite),
    Ritu(RituOverwriteSite),
    RituMv(RituMvSite),
    Compe(CompeSite),
}

impl SiteState {
    fn deliver(&mut self, mset: MSet) {
        match self {
            SiteState::Ordup(s) => s.deliver(mset),
            SiteState::Commu(s) => s.deliver(mset),
            SiteState::Ritu(s) => s.deliver(mset),
            SiteState::RituMv(s) => s.deliver(mset),
            SiteState::Compe(s) => s.deliver(mset),
        }
    }
    fn deliver_batch(&mut self, msets: Vec<MSet>) {
        match self {
            SiteState::Ordup(s) => s.deliver_batch(msets),
            SiteState::Commu(s) => s.deliver_batch(msets),
            SiteState::Ritu(s) => s.deliver_batch(msets),
            SiteState::RituMv(s) => s.deliver_batch(msets),
            SiteState::Compe(s) => s.deliver_batch(msets),
        }
    }
    fn query(&mut self, rs: &[ObjectId], c: &mut InconsistencyCounter) -> QueryOutcome {
        match self {
            SiteState::Ordup(s) => s.query(rs, c),
            SiteState::Commu(s) => s.query(rs, c),
            SiteState::Ritu(s) => s.query(rs, c),
            SiteState::RituMv(s) => s.query(rs, c),
            SiteState::Compe(s) => s.query(rs, c),
        }
    }
    fn snapshot(&self) -> BTreeMap<ObjectId, Value> {
        match self {
            SiteState::Ordup(s) => s.snapshot(),
            SiteState::Commu(s) => s.snapshot(),
            SiteState::Ritu(s) => s.snapshot(),
            SiteState::RituMv(s) => s.snapshot(),
            SiteState::Compe(s) => s.snapshot(),
        }
    }
    /// Is this site settled (nothing held back, nothing in flight)?
    fn settled(&self) -> bool {
        match self {
            SiteState::Ordup(s) => s.backlog() == 0,
            SiteState::Commu(s) => s.quiescent(),
            SiteState::Ritu(s) => s.backlog() == 0,
            SiteState::RituMv(s) => s.backlog() == 0,
            SiteState::Compe(s) => s.at_risk() == 0,
        }
    }
    fn has_applied(&self, et: EtId) -> bool {
        match self {
            SiteState::Ordup(s) => s.has_applied(et),
            SiteState::Commu(s) => s.has_applied(et),
            SiteState::Ritu(s) => s.has_applied(et),
            SiteState::RituMv(s) => s.has_applied(et),
            SiteState::Compe(s) => s.has_applied(et),
        }
    }
    fn enable_audit(&mut self) {
        match self {
            SiteState::Ordup(s) => s.enable_audit(),
            SiteState::Commu(s) => s.enable_audit(),
            SiteState::Ritu(s) => s.enable_audit(),
            SiteState::RituMv(s) => s.enable_audit(),
            SiteState::Compe(s) => s.enable_audit(),
        }
    }
    fn audit(&self) -> SiteAudit {
        let mut a = SiteAudit::default();
        match self {
            SiteState::Ordup(s) => a.ordup_order = s.audit_log().to_vec(),
            SiteState::Commu(s) => a.commu_order = s.audit_log().to_vec(),
            SiteState::Ritu(s) => a.ritu_installs = s.audit_log().to_vec(),
            SiteState::RituMv(s) => {
                a.vtnc_targets = s.vtnc_targets().to_vec();
                a.vtnc_violations = s.vtnc_violations();
            }
            SiteState::Compe(s) => a.compe_events = s.audit_log().to_vec(),
        }
        a
    }
}

enum SiteMsg {
    Deliver(MSet),
    Complete(EtId),
    AdvanceVtnc(VersionTs),
    Commit(EtId),
    Abort(EtId),
    Query {
        read_set: Vec<ObjectId>,
        epsilon: EpsilonSpec,
        reply: Sender<QueryOutcome>,
    },
    Snapshot {
        reply: Sender<BTreeMap<ObjectId, Value>>,
    },
    Settled {
        reply: Sender<bool>,
    },
    HasApplied {
        et: EtId,
        reply: Sender<bool>,
    },
    Audit {
        reply: Sender<SiteAudit>,
    },
    Shutdown,
}

enum TrackerMsg {
    Applied { et: EtId, version: Option<VersionTs> },
    Shutdown,
}

/// A running thread-per-site cluster.
///
/// ```
/// use esr_core::divergence::EpsilonSpec;
/// use esr_core::ids::{ObjectId, SiteId};
/// use esr_core::op::{ObjectOp, Operation};
/// use esr_core::value::Value;
/// use esr_runtime::{Cluster, RtMethod};
///
/// let cluster = Cluster::new(RtMethod::Commu, 3);
/// cluster.submit_update(SiteId(0), vec![ObjectOp::new(ObjectId(0), Operation::Incr(5))]);
/// cluster.quiesce();
/// assert!(cluster.converged());
/// let out = cluster.query(SiteId(2), &[ObjectId(0)], EpsilonSpec::STRICT);
/// assert_eq!(out.values, vec![Value::Int(5)]);
/// ```
pub struct Cluster {
    method: RtMethod,
    site_senders: Vec<Sender<SiteMsg>>,
    site_threads: Vec<JoinHandle<()>>,
    tracker_sender: Option<Sender<TrackerMsg>>,
    tracker_thread: Option<JoinHandle<()>>,
    sequencer: AtomicCell,
    version_clock: AtomicCell,
    // Instrumented (an ET allocation is a preemption point): concurrent
    // submitters' ET numbering must be schedule-determined, not a free
    // race the explorer cannot replay.
    next_et: AtomicCell,
    n: usize,
}

impl Cluster {
    /// Spawns `n` site threads running `method`.
    pub fn new(method: RtMethod, n: usize) -> Self {
        Self::build(method, n, false, RtCanary::None)
    }

    /// Spawns a cluster with per-site oracle audits enabled and an
    /// optional canary fault injected — the constructor `esr-check`
    /// drives. Pass [`RtCanary::None`] for a faithful (audited but
    /// unmutated) cluster.
    pub fn checked(method: RtMethod, n: usize, canary: RtCanary) -> Self {
        Self::build(method, n, true, canary)
    }

    fn build(method: RtMethod, n: usize, audit: bool, canary: RtCanary) -> Self {
        assert!(n > 0);
        let mut site_senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<SiteMsg>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            site_senders.push(tx);
            receivers.push(rx);
        }

        // Completion tracker (COMMU/RITU lock-counter release): counts
        // per-ET applies and broadcasts Complete once all sites report.
        let (tracker_sender, tracker_thread) = if matches!(
            method,
            RtMethod::Commu | RtMethod::Ritu | RtMethod::RituMv
        ) {
            let (ttx, trx) = unbounded::<TrackerMsg>();
            let senders = site_senders.clone();
            // VtncEagerCertify canary: certify on the first ack instead
            // of waiting for every site — the injected defect the
            // VTNC-safety oracle must catch.
            let acks_needed = if canary == RtCanary::VtncEagerCertify {
                1
            } else {
                n
            };
            let handle = std::thread::Builder::new()
                .name("esr-tracker".into())
                .spawn(move || {
                    let mut counts: BTreeMap<EtId, (usize, Option<VersionTs>)> = BTreeMap::new();
                    // VTNC certification (RituMv). The atomic version
                    // clock hands out dense time components (1, 2, 3, …),
                    // so the horizon advances exactly through the
                    // contiguous prefix of fully-installed times — a gap
                    // means some earlier version is still propagating.
                    let mut fully_installed: BTreeMap<u64, VersionTs> = BTreeMap::new();
                    let mut next_time: u64 = 1;
                    while let Ok(msg) = trx.recv() {
                        match msg {
                            TrackerMsg::Applied { et, version } => {
                                let e = counts.entry(et).or_insert((0, version));
                                e.0 += 1;
                                if e.0 >= acks_needed {
                                    let Some((_, version)) = counts.remove(&et) else {
                                        continue;
                                    };
                                    if method == RtMethod::RituMv {
                                        if let Some(v) = version {
                                            fully_installed.insert(v.time, v);
                                            let mut horizon = None;
                                            while let Some(v) = fully_installed.remove(&next_time)
                                            {
                                                horizon = Some(v);
                                                next_time += 1;
                                            }
                                            if let Some(h) = horizon {
                                                for s in &senders {
                                                    let _ = s.send(SiteMsg::AdvanceVtnc(h));
                                                }
                                            }
                                        }
                                    } else {
                                        for s in &senders {
                                            let _ = s.send(SiteMsg::Complete(et));
                                        }
                                    }
                                }
                            }
                            TrackerMsg::Shutdown => break,
                        }
                    }
                })
                .unwrap_or_else(|e| panic!("spawn tracker thread: {e}"));
            (Some(ttx), Some(handle))
        } else {
            (None, None)
        };

        let mut site_threads = Vec::with_capacity(n);
        for (i, rx) in receivers.into_iter().enumerate() {
            let id = SiteId(i as u64);
            let tracker = tracker_sender.clone();
            let handle = std::thread::Builder::new()
                .name(format!("esr-site-{i}"))
                .spawn(move || {
                    let mut state = match method {
                        RtMethod::Ordup => SiteState::Ordup(OrdupSite::new(id)),
                        RtMethod::Commu => SiteState::Commu(CommuSite::new(id)),
                        RtMethod::Ritu => SiteState::Ritu(RituOverwriteSite::new(id)),
                        RtMethod::RituMv => SiteState::RituMv(RituMvSite::new(id)),
                        RtMethod::Compe => SiteState::Compe(CompeSite::new(id)),
                    };
                    if audit {
                        state.enable_audit();
                    }
                    // Logical location of this site's protocol state for
                    // the race detector: only this thread may touch it.
                    let state_loc = SITE_STATE_LOC + i as u64;
                    // One message may be carried over from a drain that
                    // stopped at a non-matching message.
                    let mut carried: Option<SiteMsg> = None;
                    loop {
                        let msg = match carried.take() {
                            Some(m) => m,
                            None => match rx.recv() {
                                Ok(m) => m,
                                Err(_) => break,
                            },
                        };
                        match msg {
                            SiteMsg::Deliver(mset) => {
                                // Drain the run of deliveries already
                                // queued behind this one so the site
                                // absorbs them through the method's
                                // batch fast path; the first
                                // non-delivery stops the run and is
                                // processed next, preserving order.
                                let mut batch = vec![mset];
                                loop {
                                    match rx.try_recv() {
                                        Ok(SiteMsg::Deliver(m)) => batch.push(m),
                                        Ok(other) => {
                                            carried = Some(other);
                                            break;
                                        }
                                        Err(_) => break,
                                    }
                                }
                                // ETs this batch may newly apply, deduped
                                // in arrival order (a duplicate delivery
                                // must not produce a second ack).
                                let mut candidates: Vec<(EtId, Option<VersionTs>)> = Vec::new();
                                for m in &batch {
                                    if state.has_applied(m.et)
                                        || candidates.iter().any(|(e, _)| *e == m.et)
                                    {
                                        continue;
                                    }
                                    let version = m
                                        .ops
                                        .iter()
                                        .filter_map(|o| match &o.op {
                                            Operation::TimestampedWrite(ts, _) => Some(*ts),
                                            _ => None,
                                        })
                                        .max();
                                    candidates.push((m.et, version));
                                }
                                probe::mem_write(state_loc);
                                match (&mut state, canary) {
                                    // Canary: bypass the ORDUP hold-back
                                    // and apply in raw arrival order —
                                    // the global-order oracle must flag
                                    // the resulting sequence gaps.
                                    (
                                        SiteState::Ordup(s),
                                        RtCanary::OrdupSequencerDisabled,
                                    ) => {
                                        for m in batch.drain(..) {
                                            s.apply_unchecked(m);
                                        }
                                    }
                                    _ => {
                                        if batch.len() == 1 {
                                            if let Some(single) = batch.pop() {
                                                state.deliver(single);
                                            }
                                        } else {
                                            state.deliver_batch(batch);
                                        }
                                    }
                                }
                                if let Some(t) = &tracker {
                                    for (et, version) in candidates {
                                        if state.has_applied(et) {
                                            let _ = t.send(TrackerMsg::Applied { et, version });
                                        }
                                    }
                                }
                            }
                            SiteMsg::Complete(et) => {
                                probe::mem_write(state_loc);
                                match &mut state {
                                    SiteState::Commu(s) => s.complete(et),
                                    SiteState::Ritu(s) => s.complete(et),
                                    _ => {}
                                }
                            }
                            SiteMsg::AdvanceVtnc(ts) => {
                                // The horizon is monotone, so a queued
                                // run of advances collapses to its max.
                                let mut horizon = ts;
                                loop {
                                    match rx.try_recv() {
                                        Ok(SiteMsg::AdvanceVtnc(t2)) => {
                                            horizon = horizon.max(t2);
                                        }
                                        Ok(other) => {
                                            carried = Some(other);
                                            break;
                                        }
                                        Err(_) => break,
                                    }
                                }
                                probe::mem_write(state_loc);
                                if let SiteState::RituMv(s) = &mut state {
                                    s.advance_vtnc(horizon);
                                }
                            }
                            SiteMsg::Commit(et) => {
                                probe::mem_write(state_loc);
                                if let SiteState::Compe(s) = &mut state {
                                    s.commit(et);
                                }
                            }
                            SiteMsg::Abort(et) => {
                                probe::mem_write(state_loc);
                                if let SiteState::Compe(s) = &mut state {
                                    s.abort(et);
                                }
                            }
                            SiteMsg::Query {
                                read_set,
                                epsilon,
                                reply,
                            } => {
                                probe::mem_write(state_loc);
                                // Canary: ignore the declared budget —
                                // the epsilon-accounting oracle must
                                // flag admitted queries whose charge
                                // exceeds the spec the client declared.
                                let spec = if canary == RtCanary::EpsilonIgnored {
                                    EpsilonSpec::UNBOUNDED
                                } else {
                                    epsilon
                                };
                                let mut counter = InconsistencyCounter::new(spec);
                                let _ = reply.send(state.query(&read_set, &mut counter));
                            }
                            SiteMsg::Snapshot { reply } => {
                                probe::mem_read(state_loc);
                                let _ = reply.send(state.snapshot());
                            }
                            SiteMsg::Settled { reply } => {
                                probe::mem_read(state_loc);
                                let _ = reply.send(state.settled());
                            }
                            SiteMsg::HasApplied { et, reply } => {
                                probe::mem_read(state_loc);
                                let _ = reply.send(state.has_applied(et));
                            }
                            SiteMsg::Audit { reply } => {
                                probe::mem_read(state_loc);
                                let _ = reply.send(state.audit());
                            }
                            SiteMsg::Shutdown => break,
                        }
                    }
                })
                .unwrap_or_else(|e| panic!("spawn site thread {i}: {e}"));
            site_threads.push(handle);
        }

        Self {
            method,
            site_senders,
            site_threads,
            tracker_sender,
            tracker_thread,
            sequencer: AtomicCell::new(0),
            version_clock: AtomicCell::new(0),
            next_et: AtomicCell::new(1),
            n,
        }
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.n
    }

    /// The method in force.
    pub fn method(&self) -> RtMethod {
        self.method
    }

    fn fresh_et(&self) -> EtId {
        EtId(self.next_et.fetch_add(1))
    }

    /// Submits an update ET originating at `origin`; the MSet fans out to
    /// every site asynchronously. Returns immediately with the ET id.
    pub fn submit_update(&self, origin: SiteId, ops: Vec<ObjectOp>) -> EtId {
        let et = self.fresh_et();
        let mset = match self.method {
            RtMethod::Ordup => {
                let seq = SeqNo(self.sequencer.fetch_add(1));
                MSet::new(et, origin, ops).sequenced(seq)
            }
            _ => MSet::new(et, origin, ops),
        };
        for s in &self.site_senders {
            let _ = s.send(SiteMsg::Deliver(mset.clone()));
        }
        et
    }

    /// Stamps and submits a RITU blind write.
    pub fn submit_blind_write(&self, origin: SiteId, object: ObjectId, value: Value) -> EtId {
        let t = self.version_clock.fetch_add(1) + 1;
        let ts = VersionTs::new(t, ClientId(origin.raw()));
        self.submit_update(
            origin,
            vec![ObjectOp::new(object, Operation::TimestampedWrite(ts, value))],
        )
    }

    /// COMPE: broadcasts a commit decision for `et`.
    pub fn commit(&self, et: EtId) {
        for s in &self.site_senders {
            let _ = s.send(SiteMsg::Commit(et));
        }
    }

    /// COMPE: broadcasts an abort decision for `et`.
    pub fn abort(&self, et: EtId) {
        for s in &self.site_senders {
            let _ = s.send(SiteMsg::Abort(et));
        }
    }

    /// One request/reply rendezvous with a site thread. Degrades instead
    /// of panicking when the site is already down (shutdown raced the
    /// caller): `fallback` supplies the answer a dead site gives.
    fn rendezvous<T>(
        &self,
        site: SiteId,
        make: impl FnOnce(Sender<T>) -> SiteMsg,
        fallback: impl FnOnce() -> T,
    ) -> T {
        let (tx, rx) = bounded(1);
        if self.site_senders[site.raw() as usize].send(make(tx)).is_err() {
            return fallback();
        }
        rx.recv().unwrap_or_else(|_| fallback())
    }

    /// Runs a query ET at one site with the given budget. Blocks only for
    /// the rendezvous with the site thread, not for consistency. A query
    /// against a shut-down cluster is rejected (never panics).
    pub fn query(&self, site: SiteId, read_set: &[ObjectId], epsilon: EpsilonSpec) -> QueryOutcome {
        let read_set = read_set.to_vec();
        self.rendezvous(
            site,
            move |reply| SiteMsg::Query {
                read_set,
                epsilon,
                reply,
            },
            QueryOutcome::rejected,
        )
    }

    /// Retries a query until its budget admits it (the synchronous
    /// fallback): useful for strict (epsilon = 0) reads, which succeed
    /// once the replica has caught up.
    pub fn query_blocking(
        &self,
        site: SiteId,
        read_set: &[ObjectId],
        epsilon: EpsilonSpec,
    ) -> QueryOutcome {
        loop {
            let out = self.query(site, read_set, epsilon);
            if out.admitted {
                return out;
            }
            std::thread::yield_now();
        }
    }

    /// A site's full snapshot (empty once the cluster is shut down).
    pub fn snapshot_of(&self, site: SiteId) -> BTreeMap<ObjectId, Value> {
        self.rendezvous(site, |reply| SiteMsg::Snapshot { reply }, BTreeMap::new)
    }

    /// The oracle audit of one site — meaningful only on clusters built
    /// with [`Cluster::checked`]; otherwise every log is empty.
    pub fn audit_of(&self, site: SiteId) -> SiteAudit {
        self.rendezvous(site, |reply| SiteMsg::Audit { reply }, SiteAudit::default)
    }

    /// Has `site` applied `et` yet? (`false` once shut down.)
    pub fn has_applied(&self, site: SiteId, et: EtId) -> bool {
        self.rendezvous(site, |reply| SiteMsg::HasApplied { et, reply }, || false)
    }

    /// Blocks until every site reports settled twice in a row (no
    /// backlog, no in-flight updates) — the quiescent state at which ESR
    /// guarantees all replicas are identical. Dead sites (cluster
    /// already shut down) count as settled, so this always terminates.
    pub fn quiesce(&self) {
        let mut stable_rounds = 0;
        while stable_rounds < 2 {
            let all_settled = (0..self.n).all(|i| {
                self.rendezvous(
                    SiteId(i as u64),
                    |reply| SiteMsg::Settled { reply },
                    || true,
                )
            });
            if all_settled {
                stable_rounds += 1;
            } else {
                stable_rounds = 0;
                std::thread::yield_now();
            }
        }
    }

    /// True when all replicas expose identical values (call after
    /// [`Cluster::quiesce`]).
    pub fn converged(&self) -> bool {
        let first = self.snapshot_of(SiteId(0));
        (1..self.n).all(|i| self.snapshot_of(SiteId(i as u64)) == first)
    }

    /// Stops all threads. Called automatically on drop.
    pub fn shutdown(&mut self) {
        for s in &self.site_senders {
            let _ = s.send(SiteMsg::Shutdown);
        }
        for h in self.site_threads.drain(..) {
            let _ = h.join();
        }
        if let Some(t) = self.tracker_sender.take() {
            let _ = t.send(TrackerMsg::Shutdown);
        }
        if let Some(h) = self.tracker_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const X: ObjectId = ObjectId(0);

    fn incr(n: i64) -> Vec<ObjectOp> {
        vec![ObjectOp::new(X, Operation::Incr(n))]
    }

    #[test]
    fn commu_updates_converge_across_threads() {
        let c = Cluster::new(RtMethod::Commu, 4);
        for i in 0..50 {
            c.submit_update(SiteId(i % 4), incr(1));
        }
        c.quiesce();
        assert!(c.converged());
        assert_eq!(c.snapshot_of(SiteId(0))[&X], Value::Int(50));
    }

    #[test]
    fn ordup_applies_in_global_order() {
        let c = Cluster::new(RtMethod::Ordup, 3);
        c.submit_update(SiteId(0), incr(10));
        c.submit_update(SiteId(1), vec![ObjectOp::new(X, Operation::MulBy(3))]);
        c.submit_update(SiteId(2), vec![ObjectOp::new(X, Operation::Decr(5))]);
        c.quiesce();
        assert!(c.converged());
        assert_eq!(c.snapshot_of(SiteId(0))[&X], Value::Int(25), "(0+10)*3-5");
    }

    #[test]
    fn ritu_blind_writes_take_newest() {
        let c = Cluster::new(RtMethod::Ritu, 3);
        for i in 0..10 {
            c.submit_blind_write(SiteId(i % 3), X, Value::Int(i as i64));
        }
        c.quiesce();
        assert!(c.converged());
        assert_eq!(c.snapshot_of(SiteId(1))[&X], Value::Int(9));
    }

    #[test]
    fn compe_commit_and_abort() {
        let c = Cluster::new(RtMethod::Compe, 3);
        let a = c.submit_update(SiteId(0), incr(10));
        let b = c.submit_update(SiteId(1), incr(5));
        c.commit(a);
        c.abort(b);
        c.quiesce();
        assert!(c.converged());
        assert_eq!(c.snapshot_of(SiteId(2))[&X], Value::Int(10));
    }

    #[test]
    fn strict_query_blocks_until_caught_up() {
        let c = Cluster::new(RtMethod::Commu, 4);
        for _ in 0..20 {
            c.submit_update(SiteId(0), incr(1));
        }
        let out = c.query_blocking(SiteId(3), &[X], EpsilonSpec::STRICT);
        assert!(out.admitted);
        assert_eq!(out.charged, 0);
        assert_eq!(out.values, vec![Value::Int(20)]);
    }

    #[test]
    fn unbounded_query_returns_immediately() {
        let c = Cluster::new(RtMethod::Commu, 2);
        c.submit_update(SiteId(0), incr(7));
        let out = c.query(SiteId(1), &[X], EpsilonSpec::UNBOUNDED);
        assert!(out.admitted, "unbounded budget always admits");
    }

    #[test]
    fn concurrent_submitters_from_many_threads() {
        let c = Arc::new(Cluster::new(RtMethod::Commu, 4));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    c.submit_update(SiteId(t % 4), incr(1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        c.quiesce();
        assert!(c.converged());
        assert_eq!(c.snapshot_of(SiteId(0))[&X], Value::Int(200));
    }

    #[test]
    fn has_applied_visibility() {
        let c = Cluster::new(RtMethod::Commu, 2);
        let et = c.submit_update(SiteId(0), incr(1));
        c.quiesce();
        assert!(c.has_applied(SiteId(0), et));
        assert!(c.has_applied(SiteId(1), et));
        assert!(!c.has_applied(SiteId(0), EtId(999)));
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut c = Cluster::new(RtMethod::Commu, 2);
        c.submit_update(SiteId(0), incr(1));
        c.quiesce();
        c.shutdown();
        c.shutdown();
    }
}

#[cfg(test)]
mod ritu_mv_tests {
    use super::*;

    const X: ObjectId = ObjectId(0);

    #[test]
    fn ritu_mv_converges_and_certifies_across_threads() {
        let c = Cluster::new(RtMethod::RituMv, 3);
        for i in 1..=20i64 {
            c.submit_blind_write(SiteId(i as u64 % 3), X, Value::Int(i));
        }
        c.quiesce();
        assert!(c.converged());
        assert_eq!(c.snapshot_of(SiteId(0))[&X], Value::Int(20));
        // VTNC certification is asynchronous: poll the strict read until
        // the horizon covers the newest version (bounded wait).
        for attempt in 0..10_000 {
            let out = c.query(SiteId(1), &[X], EpsilonSpec::STRICT);
            assert!(out.admitted, "RITU-MV strict reads never reject");
            if out.values == vec![Value::Int(20)] && out.charged == 0 {
                return;
            }
            if attempt % 100 == 99 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            std::thread::yield_now();
        }
        panic!("VTNC never certified the newest version");
    }

    #[test]
    fn ritu_mv_strict_reads_are_stable_not_torn() {
        let c = Cluster::new(RtMethod::RituMv, 4);
        for i in 1..=50i64 {
            c.submit_blind_write(SiteId(i as u64 % 4), X, Value::Int(i));
        }
        // Mid-flight strict reads serve *some* certified version — a
        // value that really was written (or zero) — never garbage.
        for _ in 0..50 {
            let out = c.query(SiteId(2), &[X], EpsilonSpec::STRICT);
            assert!(out.admitted);
            let v = out.values[0].as_int().unwrap();
            assert!((0..=50).contains(&v), "impossible value {v}");
        }
        c.quiesce();
        assert!(c.converged());
    }
}
