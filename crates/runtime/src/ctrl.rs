//! The pure control-plane core shared by the `esrd` daemon and the
//! `esr-model` checker.
//!
//! Everything the daemon does to protocol state — journal append +
//! replay, coordinator completion/VTNC/decision tracking, view-change
//! elections, wire-frame handling, boot recovery — is expressed here as
//! side-effect-free transitions: [`NodeCore::step`] consumes one
//! [`NodeEvent`] and returns the ordered list of [`Effect`]s it
//! implies. The daemon executes those effects against the real world
//! (fsync'd journal, durable TCP links, the esr-obs event ring); the
//! model checker in `crates/check` executes them against in-memory
//! queues and explores every interleaving. Because both run *this*
//! code, the daemon and the model cannot drift (DESIGN.md §14).
//!
//! ## The coordinator is elected, not fixed
//!
//! The coordinator of view `v` is site `v % sites`; view 0 puts it on
//! site 0, matching the pre-failover deployments. When the coordinator
//! stops answering heartbeats ([`Frame::Ping`] counted by
//! [`NodeEvent::Tick`]s — the core only ever sees tick *counts*, never
//! a clock, so the lint's determinism scope holds), any site starts a
//! Viewstamped-Replication-style change (DESIGN.md §15):
//! `StartViewChange(v+1)` → majority → `DoViewChange` carrying local
//! control evidence to the new coordinator → majority → `StartView`
//! broadcast with merged evidence. Installed views are journalled
//! durably via [`Effect::RecordView`] *before* any frame of the new
//! view is sent, and every site re-announces its applied ETs to the new
//! coordinator, so completion evidence survives the handoff.
//!
//! ## Effect ordering is part of the contract
//!
//! Effects must be executed in the order returned. In particular an
//! [`Effect::Journal`] always precedes the [`Effect::Send`]s that
//! announce its apply, and the daemon acknowledges an inbound envelope
//! only after every effect of its step has been executed — that is the
//! write-ahead discipline that makes a `kill -9` at any point safe:
//! whatever was acked is journalled, whatever wasn't acked will be
//! retransmitted by the peer's at-least-once queue. The same rule
//! covers [`Effect::RecordView`]: a view is durable before the first
//! send that presumes it.
//!
//! ## Seeded defects
//!
//! [`CtrlCanary`] enumerates the control-plane defect classes the
//! model checker must prove it can catch before a clean sweep counts
//! (the PR-2 canary discipline, applied to this layer). Production
//! daemons always run with `canary = None`; the variants exist so the
//! checker can validate its own oracles.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use esr_core::ids::{ClientId, EtId, SeqNo, SiteId, VersionTs};
use esr_core::op::Operation;
use esr_replica::mset::{MSet, OrderTag};
use esr_replica::span::{SpanRec, SpanStage};
use esr_replica::wire::Frame;

use crate::ckpt::CkptPayload;
use crate::state::{RtMethod, SiteState};

/// One input to a site's control-plane state machine.
#[derive(Debug, Clone)]
pub enum NodeEvent {
    /// A frame delivered on the peer plane (durable link).
    PeerFrame(Frame),
    /// A client submitted a fully-stamped update MSet at this site.
    ClientSubmit(MSet),
    /// A client issued a COMPE commit/abort decision at this site.
    ClientDecision {
        /// The decided ET.
        et: EtId,
        /// `true` = commit, `false` = abort (compensate).
        commit: bool,
    },
    /// One heartbeat interval elapsed. The daemon's timer thread is the
    /// only clock the protocol ever sees: the coordinator pings on each
    /// tick, a follower counts ticks since the last coordinator ping
    /// and starts a view change after [`SUSPECT_AFTER`] silent ones.
    /// The model checker never schedules `Tick` — it injects
    /// [`NodeEvent::SuspectCoordinator`] directly so elections are
    /// explored without modelling time.
    Tick,
    /// Declare the current coordinator failed and start a view change
    /// (the model checker's time-free stand-in for a run of silent
    /// ticks).
    SuspectCoordinator,
    /// Cut a checkpoint of this node's current state. `through` is the
    /// journal entry-id high-water mark the caller observed *before*
    /// taking the core lock (the daemon reads it from the journal file;
    /// the model, which has no entry ids, passes `None`). The cut
    /// itself is pure: it returns an [`Effect::Checkpoint`] carrying
    /// the payload, and the executor decides where it lands.
    Checkpoint {
        /// Journal high-water [`esr_storage::stable_queue::EntryId`]
        /// covered by this cut, or `None` when ids are not meaningful.
        through: Option<u64>,
    },
}

/// One side effect implied by a step, to be executed in order.
#[derive(Debug, Clone)]
pub enum Effect {
    /// Append this MSet to the durable write-ahead journal. Always
    /// precedes the `Send`s of the same step (write-ahead), and the
    /// step's inbound envelope may be acknowledged only after it is
    /// durable.
    Journal(MSet),
    /// Enqueue a frame on the durable at-least-once link to `to`.
    Send {
        /// Target site.
        to: SiteId,
        /// The frame to deliver.
        frame: Frame,
    },
    /// Durably record that this site installed view `v` (atomic
    /// file write in the daemon, a per-node register in the model).
    /// Ordered like `Journal`: it precedes every `Send` of the same
    /// step, so no frame of a view can be observed before the view
    /// itself would survive a crash.
    RecordView(u64),
    /// Record a structured observability event (esr-obs ring). The
    /// message grammar is part of the trace-certifier contract
    /// (`esr-check::certify`): apply events carry `v=<time>` /
    /// `seq=<n>` annotations, control events use the fixed
    /// `complete et N` / `vtnc -> time T` / `commit et N` /
    /// `abort et N` forms.
    Trace {
        /// Ring component tag (`apply`, `control`, `peer`, `replay`,
        /// `view`, `client`, `ckpt`).
        component: &'static str,
        /// Human- and certifier-readable event text.
        message: String,
    },
    /// Persist this checkpoint image (atomic snapshot install in the
    /// daemon, an in-memory register in the model). Boxed: a payload
    /// carries the whole replica image and would otherwise dominate the
    /// size of every `Effect`.
    Checkpoint(Box<CkptPayload>),
    /// Record one tracing span (esr-trace plane). Non-durable and
    /// purely observational: the daemon stamps it with wall-clock
    /// micros and appends it to the bounded span ring, the model
    /// checker discards it. Never carries protocol meaning — dropping
    /// every `Span` effect must leave behaviour unchanged.
    Span(SpanRec),
}

/// Seeded control-plane defects for checker self-tests. Production
/// daemons always run `None`; each variant plants one historical bug
/// class the `esr-model` explorer must expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlCanary {
    /// Recovery replays the journal but "forgets" to re-announce the
    /// recovered applies, so completion evidence that died with the
    /// previous incarnation's un-enqueued `Applied` report is lost
    /// forever and the cluster never settles.
    LostCompletionOnRestart,
    /// Recovery re-applies the final journal entry a second time
    /// (bypassing the ET idempotency guard, as if the replay cursor
    /// double-counted the tail record), silently diverging the replica.
    DoubleReplayedSuffix,
    /// The coordinator certifies a VTNC horizon after the *first*
    /// install report instead of waiting for all `n` sites, publishing
    /// a visibility horizon that uninstalled sites then violate.
    StaleVtncCert,
    /// A replayed/duplicate COMPE commit decision re-applies the
    /// decided update instead of being absorbed idempotently.
    DecisionReplayReapplies,
    /// The coordinator pins each peer's first-seen Hello epoch and
    /// treats any other epoch as a stale reordering, so a restarted
    /// incarnation (epoch+1) never receives the control snapshot it
    /// needs to recover lost completions.
    HelloEpochPinned,
    /// An ex-coordinator keeps its coordinator role when told about a
    /// newer view (`StartView` fails to demote it), leaving two live
    /// coordinators certifying concurrently — the split-brain the
    /// at-most-one-coordinator oracle must expose.
    SplitBrainCoordinator,
    /// The coordinator installing a new view silently marks every ET it
    /// has applied locally as already completed, so completions whose
    /// broadcast died with the old coordinator are never re-driven and
    /// the cluster never settles.
    HandoffDropsCompletions,
}

/// Which site coordinates view `view` in an `n`-site cluster. View 0
/// maps to site 0, preserving every pre-failover deployment.
pub fn coordinator_of(view: u64, sites: usize) -> SiteId {
    SiteId(view % sites as u64)
}

/// Heartbeat ticks a follower tolerates without a coordinator ping
/// before suspecting it (also the stall budget for an in-progress view
/// change before escalating to the next view). The daemon ticks every
/// ~250ms, so this is ~3s of silence — comfortably above link connect
/// backoff on a loaded CI machine, far below test quiesce budgets.
pub const SUSPECT_AFTER: u32 = 12;

/// The coordinator's completion/certification state (held by the
/// coordinator of the current view) — the pure core of what used to
/// live inside the daemon.
#[derive(Debug)]
pub struct CoordCore {
    n: usize,
    method: RtMethod,
    /// Per-ET apply evidence: which sites reported, and the max
    /// timestamped-write version seen (for VTNC).
    counts: BTreeMap<EtId, (HashSet<SiteId>, Option<VersionTs>)>,
    /// ETs whose completion already broadcast — late or duplicate
    /// `Applied` reports (redelivery, restart re-announcements) land
    /// here and are dropped.
    done: HashSet<EtId>,
    /// Broadcast log, replayed to recovering peers as a snapshot.
    completed_log: Vec<EtId>,
    decided: HashSet<EtId>,
    decisions_log: Vec<(EtId, bool)>,
    /// VTNC certification: fully-installed version times awaiting the
    /// dense-prefix scan (the version clock hands out 1, 2, 3, …).
    fully_installed: BTreeMap<u64, VersionTs>,
    next_time: u64,
    vtnc_max: Option<VersionTs>,
    /// First Hello epoch seen per site — only consulted by the
    /// [`CtrlCanary::HelloEpochPinned`] defect.
    greeted: BTreeMap<SiteId, u64>,
    canary: Option<CtrlCanary>,
}

impl CoordCore {
    /// A fresh coordinator for an `n`-site cluster.
    pub fn new(n: usize, method: RtMethod, canary: Option<CtrlCanary>) -> Self {
        Self {
            n,
            method,
            counts: BTreeMap::new(),
            done: HashSet::new(),
            completed_log: Vec::new(),
            decided: HashSet::new(),
            decisions_log: Vec::new(),
            fully_installed: BTreeMap::new(),
            next_time: 1,
            vtnc_max: None,
            greeted: BTreeMap::new(),
            canary,
        }
    }

    /// A coordinator seeded from merged `DoViewChange` evidence: every
    /// completion and decision the majority remembers is treated as
    /// already broadcast (the installer re-broadcasts them in its
    /// `StartView`), and the VTNC clock resumes *after* the merged
    /// horizon so the new coordinator never re-certifies below it.
    pub fn from_handoff(
        n: usize,
        method: RtMethod,
        canary: Option<CtrlCanary>,
        completed: Vec<EtId>,
        decisions: Vec<(EtId, bool)>,
        vtnc_max: Option<VersionTs>,
    ) -> Self {
        let mut core = Self::new(n, method, canary);
        core.done = completed.iter().copied().collect();
        core.completed_log = completed;
        core.decided = decisions.iter().map(|(et, _)| *et).collect();
        core.decisions_log = decisions;
        core.next_time = vtnc_max.map_or(1, |v| v.time + 1);
        core.vtnc_max = vtnc_max;
        core
    }

    /// Absorbs a completion broadcast observed from another (stale)
    /// coordinator, so this coordinator's snapshots carry it and a late
    /// `Applied` quorum for the same ET stays silent.
    fn note_external_complete(&mut self, et: EtId) {
        if self.done.insert(et) {
            self.completed_log.push(et);
            self.counts.remove(&et);
        }
    }

    /// Absorbs a decision broadcast observed from another (stale)
    /// coordinator (recorded, never re-broadcast).
    fn note_external_decision(&mut self, et: EtId, commit: bool) {
        if self.decided.insert(et) {
            self.decisions_log.push((et, commit));
        }
    }

    /// Absorbs a VTNC broadcast observed from another (stale)
    /// coordinator: the horizon and the dense-prefix clock both move
    /// past it so certification never runs backwards.
    fn note_external_vtnc(&mut self, ts: VersionTs) {
        self.vtnc_max = Some(self.vtnc_max.map_or(ts, |m| m.max(ts)));
        self.next_time = self.next_time.max(ts.time + 1);
    }

    /// Absorbs one apply report; returns the control broadcasts it
    /// triggers.
    pub fn on_applied(
        &mut self,
        site: SiteId,
        et: EtId,
        version: Option<VersionTs>,
    ) -> Vec<Frame> {
        if !self.method.tracks_completion() || self.done.contains(&et) {
            return Vec::new();
        }
        let e = self.counts.entry(et).or_insert_with(|| (HashSet::new(), None));
        e.0.insert(site);
        e.1 = e.1.max(version);
        // The StaleVtncCert defect certifies off the first report.
        let quorum = if self.canary == Some(CtrlCanary::StaleVtncCert)
            && self.method == RtMethod::RituMv
        {
            1
        } else {
            self.n
        };
        if e.0.len() < quorum {
            return Vec::new();
        }
        let version = self.counts.remove(&et).and_then(|(_, v)| v);
        self.done.insert(et);
        if self.method == RtMethod::RituMv {
            let Some(v) = version else { return Vec::new() };
            self.fully_installed.insert(v.time, v);
            let mut horizon = None;
            while let Some(v) = self.fully_installed.remove(&self.next_time) {
                horizon = Some(v);
                self.next_time += 1;
            }
            match horizon {
                Some(h) => {
                    self.vtnc_max = Some(self.vtnc_max.map_or(h, |m| m.max(h)));
                    vec![Frame::Vtnc { ts: h }]
                }
                None => Vec::new(),
            }
        } else {
            self.completed_log.push(et);
            vec![Frame::Complete { et }]
        }
    }

    /// Absorbs a COMPE decision; returns the broadcast (once per ET).
    pub fn on_decision(&mut self, et: EtId, commit: bool) -> Vec<Frame> {
        if !self.decided.insert(et) {
            return Vec::new();
        }
        self.decisions_log.push((et, commit));
        vec![Frame::Decision { et, commit }]
    }

    /// The recovery snapshot sent to a (re)connecting peer.
    pub fn control_state(&self) -> Frame {
        Frame::ControlSnapshot {
            completed: self.completed_log.clone(),
            decisions: self.decisions_log.clone(),
            vtnc_max: self.vtnc_max,
        }
    }

    /// The recovery snapshot as a `StartView` for view `view`: carries
    /// the same evidence as [`Self::control_state`] and additionally
    /// pins the receiver to this coordinator's view (a receiver at a
    /// lower view installs it; one at the same view absorbs the
    /// evidence idempotently).
    pub fn view_snapshot(&self, view: u64) -> Frame {
        Frame::StartView {
            view,
            completed: self.completed_log.clone(),
            decisions: self.decisions_log.clone(),
            vtnc_max: self.vtnc_max,
        }
    }

    /// Should this Hello be answered with a control snapshot? Always,
    /// except under the [`CtrlCanary::HelloEpochPinned`] defect, which
    /// pins the first epoch seen per site and treats every other epoch
    /// as a stale reordering.
    fn answer_hello(&mut self, site: SiteId, epoch: u64) -> bool {
        if self.canary != Some(CtrlCanary::HelloEpochPinned) {
            return true;
        }
        let pinned = *self.greeted.entry(site).or_insert(epoch);
        pinned == epoch
    }

    /// The furthest VTNC horizon certified so far.
    pub fn vtnc_horizon(&self) -> Option<VersionTs> {
        self.vtnc_max
    }

    /// ETs whose completion has been broadcast, in broadcast order.
    pub fn completed(&self) -> &[EtId] {
        &self.completed_log
    }

    /// COMPE decisions broadcast so far, in order.
    pub fn decisions(&self) -> &[(EtId, bool)] {
        &self.decisions_log
    }
}

/// The max timestamped-write version in an MSet (the VTNC install
/// evidence an `Applied` report carries).
pub fn max_version(mset: &MSet) -> Option<VersionTs> {
    mset.ops
        .iter()
        .filter_map(|o| match &o.op {
            Operation::TimestampedWrite(ts, _) => Some(*ts),
            _ => None,
        })
        .max()
}

/// The ORDUP global sequence number of an MSet, if it carries one.
fn seq_of(mset: &MSet) -> Option<u64> {
    match mset.order {
        OrderTag::Sequenced(s) => Some(s.0),
        _ => None,
    }
}

/// A synthetic ET id used by canaries that re-apply an update under a
/// fresh identity (bypassing per-ET idempotency guards), far outside
/// any id a workload would mint.
const CANARY_ET_BIT: u64 = 1 << 60;

/// The volatile coordinator knowledge a `DoViewChange` ships to the
/// coordinator-to-be: completions in first-seen order, COMPE decisions
/// in first-seen order, and the furthest VTNC horizon observed.
type HandoffEvidence = (Vec<EtId>, Vec<(EtId, bool)>, Option<VersionTs>);

/// One site's complete control-plane state machine: the replica state,
/// the journalled-ET set, the view-change election machine, and (on
/// the current view's coordinator) the coordinator core. All protocol
/// logic of the `esrd` daemon lives here, as pure transitions.
pub struct NodeCore {
    /// This site's id.
    pub site: SiteId,
    /// Total number of sites in the cluster.
    pub sites: usize,
    /// The replica control method in force.
    pub method: RtMethod,
    /// The replica state machine.
    pub state: SiteState,
    /// Completion/certification state; `Some` exactly when this site is
    /// `coordinator_of(view, sites)` (the split-brain canary breaks
    /// this invariant on purpose).
    pub coord: Option<CoordCore>,
    /// The currently installed view (durable via
    /// [`Effect::RecordView`]).
    pub view: u64,
    /// ETs already appended to the write-ahead journal (dedupe guard so
    /// redeliveries don't journal twice).
    journaled: BTreeSet<EtId>,
    /// Per-origin journalled counts (site raw id → count): the node's
    /// propagation frontier, reported in status and captured by
    /// checkpoints.
    frontier: BTreeMap<u64, u64>,
    /// ETs delivered but still held back (ORDUP sequence gaps), with
    /// the version/seq metadata their eventual apply trace needs: an
    /// in-order arrival can release a whole run of held successors,
    /// and each release must still be traced and reported.
    held: BTreeMap<EtId, (Option<VersionTs>, Option<u64>)>,
    /// COMPE decisions this site has seen, with the decided outcome —
    /// the idempotency guard for redelivered/re-broadcast decisions and
    /// this site's decision evidence for `DoViewChange`.
    decisions_seen: BTreeSet<EtId>,
    /// Decision evidence in first-seen order (what `DoViewChange`
    /// ships).
    decisions_order: Vec<(EtId, bool)>,
    /// Completions this site has seen (dedupe guard for re-broadcasts
    /// from a recovered or newly-elected coordinator).
    completed_seen: BTreeSet<EtId>,
    /// Completion evidence in first-seen order (what `DoViewChange`
    /// ships).
    completed_order: Vec<EtId>,
    /// The furthest VTNC horizon observed (evidence for `DoViewChange`;
    /// also suppresses re-tracing when a recovered coordinator
    /// re-certifies an old horizon).
    vtnc_seen: Option<VersionTs>,
    /// Every ET this site has applied, with its max install version —
    /// re-announced wholesale to a newly-elected (or freshly-recovered)
    /// coordinator so completion tracking survives the handoff.
    applied_log: BTreeMap<EtId, Option<VersionTs>>,
    /// Exactly-once client dedup: `(client, request seq) -> et`.
    /// Rebuilt from the journal on recovery, so a retried submit after
    /// a crash or failover returns the original ET instead of applying
    /// twice.
    client_table: BTreeMap<(u64, u64), EtId>,
    /// Ticks since the last ping from the current view's coordinator.
    missed_pings: u32,
    /// The view this site is currently electing (`0` = none pending;
    /// always `> view` when pending).
    vc_target: u64,
    /// Sites (including self) seen to start the pending view change.
    svc_from: BTreeSet<SiteId>,
    /// `DoViewChange` evidence collected by the pending view's
    /// coordinator-to-be, keyed by sender.
    dvc: BTreeMap<SiteId, HandoffEvidence>,
    /// Whether this site already sent its `DoViewChange` for
    /// `vc_target`.
    dvc_sent: bool,
    /// Ticks the pending view change has been stalled (escalates to
    /// `vc_target + 1` when the coordinator-to-be is dead too).
    vc_ticks: u32,
    /// Journalled MSets stashed for canary re-application (empty unless
    /// a canary that re-applies updates is armed).
    canary_msets: BTreeMap<EtId, MSet>,
    canary: Option<CtrlCanary>,
}

impl NodeCore {
    /// A fresh core around an already-prepared replica state (the
    /// caller enables audits / attaches metrics first so recovery
    /// replays are observable).
    pub fn fresh(
        state: SiteState,
        method: RtMethod,
        site: SiteId,
        sites: usize,
        canary: Option<CtrlCanary>,
    ) -> Self {
        Self::fresh_at_view(state, method, site, sites, canary, 0)
    }

    /// A fresh core that boots directly into `view` (recovery passes
    /// the durably recorded view here; a cold boot passes 0). The site
    /// assumes the coordinator role exactly when the view maps to it.
    pub fn fresh_at_view(
        state: SiteState,
        method: RtMethod,
        site: SiteId,
        sites: usize,
        canary: Option<CtrlCanary>,
        view: u64,
    ) -> Self {
        let coord = (coordinator_of(view, sites) == site)
            .then(|| CoordCore::new(sites, method, canary));
        Self {
            site,
            sites,
            method,
            state,
            coord,
            view,
            journaled: BTreeSet::new(),
            frontier: BTreeMap::new(),
            held: BTreeMap::new(),
            decisions_seen: BTreeSet::new(),
            decisions_order: Vec::new(),
            completed_seen: BTreeSet::new(),
            completed_order: Vec::new(),
            vtnc_seen: None,
            applied_log: BTreeMap::new(),
            client_table: BTreeMap::new(),
            missed_pings: 0,
            vc_target: 0,
            svc_from: BTreeSet::new(),
            dvc: BTreeMap::new(),
            dvc_sent: false,
            vc_ticks: 0,
            canary_msets: BTreeMap::new(),
            canary,
        }
    }

    /// Boot-time recovery: replays the write-ahead journal into the
    /// fresh core, then re-announces every recovered apply (the
    /// previous incarnation may have died before its `Applied` report
    /// was durably enqueued; the coordinator deduplicates). Returns the
    /// core plus the effects to execute — the same path for the real
    /// daemon and the model's crash transitions.
    pub fn recover(
        state: SiteState,
        method: RtMethod,
        site: SiteId,
        sites: usize,
        canary: Option<CtrlCanary>,
        view: u64,
        journal: Vec<MSet>,
    ) -> (Self, Vec<Effect>) {
        let mut core = Self::fresh_at_view(state, method, site, sites, canary, view);
        let mut effects = Vec::new();
        let mut recovered: Vec<(EtId, Option<VersionTs>)> = Vec::new();
        let last = journal.last().cloned();
        for mset in journal {
            let et = mset.et;
            let version = max_version(&mset);
            let seq = seq_of(&mset);
            if core.journaled.insert(et) {
                *core.frontier.entry(mset.origin.raw()).or_insert(0) += 1;
            }
            if let Some((cid, cseq)) = mset.client {
                core.client_table.insert((cid.raw(), cseq), et);
            }
            if core.canary == Some(CtrlCanary::DecisionReplayReapplies) {
                core.canary_msets.insert(et, mset.clone());
            }
            core.state.deliver(mset);
            // This entry, plus any held predecessors it unblocked
            // (the journal records acceptance order, which for ORDUP
            // can run ahead of the sequence).
            let mut newly = Vec::new();
            if core.state.has_applied(et) {
                newly.push((et, version, seq));
            } else {
                core.held.insert(et, (version, seq));
            }
            newly.extend(core.take_unblocked());
            for (et, version, seq) in newly {
                effects.push(Effect::Trace {
                    component: "replay",
                    message: apply_message(et, version, seq),
                });
                // The in-memory span ring died with the previous
                // incarnation; the replay span is the durable trace of
                // this site's apply, so post-crash timelines still
                // stitch.
                effects.push(Effect::Span(
                    SpanRec::new(SpanStage::Replay, et)
                        .with_version(version)
                        .with_gseq(seq.map(SeqNo)),
                ));
                recovered.push((et, version));
            }
        }
        // Defect: the replay cursor double-counts the tail record,
        // re-applying it outside the ET idempotency guard.
        if core.canary == Some(CtrlCanary::DoubleReplayedSuffix) {
            if let Some(mut dup) = last {
                dup.et = EtId(dup.et.0 | CANARY_ET_BIT);
                core.state.deliver(dup);
            }
        }
        // Defect: recovery "forgets" the re-announcement pass.
        if core.canary != Some(CtrlCanary::LostCompletionOnRestart) {
            for (et, version) in recovered {
                let announce = core.report_applied(et, version);
                effects.extend(announce);
            }
        }
        (core, effects)
    }

    /// Consumes one event, mutates the core, and returns the ordered
    /// effects to execute. This is the daemon's whole protocol brain.
    pub fn step(&mut self, event: NodeEvent) -> Vec<Effect> {
        match event {
            NodeEvent::PeerFrame(frame) => self.on_peer_frame(frame),
            NodeEvent::ClientSubmit(mset) => {
                // Exactly-once: a retried submit (same client, same
                // request seq) is answered from the client table — no
                // journal write, no fan-out, no double apply. The
                // daemon replies with the cached ET, byte-identical to
                // the original SubmitOk.
                if let Some((cid, cseq)) = mset.client {
                    if let Some(et) = self.cached_et(cid, cseq) {
                        return vec![Effect::Trace {
                            component: "client",
                            message: format!(
                                "duplicate submit client {} seq {cseq} -> et {}",
                                cid.raw(),
                                et.0
                            ),
                        }];
                    }
                }
                // Fan the update out to every peer over the durable
                // links, then absorb it locally (journal + apply +
                // report). The submit span marks the trace root; one
                // enqueue span per peer marks each link hand-off.
                let t0 = mset.t0;
                let mut effects: Vec<Effect> = vec![Effect::Span(
                    SpanRec::new(SpanStage::Submit, mset.et)
                        .with_gseq(seq_of(&mset).map(SeqNo))
                        .with_t0(t0),
                )];
                for to in self.peers().collect::<Vec<_>>() {
                    effects.push(Effect::Span(
                        SpanRec::new(SpanStage::Enqueue, mset.et)
                            .to_peer(to)
                            .with_t0(t0),
                    ));
                    effects.push(Effect::Send {
                        to,
                        frame: Frame::MSet(mset.clone()),
                    });
                }
                effects.extend(self.accept_mset(mset));
                effects
            }
            NodeEvent::ClientDecision { et, commit } => self.decide(et, commit),
            NodeEvent::Tick => self.on_tick(),
            NodeEvent::SuspectCoordinator => {
                let next = self.view.max(self.vc_target) + 1;
                self.start_view_change(next)
            }
            NodeEvent::Checkpoint { through } => {
                let payload = self.ckpt_payload(through);
                vec![
                    Effect::Trace {
                        component: "ckpt",
                        message: format!("cut covered={}", payload.covered),
                    },
                    Effect::Checkpoint(Box::new(payload)),
                ]
            }
        }
    }

    /// Captures a consistent checkpoint of this node. Must be called
    /// with the core otherwise quiescent (the daemon holds the core
    /// lock; the model steps nodes one at a time), so no effect is
    /// half-applied across the image.
    pub fn ckpt_payload(&self, through: Option<u64>) -> CkptPayload {
        CkptPayload {
            covered: self.journaled.len() as u64,
            covered_through: through,
            view: self.view,
            frontier: self.frontier.iter().map(|(s, c)| (*s, *c)).collect(),
            journaled: self.journaled.iter().copied().collect(),
            client_table: self
                .client_table
                .iter()
                .map(|(&(c, s), &et)| (c, s, et))
                .collect(),
            applied_log: self.applied_log.iter().map(|(&et, &v)| (et, v)).collect(),
            completed: self.completed_order.clone(),
            decisions: self.decisions_order.clone(),
            vtnc: self.vtnc_seen,
            held: self
                .held
                .iter()
                .map(|(&et, &(v, s))| (et, v, s))
                .collect(),
            site: self.state.to_ckpt(),
        }
    }

    /// Boot-time restore from a checkpoint image plus the journal
    /// *suffix* past its cut — the fast path that makes log truncation
    /// safe. Returns `None` when the image's method disagrees with the
    /// configuration (the daemon then falls back to full replay).
    ///
    /// The suffix may over-approximate: entries at or before the cut
    /// are absorbed by the restored `journaled` set and the method's
    /// per-ET idempotency guards, so a caller that cannot tell exactly
    /// where the cut fell (e.g. a catch-up image whose entry ids refer
    /// to a peer's journal) can safely replay its whole local journal.
    ///
    /// `view` is the view to boot into — the daemon passes
    /// `max(durable view register, payload.view)` so a view recorded
    /// after the cut is not lost.
    pub fn restore(
        method: RtMethod,
        site: SiteId,
        sites: usize,
        canary: Option<CtrlCanary>,
        view: u64,
        payload: CkptPayload,
        suffix: Vec<MSet>,
    ) -> Option<(Self, Vec<Effect>)> {
        if payload.method() != method {
            return None;
        }
        let state = SiteState::from_ckpt(site, payload.site);
        let mut core = Self::fresh_at_view(state, method, site, sites, canary, view);
        core.journaled = payload.journaled.into_iter().collect();
        core.frontier = payload.frontier.into_iter().collect();
        core.client_table = payload
            .client_table
            .into_iter()
            .map(|(c, s, et)| ((c, s), et))
            .collect();
        core.applied_log = payload.applied_log.into_iter().collect();
        core.completed_seen = payload.completed.iter().copied().collect();
        core.completed_order = payload.completed;
        core.decisions_seen = payload.decisions.iter().map(|(et, _)| *et).collect();
        core.decisions_order = payload.decisions;
        core.vtnc_seen = payload.vtnc;
        core.held = payload
            .held
            .into_iter()
            .map(|(et, v, s)| (et, (v, s)))
            .collect();
        let mut effects = vec![Effect::Trace {
            component: "ckpt",
            message: format!("restore covered={} view={}", payload.covered, core.view),
        }];
        let mut recovered: Vec<(EtId, Option<VersionTs>)> = Vec::new();
        for mset in suffix {
            let et = mset.et;
            let version = max_version(&mset);
            let seq = seq_of(&mset);
            if core.journaled.insert(et) {
                *core.frontier.entry(mset.origin.raw()).or_insert(0) += 1;
            }
            if let Some((cid, cseq)) = mset.client {
                core.client_table.insert((cid.raw(), cseq), et);
            }
            let before = core.state.has_applied(et);
            core.state.deliver(mset);
            let mut newly = Vec::new();
            if !before && core.state.has_applied(et) {
                newly.push((et, version, seq));
            } else if !core.state.has_applied(et) {
                core.held.insert(et, (version, seq));
            }
            newly.extend(core.take_unblocked());
            for (et, version, seq) in newly {
                effects.push(Effect::Trace {
                    component: "replay",
                    message: apply_message(et, version, seq),
                });
                effects.push(Effect::Span(
                    SpanRec::new(SpanStage::Replay, et)
                        .with_version(version)
                        .with_gseq(seq.map(SeqNo)),
                ));
                recovered.push((et, version));
            }
        }
        // Re-announce *everything* applied (image + suffix), exactly as
        // a full recovery would: the coordinator's evidence may have
        // died with the previous incarnation, and it deduplicates.
        if core.method.tracks_completion() {
            for (et, version) in recovered {
                core.applied_log.entry(et).or_insert(version);
            }
        }
        let applied: Vec<(EtId, Option<VersionTs>)> =
            core.applied_log.iter().map(|(&et, &v)| (et, v)).collect();
        for (et, version) in applied {
            effects.extend(core.report_applied(et, version));
        }
        Some((core, effects))
    }

    /// The cached ET for a client request, if this site has journalled
    /// it (the exactly-once read path the daemon consults before
    /// dispatching a submit).
    pub fn cached_et(&self, client: ClientId, seq: u64) -> Option<EtId> {
        self.client_table.get(&(client.raw(), seq)).copied()
    }

    /// One heartbeat interval. Coordinators ping; followers count
    /// silence and eventually suspect; a stalled election escalates
    /// past a dead coordinator-to-be.
    fn on_tick(&mut self) -> Vec<Effect> {
        if self.vc_target > self.view {
            // Election in progress: give it SUSPECT_AFTER ticks, then
            // assume the coordinator-to-be is down as well and move on.
            self.vc_ticks += 1;
            if self.vc_ticks >= SUSPECT_AFTER {
                self.vc_ticks = 0;
                let next = self.vc_target + 1;
                return self.start_view_change(next);
            }
            return Vec::new();
        }
        if self.coord.is_some() {
            return self
                .peers()
                .map(|to| Effect::Send {
                    to,
                    frame: Frame::Ping {
                        view: self.view,
                        from: self.site,
                    },
                })
                .collect();
        }
        self.missed_pings += 1;
        if self.missed_pings >= SUSPECT_AFTER {
            self.missed_pings = 0;
            let next = self.view + 1;
            return self.start_view_change(next);
        }
        Vec::new()
    }

    /// Simple majority of the cluster (self-inclusive).
    fn majority(&self) -> usize {
        self.sites / 2 + 1
    }

    /// Begins (or joins) the election of view `target`. Idempotent per
    /// target; a higher target supersedes a pending lower one.
    fn start_view_change(&mut self, target: u64) -> Vec<Effect> {
        if target <= self.view {
            return Vec::new();
        }
        if target > self.vc_target {
            self.vc_target = target;
            self.svc_from.clear();
            self.dvc.clear();
            self.dvc_sent = false;
            self.vc_ticks = 0;
        }
        let mut effects = Vec::new();
        if self.svc_from.insert(self.site) {
            effects.push(Effect::Trace {
                component: "view",
                message: format!("start view change -> view {target}"),
            });
            for to in self.peers() {
                effects.push(Effect::Send {
                    to,
                    frame: Frame::StartViewChange {
                        view: target,
                        from: self.site,
                    },
                });
            }
        }
        effects.extend(self.maybe_send_dvc());
        effects
    }

    /// Once a majority has started the pending view change, ship this
    /// site's control evidence to the new view's coordinator (or file
    /// it directly when that coordinator is us).
    fn maybe_send_dvc(&mut self) -> Vec<Effect> {
        if self.dvc_sent
            || self.vc_target <= self.view
            || self.svc_from.len() < self.majority()
        {
            return Vec::new();
        }
        self.dvc_sent = true;
        let target = self.vc_target;
        let evidence = (
            self.completed_order.clone(),
            self.decisions_order.clone(),
            self.vtnc_seen,
        );
        let next_coord = coordinator_of(target, self.sites);
        if next_coord == self.site {
            self.dvc.insert(self.site, evidence);
            self.maybe_install_view()
        } else {
            vec![Effect::Send {
                to: next_coord,
                frame: Frame::DoViewChange {
                    view: target,
                    from: self.site,
                    completed: evidence.0,
                    decisions: evidence.1,
                    vtnc_max: evidence.2,
                },
            }]
        }
    }

    /// Installs `vc_target` as its coordinator once a majority's
    /// `DoViewChange` evidence is in: merge the evidence, seed a
    /// [`CoordCore`] from it, durably record the view, tell everyone,
    /// and feed this site's own applies into the new coordinator.
    fn maybe_install_view(&mut self) -> Vec<Effect> {
        if self.vc_target <= self.view || self.dvc.len() < self.majority() {
            return Vec::new();
        }
        let w = self.vc_target;
        // Merge: completions and decisions are unions keyed by ET (any
        // single site's log is a prefix-consistent view of the old
        // coordinator's broadcast order), the VTNC horizon is the max.
        let mut completed: Vec<EtId> = Vec::new();
        let mut decisions: Vec<(EtId, bool)> = Vec::new();
        let mut vtnc_max: Option<VersionTs> = None;
        for (c, d, v) in self.dvc.values() {
            for et in c {
                if !completed.contains(et) {
                    completed.push(*et);
                }
            }
            for (et, commit) in d {
                if !decisions.iter().any(|(e, _)| e == et) {
                    decisions.push((*et, *commit));
                }
            }
            vtnc_max = vtnc_max.max(*v);
        }
        self.view = w;
        self.clear_election();
        let mut coord = CoordCore::from_handoff(
            self.sites,
            self.method,
            self.canary,
            completed.clone(),
            decisions.clone(),
            vtnc_max,
        );
        // Defect: the installer marks its own applied-but-uncompleted
        // ETs as done, so their completions are never re-driven.
        if self.canary == Some(CtrlCanary::HandoffDropsCompletions) {
            for et in self.applied_log.keys() {
                coord.done.insert(*et);
            }
        }
        self.coord = Some(coord);
        let mut effects = vec![
            Effect::RecordView(w),
            Effect::Trace {
                component: "view",
                message: format!("install view {w} as coordinator"),
            },
        ];
        effects.extend(self.absorb_evidence(&completed, &decisions, vtnc_max));
        for to in self.peers() {
            effects.push(Effect::Send {
                to,
                frame: Frame::StartView {
                    view: w,
                    completed: completed.clone(),
                    decisions: decisions.clone(),
                    vtnc_max,
                },
            });
        }
        // Count our own applies toward completion in the new view (the
        // peers re-announce theirs on receiving StartView).
        let applied: Vec<(EtId, Option<VersionTs>)> =
            self.applied_log.iter().map(|(et, v)| (*et, *v)).collect();
        for (et, version) in applied {
            effects.extend(self.report_applied(et, version));
        }
        effects
    }

    /// Resets all pending-election state (on install or supersession).
    fn clear_election(&mut self) {
        self.vc_target = 0;
        self.svc_from.clear();
        self.dvc.clear();
        self.dvc_sent = false;
        self.vc_ticks = 0;
        self.missed_pings = 0;
    }

    /// Applies snapshot/handoff evidence idempotently (dedup guards
    /// absorb anything this site has already seen).
    fn absorb_evidence(
        &mut self,
        completed: &[EtId],
        decisions: &[(EtId, bool)],
        vtnc_max: Option<VersionTs>,
    ) -> Vec<Effect> {
        let mut effects = Vec::new();
        for et in completed {
            effects.extend(self.apply_complete(*et));
        }
        for (et, commit) in decisions {
            effects.extend(self.apply_decision(*et, *commit));
        }
        if let Some(v) = vtnc_max {
            effects.extend(self.apply_vtnc(v));
        }
        effects
    }

    fn on_peer_frame(&mut self, frame: Frame) -> Vec<Effect> {
        match frame {
            Frame::Hello { site, epoch } => {
                let mut effects = vec![Effect::Trace {
                    component: "peer",
                    message: format!("hello from site {} epoch {epoch}", site.raw()),
                }];
                if let Some(coord) = &mut self.coord {
                    // Coordinator: answer every peer (re)handshake with
                    // the view snapshot — idempotent replay that covers
                    // a recovering site whose queue files were lost.
                    if coord.answer_hello(site, epoch) {
                        effects.push(Effect::Send {
                            to: site,
                            frame: coord.view_snapshot(self.view),
                        });
                    }
                } else if site == coordinator_of(self.view, self.sites) {
                    // Our coordinator rebooted: its in-memory evidence
                    // died with it, so re-announce everything this site
                    // knows — applies (its `done` set absorbs what was
                    // already completed) and decisions (absorbed
                    // idempotently, then rebroadcast).
                    if self.method.tracks_completion() {
                        for (et, version) in &self.applied_log {
                            effects.push(Effect::Send {
                                to: site,
                                frame: Frame::Applied {
                                    site: self.site,
                                    et: *et,
                                    version: *version,
                                },
                            });
                        }
                    }
                    for &(et, commit) in &self.decisions_order {
                        effects.push(Effect::Send {
                            to: site,
                            frame: Frame::ForwardDecision { et, commit },
                        });
                    }
                }
                effects
            }
            Frame::MSet(mset) => self.accept_mset(mset),
            Frame::Applied { site, et, version } => {
                let broadcasts = match &mut self.coord {
                    Some(c) => c.on_applied(site, et, version),
                    None => Vec::new(),
                };
                self.broadcast_all(broadcasts)
            }
            Frame::Complete { et } => {
                // A completion minted by another coordinator (an older
                // view's broadcast catching up with us). If we hold
                // the role and this is news, our followers may have
                // missed the original broadcast (a crash can consume
                // it, and the old view's snapshots are now stale), so
                // relay it — receivers dedup.
                let news = !self.completed_seen.contains(&et);
                if let Some(c) = &mut self.coord {
                    c.note_external_complete(et);
                }
                let mut effects = self.apply_complete(et);
                if news && self.coord.is_some() {
                    effects.extend(self.relay(Frame::Complete { et }));
                }
                effects
            }
            Frame::Vtnc { ts } => {
                let news = self.vtnc_seen.is_none_or(|m| ts > m);
                if let Some(c) = &mut self.coord {
                    c.note_external_vtnc(ts);
                }
                let mut effects = self.apply_vtnc(ts);
                if news && self.coord.is_some() {
                    effects.extend(self.relay(Frame::Vtnc { ts }));
                }
                effects
            }
            Frame::Decision { et, commit } => {
                // The coordinator's broadcast. If *we* hold the role
                // (their view was older), record it and relay it for
                // the same reason as `Complete` above.
                let news = !self.decisions_order.iter().any(|(d, _)| *d == et);
                if let Some(c) = &mut self.coord {
                    c.note_external_decision(et, commit);
                }
                let mut effects = self.apply_decision(et, commit);
                if news && self.coord.is_some() {
                    effects.extend(self.relay(Frame::Decision { et, commit }));
                }
                effects
            }
            Frame::ForwardDecision { et, commit } => {
                if self.coord.is_some() {
                    self.decide(et, commit)
                } else {
                    // Not (or no longer) the coordinator: re-forward
                    // toward the current view's coordinator so a
                    // decision in flight across a failover is never
                    // stranded in a dead site's inbound queue.
                    vec![Effect::Send {
                        to: coordinator_of(self.view, self.sites),
                        frame: Frame::ForwardDecision { et, commit },
                    }]
                }
            }
            Frame::ControlSnapshot {
                completed,
                decisions,
                vtnc_max,
            } => self.absorb_evidence(&completed, &decisions, vtnc_max),
            Frame::Ping { view, from } => {
                if view == self.view {
                    if from == coordinator_of(self.view, self.sites) {
                        self.missed_pings = 0;
                    }
                    Vec::new()
                } else if view < self.view {
                    // A stale coordinator is still pinging: answer with
                    // our view's state so it demotes itself without
                    // waiting for the durable StartView to drain.
                    vec![Effect::Send {
                        to: from,
                        frame: Frame::StartView {
                            view: self.view,
                            completed: self.completed_order.clone(),
                            decisions: self.decisions_order.clone(),
                            vtnc_max: self.vtnc_seen,
                        },
                    }]
                } else {
                    // A view ahead of ours: its durable StartView is
                    // already on the way.
                    Vec::new()
                }
            }
            Frame::StartViewChange { view, from } => {
                if view <= self.view {
                    return Vec::new();
                }
                // Join the election (no-op if already in it), then
                // count the sender's vote.
                let mut effects = self.start_view_change(view);
                if view == self.vc_target {
                    self.svc_from.insert(from);
                    effects.extend(self.maybe_send_dvc());
                }
                effects
            }
            Frame::DoViewChange {
                view,
                from,
                completed,
                decisions,
                vtnc_max,
            } => {
                if view <= self.view || coordinator_of(view, self.sites) != self.site {
                    return Vec::new();
                }
                // A DoViewChange proves a majority started this view
                // change; adopt it even if our own SVC count lags.
                if view > self.vc_target {
                    self.vc_target = view;
                    self.svc_from.clear();
                    self.dvc.clear();
                    self.dvc_sent = false;
                    self.vc_ticks = 0;
                }
                if view == self.vc_target {
                    self.dvc.insert(from, (completed, decisions, vtnc_max));
                    if !self.dvc.contains_key(&self.site) {
                        let own = (
                            self.completed_order.clone(),
                            self.decisions_order.clone(),
                            self.vtnc_seen,
                        );
                        self.dvc.insert(self.site, own);
                    }
                    self.dvc_sent = true;
                    return self.maybe_install_view();
                }
                Vec::new()
            }
            Frame::StartView {
                view,
                completed,
                decisions,
                vtnc_max,
            } => {
                if view < self.view {
                    return Vec::new();
                }
                let install = view > self.view;
                let mut effects = Vec::new();
                if install {
                    self.view = view;
                    self.clear_election();
                    // Defect: the ex-coordinator keeps certifying.
                    if self.canary != Some(CtrlCanary::SplitBrainCoordinator) {
                        self.coord = None;
                    }
                    effects.push(Effect::RecordView(view));
                    effects.push(Effect::Trace {
                        component: "view",
                        message: format!(
                            "install view {view}, coordinator site {}",
                            coordinator_of(view, self.sites).raw()
                        ),
                    });
                }
                effects.extend(self.absorb_evidence(&completed, &decisions, vtnc_max));
                if install && coordinator_of(view, self.sites) != self.site {
                    // Re-announce local knowledge to the new
                    // coordinator: its evidence counts start from the
                    // merged DVC majority, and a minority site may hold
                    // applies or decisions that majority never saw.
                    let to = coordinator_of(view, self.sites);
                    if self.method.tracks_completion() {
                        for (et, version) in &self.applied_log {
                            effects.push(Effect::Send {
                                to,
                                frame: Frame::Applied {
                                    site: self.site,
                                    et: *et,
                                    version: *version,
                                },
                            });
                        }
                    }
                    for &(et, commit) in &self.decisions_order {
                        effects.push(Effect::Send {
                            to,
                            frame: Frame::ForwardDecision { et, commit },
                        });
                    }
                }
                effects
            }
            // Client-plane or transport-layer frames have no business
            // on a peer link; ignore them.
            _ => Vec::new(),
        }
    }

    /// Journal (write-ahead), apply, and report the apply — the one
    /// path every update takes, whether it arrived from a client
    /// (origin) or a peer link (propagation).
    fn accept_mset(&mut self, mset: MSet) -> Vec<Effect> {
        let et = mset.et;
        let version = max_version(&mset);
        let seq = seq_of(&mset);
        let t0 = mset.t0;
        let mut effects = vec![Effect::Span(
            SpanRec::new(SpanStage::Deliver, et)
                .with_gseq(seq.map(SeqNo))
                .with_t0(t0),
        )];
        if self.journaled.insert(et) {
            *self.frontier.entry(mset.origin.raw()).or_insert(0) += 1;
            if let Some((cid, cseq)) = mset.client {
                self.client_table.insert((cid.raw(), cseq), et);
            }
            effects.push(Effect::Journal(mset.clone()));
        }
        if self.canary == Some(CtrlCanary::DecisionReplayReapplies) {
            self.canary_msets.insert(et, mset.clone());
        }
        let before = self.state.has_applied(et);
        self.state.deliver(mset);
        let newly_applied = !before && self.state.has_applied(et);
        if !newly_applied && !self.state.has_applied(et) {
            self.held.insert(et, (version, seq));
        }
        effects.push(Effect::Trace {
            component: "apply",
            message: if newly_applied {
                apply_message(et, version, seq)
            } else {
                format!("et {} held/duplicate", et.0)
            },
        });
        if newly_applied {
            effects.push(Effect::Span(
                SpanRec::new(SpanStage::Apply, et)
                    .with_version(version)
                    .with_gseq(seq.map(SeqNo))
                    .with_t0(t0),
            ));
        } else if !self.state.has_applied(et) {
            // Parked behind a sequence gap (duplicates get no span —
            // their lifecycle was already recorded the first time).
            effects.push(Effect::Span(
                SpanRec::new(SpanStage::Held, et).with_gseq(seq.map(SeqNo)),
            ));
        }
        if newly_applied {
            let announce = self.report_applied(et, version);
            effects.extend(announce);
        }
        // An in-order arrival may have released held successors: they
        // are applied *now*, so they are traced and reported now.
        for (et, version, seq) in self.take_unblocked() {
            effects.push(Effect::Trace {
                component: "apply",
                message: apply_message(et, version, seq),
            });
            effects.push(Effect::Span(
                SpanRec::new(SpanStage::Apply, et)
                    .with_version(version)
                    .with_gseq(seq.map(SeqNo)),
            ));
            effects.extend(self.report_applied(et, version));
        }
        effects
    }

    /// Drains every held ET the last delivery unblocked, in sequence
    /// order (a run of held successors applies lowest-seq first).
    fn take_unblocked(&mut self) -> Vec<(EtId, Option<VersionTs>, Option<u64>)> {
        let released: Vec<EtId> = self
            .held
            .keys()
            .filter(|et| self.state.has_applied(**et))
            .copied()
            .collect();
        let mut out: Vec<(EtId, Option<VersionTs>, Option<u64>)> = released
            .into_iter()
            .filter_map(|et| {
                let (version, seq) = self.held.remove(&et)?;
                Some((et, version, seq))
            })
            .collect();
        out.sort_by_key(|(et, _, seq)| (*seq, *et));
        out
    }

    /// Routes apply evidence to the current view's coordinator (inline
    /// when we *are* the coordinator, over the durable link otherwise),
    /// recording it in the applied log for handoff re-announcement.
    fn report_applied(&mut self, et: EtId, version: Option<VersionTs>) -> Vec<Effect> {
        if !self.method.tracks_completion() {
            return Vec::new();
        }
        self.applied_log.insert(et, version);
        match &mut self.coord {
            Some(c) => {
                let broadcasts = c.on_applied(self.site, et, version);
                self.broadcast_all(broadcasts)
            }
            None => vec![Effect::Send {
                to: coordinator_of(self.view, self.sites),
                frame: Frame::Applied {
                    site: self.site,
                    et,
                    version,
                },
            }],
        }
    }

    /// A COMPE commit/abort decision. The coordinator logs and
    /// broadcasts it; any other site forwards it toward the current
    /// view's coordinator over its durable link (the broadcast will
    /// come back around; a receiver that is no longer the coordinator
    /// re-forwards it).
    fn decide(&mut self, et: EtId, commit: bool) -> Vec<Effect> {
        match &mut self.coord {
            Some(c) => {
                let broadcasts = c.on_decision(et, commit);
                self.broadcast_all(broadcasts)
            }
            None => vec![Effect::Send {
                to: coordinator_of(self.view, self.sites),
                frame: Frame::ForwardDecision { et, commit },
            }],
        }
    }

    fn broadcast_all(&mut self, frames: Vec<Frame>) -> Vec<Effect> {
        let mut effects = Vec::new();
        for frame in frames {
            effects.extend(self.broadcast_control(frame));
        }
        effects
    }

    /// Applies a control broadcast locally and enqueues it to every
    /// peer (durable, so a currently-dead site receives it on revival).
    fn broadcast_control(&mut self, frame: Frame) -> Vec<Effect> {
        // The `*Cert` span marks the certification moment itself —
        // coordinator-only, and only when the broadcast is news (a
        // re-driven log is absorbed silently below, so it gets no
        // second cert span either).
        let mut effects = match frame {
            Frame::Complete { et } => {
                let mut v = self.apply_complete(et);
                if !v.is_empty() {
                    v.insert(
                        0,
                        Effect::Span(SpanRec::new(SpanStage::CompleteCert, et)),
                    );
                }
                v
            }
            Frame::Vtnc { ts } => {
                let mut v = self.apply_vtnc(ts);
                if !v.is_empty() {
                    v.insert(0, Effect::Span(SpanRec::vtnc(SpanStage::VtncCert, ts)));
                }
                v
            }
            Frame::Decision { et, commit } => {
                let mut v = self.apply_decision(et, commit);
                if !v.is_empty() {
                    v.insert(
                        0,
                        Effect::Span(
                            SpanRec::new(SpanStage::DecisionCert, et).with_commit(commit),
                        ),
                    );
                }
                v
            }
            _ => Vec::new(),
        };
        for to in self.peers() {
            effects.push(Effect::Send {
                to,
                frame: frame.clone(),
            });
        }
        effects
    }

    fn apply_complete(&mut self, et: EtId) -> Vec<Effect> {
        // Re-broadcasts (a recovered or newly-elected coordinator
        // re-driving its log, snapshot replay) are absorbed silently:
        // a duplicate `complete` trace would itself be a certifier
        // finding.
        if !self.completed_seen.insert(et) {
            return Vec::new();
        }
        self.completed_order.push(et);
        self.state.complete(et);
        vec![
            Effect::Span(SpanRec::new(SpanStage::Complete, et)),
            Effect::Trace {
                component: "control",
                message: format!("complete et {}", et.0),
            },
        ]
    }

    fn apply_vtnc(&mut self, ts: VersionTs) -> Vec<Effect> {
        // The state-machine horizon is monotone regardless; only an
        // actual advance is traced, so a recovered coordinator
        // re-certifying old horizons can't make a site's trace run
        // backwards.
        let advanced = self.vtnc_seen.is_none_or(|m| ts > m);
        self.state.advance_vtnc(ts);
        if !advanced {
            return Vec::new();
        }
        self.vtnc_seen = Some(ts);
        vec![
            Effect::Span(SpanRec::vtnc(SpanStage::Vtnc, ts)),
            Effect::Trace {
                component: "control",
                message: format!("vtnc -> time {}", ts.time),
            },
        ]
    }

    fn apply_decision(&mut self, et: EtId, commit: bool) -> Vec<Effect> {
        let duplicate = !self.decisions_seen.insert(et);
        if !duplicate {
            self.decisions_order.push((et, commit));
        }
        if commit {
            self.state.commit(et);
        } else {
            self.state.abort(et);
        }
        // Defect: a replayed/duplicate commit decision re-applies the
        // decided update under a fresh identity instead of being
        // absorbed idempotently.
        if duplicate
            && commit
            && self.canary == Some(CtrlCanary::DecisionReplayReapplies)
        {
            if let Some(mut dup) = self.canary_msets.get(&et).cloned() {
                dup.et = EtId(dup.et.0 | CANARY_ET_BIT);
                self.state.deliver(dup);
                self.state.commit(EtId(et.0 | CANARY_ET_BIT));
            }
        }
        if duplicate {
            return Vec::new();
        }
        vec![
            Effect::Span(SpanRec::new(SpanStage::Decision, et).with_commit(commit)),
            Effect::Trace {
                component: "control",
                message: format!("{} et {}", if commit { "commit" } else { "abort" }, et.0),
            },
        ]
    }

    /// Enqueues `frame` to every peer without applying it locally —
    /// the relay path, where the local apply already happened.
    fn relay(&self, frame: Frame) -> Vec<Effect> {
        self.peers()
            .map(|to| Effect::Send {
                to,
                frame: frame.clone(),
            })
            .collect()
    }

    /// Every other site, in id order.
    fn peers(&self) -> impl Iterator<Item = SiteId> + '_ {
        let me = self.site;
        (0..self.sites as u64).map(SiteId).filter(move |s| *s != me)
    }

    /// Number of distinct ETs journalled at this site.
    pub fn journaled_count(&self) -> u64 {
        self.journaled.len() as u64
    }

    /// Per-origin journalled counts `(site, count)`, in site order —
    /// the propagation frontier the status surface reports.
    pub fn frontier(&self) -> Vec<(u64, u64)> {
        self.frontier.iter().map(|(s, c)| (*s, *c)).collect()
    }
}

/// The certifier-facing apply message: `et N applied[ v=T][ seq=S]`.
fn apply_message(et: EtId, version: Option<VersionTs>, seq: Option<u64>) -> String {
    let mut m = format!("et {} applied", et.0);
    if let Some(v) = version {
        m.push_str(&format!(" v={}", v.time));
    }
    if let Some(s) = seq {
        m.push_str(&format!(" seq={s}"));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::op::ObjectOp;
    use esr_core::ids::{ObjectId, SeqNo};

    fn incr(et: u64, origin: u64) -> MSet {
        MSet::new(
            EtId(et),
            SiteId(origin),
            vec![ObjectOp::new(ObjectId(1), Operation::Incr(1))],
        )
    }

    fn sends(effects: &[Effect]) -> Vec<(SiteId, &Frame)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { to, frame } => Some((*to, frame)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn submit_journals_before_reporting() {
        let mut core = NodeCore::fresh(
            SiteState::new(RtMethod::Commu, SiteId(1)),
            RtMethod::Commu,
            SiteId(1),
            3,
            None,
        );
        let effects = core.step(NodeEvent::ClientSubmit(incr(7, 1)));
        let journal_at = effects
            .iter()
            .position(|e| matches!(e, Effect::Journal(_)));
        let applied_at = effects.iter().position(
            |e| matches!(e, Effect::Send { frame: Frame::Applied { .. }, .. }),
        );
        assert!(journal_at.is_some() && applied_at.is_some());
        assert!(journal_at < applied_at, "write-ahead order violated");
        // Fan-out reaches both peers.
        let msets = sends(&effects)
            .iter()
            .filter(|(_, f)| matches!(f, Frame::MSet(_)))
            .count();
        assert_eq!(msets, 2);
    }

    #[test]
    fn ordup_unblock_traces_every_released_apply() {
        // seq=1 arrives first: held. seq=0 then applies AND releases
        // seq=1 — both applies must be traced in sequence order.
        let mut core = NodeCore::fresh(
            SiteState::new(RtMethod::Ordup, SiteId(1)),
            RtMethod::Ordup,
            SiteId(1),
            3,
            None,
        );
        let early = incr(2, 0).sequenced(SeqNo(1));
        let held = core.step(NodeEvent::PeerFrame(Frame::MSet(early)));
        assert!(held.iter().any(|e| matches!(
            e,
            Effect::Trace { message, .. } if message.contains("held")
        )));
        let late = incr(1, 0).sequenced(SeqNo(0));
        let effects = core.step(NodeEvent::PeerFrame(Frame::MSet(late)));
        let applies: Vec<&String> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::Trace { component: "apply", message } if message.contains("applied") => {
                    Some(message)
                }
                _ => None,
            })
            .collect();
        assert_eq!(applies.len(), 2, "release must trace both applies: {effects:?}");
        assert!(applies[0].contains("seq=0") && applies[1].contains("seq=1"));
        assert!(core.state.has_applied(EtId(1)) && core.state.has_applied(EtId(2)));
    }

    #[test]
    fn duplicate_delivery_is_absorbed() {
        let mut core = NodeCore::fresh(
            SiteState::new(RtMethod::Commu, SiteId(1)),
            RtMethod::Commu,
            SiteId(1),
            3,
            None,
        );
        let first = core.step(NodeEvent::PeerFrame(Frame::MSet(incr(7, 0))));
        assert!(first.iter().any(|e| matches!(e, Effect::Journal(_))));
        let second = core.step(NodeEvent::PeerFrame(Frame::MSet(incr(7, 0))));
        assert!(
            !second.iter().any(|e| matches!(
                e,
                Effect::Journal(_) | Effect::Send { .. }
            )),
            "redelivery must neither re-journal nor re-announce"
        );
    }

    #[test]
    fn coordinator_completes_after_all_sites() {
        let mut core = NodeCore::fresh(
            SiteState::new(RtMethod::Commu, SiteId(0)),
            RtMethod::Commu,
            SiteId(0),
            3,
            None,
        );
        // Local apply counts as site 0's evidence.
        let e0 = core.step(NodeEvent::PeerFrame(Frame::MSet(incr(7, 1))));
        assert!(sends(&e0).is_empty());
        let e1 = core.step(NodeEvent::PeerFrame(Frame::Applied {
            site: SiteId(1),
            et: EtId(7),
            version: None,
        }));
        assert!(sends(&e1).is_empty());
        let e2 = core.step(NodeEvent::PeerFrame(Frame::Applied {
            site: SiteId(2),
            et: EtId(7),
            version: None,
        }));
        let s = sends(&e2);
        assert_eq!(s.len(), 2, "complete broadcast to both peers");
        assert!(s
            .iter()
            .all(|(_, f)| matches!(f, Frame::Complete { et } if *et == EtId(7))));
    }

    #[test]
    fn recovery_reannounces_applies() {
        let (core, effects) = NodeCore::recover(
            SiteState::new(RtMethod::Commu, SiteId(2)),
            RtMethod::Commu,
            SiteId(2),
            3,
            None,
            0,
            vec![incr(1, 0), incr(2, 1)],
        );
        assert!(core.state.has_applied(EtId(1)) && core.state.has_applied(EtId(2)));
        let announced: Vec<_> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send {
                    to,
                    frame: Frame::Applied { et, .. },
                } => Some((*to, *et)),
                _ => None,
            })
            .collect();
        assert_eq!(announced, vec![(SiteId(0), EtId(1)), (SiteId(0), EtId(2))]);
    }

    #[test]
    fn recovery_reannounces_to_the_durable_views_coordinator() {
        let (core, effects) = NodeCore::recover(
            SiteState::new(RtMethod::Commu, SiteId(2)),
            RtMethod::Commu,
            SiteId(2),
            3,
            None,
            1,
            vec![incr(1, 0)],
        );
        assert_eq!(core.view, 1);
        assert!(core.coord.is_none(), "view 1 coordinator is site 1");
        let announced: Vec<_> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send {
                    to,
                    frame: Frame::Applied { et, .. },
                } => Some((*to, *et)),
                _ => None,
            })
            .collect();
        assert_eq!(announced, vec![(SiteId(1), EtId(1))]);
    }

    #[test]
    fn lost_completion_canary_suppresses_reannounce() {
        let (_, effects) = NodeCore::recover(
            SiteState::new(RtMethod::Commu, SiteId(2)),
            RtMethod::Commu,
            SiteId(2),
            3,
            Some(CtrlCanary::LostCompletionOnRestart),
            0,
            vec![incr(1, 0)],
        );
        assert!(!effects
            .iter()
            .any(|e| matches!(e, Effect::Send { .. })));
    }

    /// Synchronously drains every `Send` effect into the target core
    /// until the network is quiet, collecting all effects produced.
    fn pump(cores: &mut [NodeCore], initial: Vec<Effect>) -> Vec<Effect> {
        let mut all = Vec::new();
        let mut queue: std::collections::VecDeque<(SiteId, Frame)> =
            std::collections::VecDeque::new();
        let enqueue = |effects: Vec<Effect>,
                       queue: &mut std::collections::VecDeque<(SiteId, Frame)>,
                       all: &mut Vec<Effect>| {
            for e in effects {
                if let Effect::Send { to, frame } = &e {
                    queue.push_back((*to, frame.clone()));
                }
                all.push(e);
            }
        };
        enqueue(initial, &mut queue, &mut all);
        while let Some((to, frame)) = queue.pop_front() {
            let effects = cores[to.raw() as usize].step(NodeEvent::PeerFrame(frame));
            enqueue(effects, &mut queue, &mut all);
        }
        all
    }

    fn cluster3(method: RtMethod) -> Vec<NodeCore> {
        (0..3u64)
            .map(|i| {
                NodeCore::fresh(
                    SiteState::new(method, SiteId(i)),
                    method,
                    SiteId(i),
                    3,
                    None,
                )
            })
            .collect()
    }

    #[test]
    fn suspicion_elects_the_next_site_and_demotes_the_old_coordinator() {
        let mut cores = cluster3(RtMethod::Commu);
        let kick = cores[1].step(NodeEvent::SuspectCoordinator);
        assert!(kick.iter().any(|e| matches!(
            e,
            Effect::Send { frame: Frame::StartViewChange { view: 1, .. }, .. }
        )));
        pump(&mut cores, kick);
        for core in &cores {
            assert_eq!(core.view, 1);
        }
        assert!(cores[0].coord.is_none(), "old coordinator must demote");
        assert!(cores[1].coord.is_some(), "view 1 maps to site 1");
        assert!(cores[2].coord.is_none());
    }

    #[test]
    fn view_is_durable_before_any_send_of_the_new_view() {
        let mut cores = cluster3(RtMethod::Commu);
        let kick = cores[1].step(NodeEvent::SuspectCoordinator);
        let all = pump(&mut cores, kick);
        // Every effect run that contains a RecordView must place it
        // before the first Send (per-step ordering is preserved by
        // pump's per-step extend).
        let record_at = all
            .iter()
            .position(|e| matches!(e, Effect::RecordView(1)))
            .expect("the installer records view 1");
        let start_view_at = all
            .iter()
            .position(|e| {
                matches!(e, Effect::Send { frame: Frame::StartView { view: 1, .. }, .. })
            })
            .expect("the installer announces view 1");
        assert!(record_at < start_view_at, "RecordView must precede StartView");
    }

    #[test]
    fn completions_survive_a_coordinator_handoff() {
        let mut cores = cluster3(RtMethod::Commu);
        let submit = cores[1].step(NodeEvent::ClientSubmit(incr(7, 1)));
        pump(&mut cores, submit);
        for core in &cores {
            assert!(core.completed_seen.contains(&EtId(7)), "pre-handoff complete");
        }
        // A false suspicion (everyone alive) hands the role to site 1.
        let kick = cores[2].step(NodeEvent::SuspectCoordinator);
        let during = pump(&mut cores, kick);
        // The handoff re-drives evidence but must not re-trace the
        // completion anywhere.
        assert!(
            !during.iter().any(|e| matches!(
                e,
                Effect::Trace { message, .. } if message == "complete et 7"
            )),
            "handoff re-traced an already-completed ET: {during:?}"
        );
        // The new coordinator's snapshot carries the old completion,
        // and new submits still complete (evidence tracking moved).
        assert!(cores[1].coord.as_ref().unwrap().completed().contains(&EtId(7)));
        let submit = cores[2].step(NodeEvent::ClientSubmit(incr(8, 2)));
        let all = pump(&mut cores, submit);
        assert!(
            all.iter().any(|e| matches!(
                e,
                Effect::Trace { message, .. } if message == "complete et 8"
            )),
            "post-handoff submit never completed: {all:?}"
        );
    }

    #[test]
    fn pings_reset_suspicion_and_silence_triggers_it() {
        let mut cores = cluster3(RtMethod::Commu);
        // Coordinator ticks emit pings to both peers.
        let pings = cores[0].step(NodeEvent::Tick);
        assert_eq!(
            pings
                .iter()
                .filter(|e| matches!(e, Effect::Send { frame: Frame::Ping { .. }, .. }))
                .count(),
            2
        );
        // A follower fed a ping right before the threshold never
        // suspects; one starved of pings does.
        for _ in 0..SUSPECT_AFTER - 1 {
            assert!(cores[1].step(NodeEvent::Tick).is_empty());
        }
        cores[1].step(NodeEvent::PeerFrame(Frame::Ping {
            view: 0,
            from: SiteId(0),
        }));
        for _ in 0..SUSPECT_AFTER - 1 {
            assert!(cores[1].step(NodeEvent::Tick).is_empty());
        }
        let kicked = cores[1].step(NodeEvent::Tick);
        assert!(kicked.iter().any(|e| matches!(
            e,
            Effect::Send { frame: Frame::StartViewChange { view: 1, .. }, .. }
        )));
    }

    #[test]
    fn client_table_dedups_retried_submits() {
        let mut core = NodeCore::fresh(
            SiteState::new(RtMethod::Commu, SiteId(1)),
            RtMethod::Commu,
            SiteId(1),
            3,
            None,
        );
        let m = incr(7, 1).from_client(ClientId(9), 3);
        let first = core.step(NodeEvent::ClientSubmit(m.clone()));
        assert!(first.iter().any(|e| matches!(e, Effect::Journal(_))));
        let retry = core.step(NodeEvent::ClientSubmit(m));
        assert!(
            !retry.iter().any(|e| matches!(
                e,
                Effect::Journal(_) | Effect::Send { .. }
            )),
            "a retried submit must neither re-journal nor re-fan-out"
        );
        assert_eq!(core.cached_et(ClientId(9), 3), Some(EtId(7)));
        assert_eq!(core.cached_et(ClientId(9), 4), None);
    }

    #[test]
    fn checkpoint_restore_plus_suffix_matches_full_recovery() {
        let journal: Vec<MSet> = (1..=4u64).map(|i| incr(i, i % 3)).collect();
        // Run the first two entries through a live core and cut there.
        let mut live = NodeCore::fresh(
            SiteState::new(RtMethod::Commu, SiteId(2)),
            RtMethod::Commu,
            SiteId(2),
            3,
            None,
        );
        for m in &journal[..2] {
            live.step(NodeEvent::PeerFrame(Frame::MSet(m.clone())));
        }
        let effects = live.step(NodeEvent::Checkpoint { through: Some(2) });
        let payload = effects
            .iter()
            .find_map(|e| match e {
                Effect::Checkpoint(p) => Some((**p).clone()),
                _ => None,
            })
            .expect("cut produces a payload");
        assert_eq!(payload.covered, 2);
        assert_eq!(payload.covered_through, Some(2));
        // The image survives its wire codec.
        let bytes = crate::ckpt::encode_payload(&payload);
        let payload = crate::ckpt::decode_payload(&bytes).expect("payload decodes");
        // Restore + suffix ≡ full recovery.
        let (restored, _) = NodeCore::restore(
            RtMethod::Commu,
            SiteId(2),
            3,
            None,
            0,
            payload,
            journal[2..].to_vec(),
        )
        .expect("method matches");
        let (full, _) = NodeCore::recover(
            SiteState::new(RtMethod::Commu, SiteId(2)),
            RtMethod::Commu,
            SiteId(2),
            3,
            None,
            0,
            journal.clone(),
        );
        assert_eq!(restored.state.snapshot(), full.state.snapshot());
        assert_eq!(restored.journaled_count(), full.journaled_count());
        assert_eq!(restored.frontier(), full.frontier());
        // Over-approximated suffix (the whole journal) is absorbed.
        let payload2 = full.ckpt_payload(None);
        let (re2, _) = NodeCore::restore(
            RtMethod::Commu,
            SiteId(2),
            3,
            None,
            0,
            payload2,
            journal,
        )
        .expect("method matches");
        assert_eq!(re2.state.snapshot(), full.state.snapshot());
        assert_eq!(re2.journaled_count(), full.journaled_count());
    }

    #[test]
    fn restore_rejects_a_method_mismatch() {
        let core = NodeCore::fresh(
            SiteState::new(RtMethod::Commu, SiteId(0)),
            RtMethod::Commu,
            SiteId(0),
            3,
            None,
        );
        let payload = core.ckpt_payload(None);
        assert!(NodeCore::restore(
            RtMethod::Ordup,
            SiteId(0),
            3,
            None,
            0,
            payload,
            vec![],
        )
        .is_none());
    }

    #[test]
    fn client_table_is_rebuilt_from_the_journal() {
        let (core, _) = NodeCore::recover(
            SiteState::new(RtMethod::Commu, SiteId(1)),
            RtMethod::Commu,
            SiteId(1),
            3,
            None,
            0,
            vec![incr(7, 1).from_client(ClientId(9), 3)],
        );
        assert_eq!(core.cached_et(ClientId(9), 3), Some(EtId(7)));
    }
}
