//! The pure control-plane core shared by the `esrd` daemon and the
//! `esr-model` checker.
//!
//! Everything the daemon does to protocol state — journal append +
//! replay, site-0 completion/VTNC/decision coordination, wire-frame
//! handling, boot recovery — is expressed here as side-effect-free
//! transitions: [`NodeCore::step`] consumes one [`NodeEvent`] and
//! returns the ordered list of [`Effect`]s it implies. The daemon
//! executes those effects against the real world (fsync'd journal,
//! durable TCP links, the esr-obs event ring); the model checker in
//! `crates/check` executes them against in-memory queues and explores
//! every interleaving. Because both run *this* code, the daemon and the
//! model cannot drift (DESIGN.md §14).
//!
//! ## Effect ordering is part of the contract
//!
//! Effects must be executed in the order returned. In particular an
//! [`Effect::Journal`] always precedes the [`Effect::Send`]s that
//! announce its apply, and the daemon acknowledges an inbound envelope
//! only after every effect of its step has been executed — that is the
//! write-ahead discipline that makes a `kill -9` at any point safe:
//! whatever was acked is journalled, whatever wasn't acked will be
//! retransmitted by the peer's at-least-once queue.
//!
//! ## Seeded defects
//!
//! [`CtrlCanary`] enumerates five control-plane defect classes the
//! model checker must prove it can catch before a clean sweep counts
//! (the PR-2 canary discipline, applied to this layer). Production
//! daemons always run with `canary = None`; the variants exist so the
//! checker can validate its own oracles.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use esr_core::ids::{EtId, SiteId, VersionTs};
use esr_core::op::Operation;
use esr_replica::mset::{MSet, OrderTag};
use esr_replica::wire::Frame;

use crate::state::{RtMethod, SiteState};

/// One input to a site's control-plane state machine.
#[derive(Debug, Clone)]
pub enum NodeEvent {
    /// A frame delivered on the peer plane (durable link).
    PeerFrame(Frame),
    /// A client submitted a fully-stamped update MSet at this site.
    ClientSubmit(MSet),
    /// A client issued a COMPE commit/abort decision at this site.
    ClientDecision {
        /// The decided ET.
        et: EtId,
        /// `true` = commit, `false` = abort (compensate).
        commit: bool,
    },
}

/// One side effect implied by a step, to be executed in order.
#[derive(Debug, Clone)]
pub enum Effect {
    /// Append this MSet to the durable write-ahead journal. Always
    /// precedes the `Send`s of the same step (write-ahead), and the
    /// step's inbound envelope may be acknowledged only after it is
    /// durable.
    Journal(MSet),
    /// Enqueue a frame on the durable at-least-once link to `to`.
    Send {
        /// Target site.
        to: SiteId,
        /// The frame to deliver.
        frame: Frame,
    },
    /// Record a structured observability event (esr-obs ring). The
    /// message grammar is part of the trace-certifier contract
    /// (`esr-check::certify`): apply events carry `v=<time>` /
    /// `seq=<n>` annotations, control events use the fixed
    /// `complete et N` / `vtnc -> time T` / `commit et N` /
    /// `abort et N` forms.
    Trace {
        /// Ring component tag (`apply`, `control`, `peer`, `replay`).
        component: &'static str,
        /// Human- and certifier-readable event text.
        message: String,
    },
}

/// Seeded control-plane defects for checker self-tests. Production
/// daemons always run `None`; each variant plants one historical bug
/// class the `esr-model` explorer must expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlCanary {
    /// Recovery replays the journal but "forgets" to re-announce the
    /// recovered applies, so completion evidence that died with the
    /// previous incarnation's un-enqueued `Applied` report is lost
    /// forever and the cluster never settles.
    LostCompletionOnRestart,
    /// Recovery re-applies the final journal entry a second time
    /// (bypassing the ET idempotency guard, as if the replay cursor
    /// double-counted the tail record), silently diverging the replica.
    DoubleReplayedSuffix,
    /// The coordinator certifies a VTNC horizon after the *first*
    /// install report instead of waiting for all `n` sites, publishing
    /// a visibility horizon that uninstalled sites then violate.
    StaleVtncCert,
    /// A replayed/duplicate COMPE commit decision re-applies the
    /// decided update instead of being absorbed idempotently.
    DecisionReplayReapplies,
    /// The coordinator pins each peer's first-seen Hello epoch and
    /// treats any other epoch as a stale reordering, so a restarted
    /// incarnation (epoch+1) never receives the control snapshot it
    /// needs to recover lost completions.
    HelloEpochPinned,
}

/// The coordinator's completion/certification state (site 0 only) —
/// the pure core of what used to live inside the daemon.
#[derive(Debug)]
pub struct CoordCore {
    n: usize,
    method: RtMethod,
    /// Per-ET apply evidence: which sites reported, and the max
    /// timestamped-write version seen (for VTNC).
    counts: BTreeMap<EtId, (HashSet<SiteId>, Option<VersionTs>)>,
    /// ETs whose completion already broadcast — late or duplicate
    /// `Applied` reports (redelivery, restart re-announcements) land
    /// here and are dropped.
    done: HashSet<EtId>,
    /// Broadcast log, replayed to recovering peers as a snapshot.
    completed_log: Vec<EtId>,
    decided: HashSet<EtId>,
    decisions_log: Vec<(EtId, bool)>,
    /// VTNC certification: fully-installed version times awaiting the
    /// dense-prefix scan (the version clock hands out 1, 2, 3, …).
    fully_installed: BTreeMap<u64, VersionTs>,
    next_time: u64,
    vtnc_max: Option<VersionTs>,
    /// First Hello epoch seen per site — only consulted by the
    /// [`CtrlCanary::HelloEpochPinned`] defect.
    greeted: BTreeMap<SiteId, u64>,
    canary: Option<CtrlCanary>,
}

impl CoordCore {
    /// A fresh coordinator for an `n`-site cluster.
    pub fn new(n: usize, method: RtMethod, canary: Option<CtrlCanary>) -> Self {
        Self {
            n,
            method,
            counts: BTreeMap::new(),
            done: HashSet::new(),
            completed_log: Vec::new(),
            decided: HashSet::new(),
            decisions_log: Vec::new(),
            fully_installed: BTreeMap::new(),
            next_time: 1,
            vtnc_max: None,
            greeted: BTreeMap::new(),
            canary,
        }
    }

    /// Absorbs one apply report; returns the control broadcasts it
    /// triggers.
    pub fn on_applied(
        &mut self,
        site: SiteId,
        et: EtId,
        version: Option<VersionTs>,
    ) -> Vec<Frame> {
        if !self.method.tracks_completion() || self.done.contains(&et) {
            return Vec::new();
        }
        let e = self.counts.entry(et).or_insert_with(|| (HashSet::new(), None));
        e.0.insert(site);
        e.1 = e.1.max(version);
        // The StaleVtncCert defect certifies off the first report.
        let quorum = if self.canary == Some(CtrlCanary::StaleVtncCert)
            && self.method == RtMethod::RituMv
        {
            1
        } else {
            self.n
        };
        if e.0.len() < quorum {
            return Vec::new();
        }
        let version = self.counts.remove(&et).and_then(|(_, v)| v);
        self.done.insert(et);
        if self.method == RtMethod::RituMv {
            let Some(v) = version else { return Vec::new() };
            self.fully_installed.insert(v.time, v);
            let mut horizon = None;
            while let Some(v) = self.fully_installed.remove(&self.next_time) {
                horizon = Some(v);
                self.next_time += 1;
            }
            match horizon {
                Some(h) => {
                    self.vtnc_max = Some(self.vtnc_max.map_or(h, |m| m.max(h)));
                    vec![Frame::Vtnc { ts: h }]
                }
                None => Vec::new(),
            }
        } else {
            self.completed_log.push(et);
            vec![Frame::Complete { et }]
        }
    }

    /// Absorbs a COMPE decision; returns the broadcast (once per ET).
    pub fn on_decision(&mut self, et: EtId, commit: bool) -> Vec<Frame> {
        if !self.decided.insert(et) {
            return Vec::new();
        }
        self.decisions_log.push((et, commit));
        vec![Frame::Decision { et, commit }]
    }

    /// The recovery snapshot sent to a (re)connecting peer.
    pub fn control_state(&self) -> Frame {
        Frame::ControlSnapshot {
            completed: self.completed_log.clone(),
            decisions: self.decisions_log.clone(),
            vtnc_max: self.vtnc_max,
        }
    }

    /// Should this Hello be answered with a control snapshot? Always,
    /// except under the [`CtrlCanary::HelloEpochPinned`] defect, which
    /// pins the first epoch seen per site and treats every other epoch
    /// as a stale reordering.
    fn answer_hello(&mut self, site: SiteId, epoch: u64) -> bool {
        if self.canary != Some(CtrlCanary::HelloEpochPinned) {
            return true;
        }
        let pinned = *self.greeted.entry(site).or_insert(epoch);
        pinned == epoch
    }

    /// The furthest VTNC horizon certified so far.
    pub fn vtnc_horizon(&self) -> Option<VersionTs> {
        self.vtnc_max
    }

    /// ETs whose completion has been broadcast, in broadcast order.
    pub fn completed(&self) -> &[EtId] {
        &self.completed_log
    }

    /// COMPE decisions broadcast so far, in order.
    pub fn decisions(&self) -> &[(EtId, bool)] {
        &self.decisions_log
    }
}

/// The max timestamped-write version in an MSet (the VTNC install
/// evidence an `Applied` report carries).
pub fn max_version(mset: &MSet) -> Option<VersionTs> {
    mset.ops
        .iter()
        .filter_map(|o| match &o.op {
            Operation::TimestampedWrite(ts, _) => Some(*ts),
            _ => None,
        })
        .max()
}

/// The ORDUP global sequence number of an MSet, if it carries one.
fn seq_of(mset: &MSet) -> Option<u64> {
    match mset.order {
        OrderTag::Sequenced(s) => Some(s.0),
        _ => None,
    }
}

/// A synthetic ET id used by canaries that re-apply an update under a
/// fresh identity (bypassing per-ET idempotency guards), far outside
/// any id a workload would mint.
const CANARY_ET_BIT: u64 = 1 << 60;

/// One site's complete control-plane state machine: the replica state,
/// the journalled-ET set, and (on site 0) the coordinator. All protocol
/// logic of the `esrd` daemon lives here, as pure transitions.
pub struct NodeCore {
    /// This site's id (site 0 is the coordinator).
    pub site: SiteId,
    /// Total number of sites in the cluster.
    pub sites: usize,
    /// The replica control method in force.
    pub method: RtMethod,
    /// The replica state machine.
    pub state: SiteState,
    /// Completion/certification state; `Some` only on site 0.
    pub coord: Option<CoordCore>,
    /// ETs already appended to the write-ahead journal (dedupe guard so
    /// redeliveries don't journal twice).
    journaled: BTreeSet<EtId>,
    /// ETs delivered but still held back (ORDUP sequence gaps), with
    /// the version/seq metadata their eventual apply trace needs: an
    /// in-order arrival can release a whole run of held successors,
    /// and each release must still be traced and reported.
    held: BTreeMap<EtId, (Option<VersionTs>, Option<u64>)>,
    /// COMPE decisions this site has already processed — only consulted
    /// by the [`CtrlCanary::DecisionReplayReapplies`] defect.
    decisions_seen: BTreeSet<EtId>,
    /// Journalled MSets stashed for canary re-application (empty unless
    /// a canary that re-applies updates is armed).
    canary_msets: BTreeMap<EtId, MSet>,
    canary: Option<CtrlCanary>,
}

impl NodeCore {
    /// A fresh core around an already-prepared replica state (the
    /// caller enables audits / attaches metrics first so recovery
    /// replays are observable).
    pub fn fresh(
        state: SiteState,
        method: RtMethod,
        site: SiteId,
        sites: usize,
        canary: Option<CtrlCanary>,
    ) -> Self {
        let coord =
            (site == SiteId(0)).then(|| CoordCore::new(sites, method, canary));
        Self {
            site,
            sites,
            method,
            state,
            coord,
            journaled: BTreeSet::new(),
            held: BTreeMap::new(),
            decisions_seen: BTreeSet::new(),
            canary_msets: BTreeMap::new(),
            canary,
        }
    }

    /// Boot-time recovery: replays the write-ahead journal into the
    /// fresh core, then re-announces every recovered apply (the
    /// previous incarnation may have died before its `Applied` report
    /// was durably enqueued; the coordinator deduplicates). Returns the
    /// core plus the effects to execute — the same path for the real
    /// daemon and the model's crash transitions.
    pub fn recover(
        state: SiteState,
        method: RtMethod,
        site: SiteId,
        sites: usize,
        canary: Option<CtrlCanary>,
        journal: Vec<MSet>,
    ) -> (Self, Vec<Effect>) {
        let mut core = Self::fresh(state, method, site, sites, canary);
        let mut effects = Vec::new();
        let mut recovered: Vec<(EtId, Option<VersionTs>)> = Vec::new();
        let last = journal.last().cloned();
        for mset in journal {
            let et = mset.et;
            let version = max_version(&mset);
            let seq = seq_of(&mset);
            core.journaled.insert(et);
            if core.canary == Some(CtrlCanary::DecisionReplayReapplies) {
                core.canary_msets.insert(et, mset.clone());
            }
            core.state.deliver(mset);
            // This entry, plus any held predecessors it unblocked
            // (the journal records acceptance order, which for ORDUP
            // can run ahead of the sequence).
            let mut newly = Vec::new();
            if core.state.has_applied(et) {
                newly.push((et, version, seq));
            } else {
                core.held.insert(et, (version, seq));
            }
            newly.extend(core.take_unblocked());
            for (et, version, seq) in newly {
                effects.push(Effect::Trace {
                    component: "replay",
                    message: apply_message(et, version, seq),
                });
                recovered.push((et, version));
            }
        }
        // Defect: the replay cursor double-counts the tail record,
        // re-applying it outside the ET idempotency guard.
        if core.canary == Some(CtrlCanary::DoubleReplayedSuffix) {
            if let Some(mut dup) = last {
                dup.et = EtId(dup.et.0 | CANARY_ET_BIT);
                core.state.deliver(dup);
            }
        }
        // Defect: recovery "forgets" the re-announcement pass.
        if core.canary != Some(CtrlCanary::LostCompletionOnRestart) {
            for (et, version) in recovered {
                let announce = core.report_applied(et, version);
                effects.extend(announce);
            }
        }
        (core, effects)
    }

    /// Consumes one event, mutates the core, and returns the ordered
    /// effects to execute. This is the daemon's whole protocol brain.
    pub fn step(&mut self, event: NodeEvent) -> Vec<Effect> {
        match event {
            NodeEvent::PeerFrame(frame) => self.on_peer_frame(frame),
            NodeEvent::ClientSubmit(mset) => {
                // Fan the update out to every peer over the durable
                // links, then absorb it locally (journal + apply +
                // report).
                let mut effects: Vec<Effect> = self
                    .peers()
                    .map(|to| Effect::Send {
                        to,
                        frame: Frame::MSet(mset.clone()),
                    })
                    .collect();
                effects.extend(self.accept_mset(mset));
                effects
            }
            NodeEvent::ClientDecision { et, commit } => self.decide(et, commit),
        }
    }

    fn on_peer_frame(&mut self, frame: Frame) -> Vec<Effect> {
        match frame {
            Frame::Hello { site, epoch } => {
                let mut effects = vec![Effect::Trace {
                    component: "peer",
                    message: format!("hello from site {} epoch {epoch}", site.raw()),
                }];
                // Coordinator: answer every peer (re)handshake with the
                // control snapshot — idempotent replay that covers a
                // recovering site whose queue files were lost.
                if let Some(coord) = &mut self.coord {
                    if coord.answer_hello(site, epoch) {
                        effects.push(Effect::Send {
                            to: site,
                            frame: coord.control_state(),
                        });
                    }
                }
                effects
            }
            Frame::MSet(mset) => self.accept_mset(mset),
            Frame::Applied { site, et, version } => {
                let broadcasts = match &mut self.coord {
                    Some(c) => c.on_applied(site, et, version),
                    None => Vec::new(),
                };
                self.broadcast_all(broadcasts)
            }
            Frame::Complete { et } => self.apply_complete(et),
            Frame::Vtnc { ts } => self.apply_vtnc(ts),
            Frame::Decision { et, commit } => {
                if self.coord.is_some() {
                    // A peer forwarded a client's decision to us.
                    self.decide(et, commit)
                } else {
                    // The coordinator's broadcast: apply it here (calling
                    // `decide` would bounce it straight back).
                    self.apply_decision(et, commit)
                }
            }
            Frame::ControlSnapshot {
                completed,
                decisions,
                vtnc_max,
            } => {
                let mut effects = Vec::new();
                for et in completed {
                    effects.extend(self.apply_complete(et));
                }
                for (et, commit) in decisions {
                    effects.extend(self.apply_decision(et, commit));
                }
                if let Some(v) = vtnc_max {
                    effects.extend(self.apply_vtnc(v));
                }
                effects
            }
            // Client-plane or transport-layer frames have no business
            // on a peer link; ignore them.
            _ => Vec::new(),
        }
    }

    /// Journal (write-ahead), apply, and report the apply — the one
    /// path every update takes, whether it arrived from a client
    /// (origin) or a peer link (propagation).
    fn accept_mset(&mut self, mset: MSet) -> Vec<Effect> {
        let et = mset.et;
        let version = max_version(&mset);
        let seq = seq_of(&mset);
        let mut effects = Vec::new();
        if self.journaled.insert(et) {
            effects.push(Effect::Journal(mset.clone()));
        }
        if self.canary == Some(CtrlCanary::DecisionReplayReapplies) {
            self.canary_msets.insert(et, mset.clone());
        }
        let before = self.state.has_applied(et);
        self.state.deliver(mset);
        let newly_applied = !before && self.state.has_applied(et);
        if !newly_applied && !self.state.has_applied(et) {
            self.held.insert(et, (version, seq));
        }
        effects.push(Effect::Trace {
            component: "apply",
            message: if newly_applied {
                apply_message(et, version, seq)
            } else {
                format!("et {} held/duplicate", et.0)
            },
        });
        if newly_applied {
            let announce = self.report_applied(et, version);
            effects.extend(announce);
        }
        // An in-order arrival may have released held successors: they
        // are applied *now*, so they are traced and reported now.
        for (et, version, seq) in self.take_unblocked() {
            effects.push(Effect::Trace {
                component: "apply",
                message: apply_message(et, version, seq),
            });
            effects.extend(self.report_applied(et, version));
        }
        effects
    }

    /// Drains every held ET the last delivery unblocked, in sequence
    /// order (a run of held successors applies lowest-seq first).
    fn take_unblocked(&mut self) -> Vec<(EtId, Option<VersionTs>, Option<u64>)> {
        let released: Vec<EtId> = self
            .held
            .keys()
            .filter(|et| self.state.has_applied(**et))
            .copied()
            .collect();
        let mut out: Vec<(EtId, Option<VersionTs>, Option<u64>)> = released
            .into_iter()
            .filter_map(|et| {
                let (version, seq) = self.held.remove(&et)?;
                Some((et, version, seq))
            })
            .collect();
        out.sort_by_key(|(et, _, seq)| (*seq, *et));
        out
    }

    /// Routes apply evidence to the coordinator (inline when we *are*
    /// the coordinator, over the durable link otherwise).
    fn report_applied(&mut self, et: EtId, version: Option<VersionTs>) -> Vec<Effect> {
        if !self.method.tracks_completion() {
            return Vec::new();
        }
        match &mut self.coord {
            Some(c) => {
                let broadcasts = c.on_applied(self.site, et, version);
                self.broadcast_all(broadcasts)
            }
            None => vec![Effect::Send {
                to: SiteId(0),
                frame: Frame::Applied {
                    site: self.site,
                    et,
                    version,
                },
            }],
        }
    }

    /// A COMPE commit/abort decision. The coordinator logs and
    /// broadcasts it; any other site forwards it to the coordinator
    /// over its durable link (the broadcast will come back around).
    fn decide(&mut self, et: EtId, commit: bool) -> Vec<Effect> {
        match &mut self.coord {
            Some(c) => {
                let broadcasts = c.on_decision(et, commit);
                self.broadcast_all(broadcasts)
            }
            None => vec![Effect::Send {
                to: SiteId(0),
                frame: Frame::Decision { et, commit },
            }],
        }
    }

    fn broadcast_all(&mut self, frames: Vec<Frame>) -> Vec<Effect> {
        let mut effects = Vec::new();
        for frame in frames {
            effects.extend(self.broadcast_control(frame));
        }
        effects
    }

    /// Applies a control broadcast locally and enqueues it to every
    /// peer (durable, so a currently-dead site receives it on revival).
    fn broadcast_control(&mut self, frame: Frame) -> Vec<Effect> {
        let mut effects = match frame {
            Frame::Complete { et } => self.apply_complete(et),
            Frame::Vtnc { ts } => self.apply_vtnc(ts),
            Frame::Decision { et, commit } => self.apply_decision(et, commit),
            _ => Vec::new(),
        };
        for to in self.peers() {
            effects.push(Effect::Send {
                to,
                frame: frame.clone(),
            });
        }
        effects
    }

    fn apply_complete(&mut self, et: EtId) -> Vec<Effect> {
        self.state.complete(et);
        vec![Effect::Trace {
            component: "control",
            message: format!("complete et {}", et.0),
        }]
    }

    fn apply_vtnc(&mut self, ts: VersionTs) -> Vec<Effect> {
        self.state.advance_vtnc(ts);
        vec![Effect::Trace {
            component: "control",
            message: format!("vtnc -> time {}", ts.time),
        }]
    }

    fn apply_decision(&mut self, et: EtId, commit: bool) -> Vec<Effect> {
        let duplicate = !self.decisions_seen.insert(et);
        if commit {
            self.state.commit(et);
        } else {
            self.state.abort(et);
        }
        // Defect: a replayed/duplicate commit decision re-applies the
        // decided update under a fresh identity instead of being
        // absorbed idempotently.
        if duplicate
            && commit
            && self.canary == Some(CtrlCanary::DecisionReplayReapplies)
        {
            if let Some(mut dup) = self.canary_msets.get(&et).cloned() {
                dup.et = EtId(dup.et.0 | CANARY_ET_BIT);
                self.state.deliver(dup);
                self.state.commit(EtId(et.0 | CANARY_ET_BIT));
            }
        }
        vec![Effect::Trace {
            component: "control",
            message: format!("{} et {}", if commit { "commit" } else { "abort" }, et.0),
        }]
    }

    /// Every other site, in id order.
    fn peers(&self) -> impl Iterator<Item = SiteId> + '_ {
        let me = self.site;
        (0..self.sites as u64).map(SiteId).filter(move |s| *s != me)
    }

    /// Number of distinct ETs journalled at this site.
    pub fn journaled_count(&self) -> u64 {
        self.journaled.len() as u64
    }
}

/// The certifier-facing apply message: `et N applied[ v=T][ seq=S]`.
fn apply_message(et: EtId, version: Option<VersionTs>, seq: Option<u64>) -> String {
    let mut m = format!("et {} applied", et.0);
    if let Some(v) = version {
        m.push_str(&format!(" v={}", v.time));
    }
    if let Some(s) = seq {
        m.push_str(&format!(" seq={s}"));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::op::ObjectOp;
    use esr_core::ids::{ObjectId, SeqNo};

    fn incr(et: u64, origin: u64) -> MSet {
        MSet::new(
            EtId(et),
            SiteId(origin),
            vec![ObjectOp::new(ObjectId(1), Operation::Incr(1))],
        )
    }

    fn sends(effects: &[Effect]) -> Vec<(SiteId, &Frame)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { to, frame } => Some((*to, frame)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn submit_journals_before_reporting() {
        let mut core = NodeCore::fresh(
            SiteState::new(RtMethod::Commu, SiteId(1)),
            RtMethod::Commu,
            SiteId(1),
            3,
            None,
        );
        let effects = core.step(NodeEvent::ClientSubmit(incr(7, 1)));
        let journal_at = effects
            .iter()
            .position(|e| matches!(e, Effect::Journal(_)));
        let applied_at = effects.iter().position(
            |e| matches!(e, Effect::Send { frame: Frame::Applied { .. }, .. }),
        );
        assert!(journal_at.is_some() && applied_at.is_some());
        assert!(journal_at < applied_at, "write-ahead order violated");
        // Fan-out reaches both peers.
        let msets = sends(&effects)
            .iter()
            .filter(|(_, f)| matches!(f, Frame::MSet(_)))
            .count();
        assert_eq!(msets, 2);
    }

    #[test]
    fn ordup_unblock_traces_every_released_apply() {
        // seq=1 arrives first: held. seq=0 then applies AND releases
        // seq=1 — both applies must be traced in sequence order.
        let mut core = NodeCore::fresh(
            SiteState::new(RtMethod::Ordup, SiteId(1)),
            RtMethod::Ordup,
            SiteId(1),
            3,
            None,
        );
        let early = incr(2, 0).sequenced(SeqNo(1));
        let held = core.step(NodeEvent::PeerFrame(Frame::MSet(early)));
        assert!(held.iter().any(|e| matches!(
            e,
            Effect::Trace { message, .. } if message.contains("held")
        )));
        let late = incr(1, 0).sequenced(SeqNo(0));
        let effects = core.step(NodeEvent::PeerFrame(Frame::MSet(late)));
        let applies: Vec<&String> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::Trace { component: "apply", message } if message.contains("applied") => {
                    Some(message)
                }
                _ => None,
            })
            .collect();
        assert_eq!(applies.len(), 2, "release must trace both applies: {effects:?}");
        assert!(applies[0].contains("seq=0") && applies[1].contains("seq=1"));
        assert!(core.state.has_applied(EtId(1)) && core.state.has_applied(EtId(2)));
    }

    #[test]
    fn duplicate_delivery_is_absorbed() {
        let mut core = NodeCore::fresh(
            SiteState::new(RtMethod::Commu, SiteId(1)),
            RtMethod::Commu,
            SiteId(1),
            3,
            None,
        );
        let first = core.step(NodeEvent::PeerFrame(Frame::MSet(incr(7, 0))));
        assert!(first.iter().any(|e| matches!(e, Effect::Journal(_))));
        let second = core.step(NodeEvent::PeerFrame(Frame::MSet(incr(7, 0))));
        assert!(
            !second.iter().any(|e| matches!(
                e,
                Effect::Journal(_) | Effect::Send { .. }
            )),
            "redelivery must neither re-journal nor re-announce"
        );
    }

    #[test]
    fn coordinator_completes_after_all_sites() {
        let mut core = NodeCore::fresh(
            SiteState::new(RtMethod::Commu, SiteId(0)),
            RtMethod::Commu,
            SiteId(0),
            3,
            None,
        );
        // Local apply counts as site 0's evidence.
        let e0 = core.step(NodeEvent::PeerFrame(Frame::MSet(incr(7, 1))));
        assert!(sends(&e0).is_empty());
        let e1 = core.step(NodeEvent::PeerFrame(Frame::Applied {
            site: SiteId(1),
            et: EtId(7),
            version: None,
        }));
        assert!(sends(&e1).is_empty());
        let e2 = core.step(NodeEvent::PeerFrame(Frame::Applied {
            site: SiteId(2),
            et: EtId(7),
            version: None,
        }));
        let s = sends(&e2);
        assert_eq!(s.len(), 2, "complete broadcast to both peers");
        assert!(s
            .iter()
            .all(|(_, f)| matches!(f, Frame::Complete { et } if *et == EtId(7))));
    }

    #[test]
    fn recovery_reannounces_applies() {
        let (core, effects) = NodeCore::recover(
            SiteState::new(RtMethod::Commu, SiteId(2)),
            RtMethod::Commu,
            SiteId(2),
            3,
            None,
            vec![incr(1, 0), incr(2, 1)],
        );
        assert!(core.state.has_applied(EtId(1)) && core.state.has_applied(EtId(2)));
        let announced: Vec<_> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send {
                    to,
                    frame: Frame::Applied { et, .. },
                } => Some((*to, *et)),
                _ => None,
            })
            .collect();
        assert_eq!(announced, vec![(SiteId(0), EtId(1)), (SiteId(0), EtId(2))]);
    }

    #[test]
    fn lost_completion_canary_suppresses_reannounce() {
        let (_, effects) = NodeCore::recover(
            SiteState::new(RtMethod::Commu, SiteId(2)),
            RtMethod::Commu,
            SiteId(2),
            3,
            Some(CtrlCanary::LostCompletionOnRestart),
            vec![incr(1, 0)],
        );
        assert!(!effects
            .iter()
            .any(|e| matches!(e, Effect::Send { .. })));
    }
}
