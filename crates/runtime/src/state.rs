//! The method-dispatched site state machine shared by every runtime.
//!
//! [`SiteState`] wraps one of the five replica-control site
//! implementations behind a uniform surface, so the thread cluster
//! ([`crate::cluster`]), the networked daemon ([`crate::daemon`]), and
//! recovery ([`crate::recovery`]) all drive *the same* protocol code —
//! the transports differ, the state machines cannot.

use std::collections::BTreeMap;

use esr_core::divergence::InconsistencyCounter;
use esr_core::ids::{EtId, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::value::Value;
use esr_replica::ckpt::SiteCkpt;
use esr_replica::commu::CommuSite;
use esr_replica::compe::{CompeEvent, CompeSite};
use esr_replica::mset::MSet;
use esr_replica::ordup::OrdupSite;
use esr_replica::ritu::{RituMvSite, RituOverwriteSite};
use esr_replica::site::{QueryOutcome, ReplicaSite};

use crate::recovery::{ControlReplay, Decision};

/// Replica control methods available in the runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtMethod {
    /// ORDUP with an atomic global sequencer.
    Ordup,
    /// Commutative operations.
    Commu,
    /// RITU last-writer-wins overwrite.
    Ritu,
    /// RITU multiversion with VTNC visibility: the tracker (thread
    /// runtime) or coordinator site (process runtime) acts as the
    /// certifier, advancing the horizon once a version is installed at
    /// every replica.
    RituMv,
    /// Compensation-based backward control (commit/abort driven by the
    /// client).
    Compe,
}

impl RtMethod {
    /// All five methods, for parameterized tests and harnesses.
    pub const ALL: [RtMethod; 5] = [
        RtMethod::Ordup,
        RtMethod::Commu,
        RtMethod::Ritu,
        RtMethod::RituMv,
        RtMethod::Compe,
    ];

    /// The lowercase CLI name (`esrd --method <name>`).
    pub fn name(self) -> &'static str {
        match self {
            RtMethod::Ordup => "ordup",
            RtMethod::Commu => "commu",
            RtMethod::Ritu => "ritu",
            RtMethod::RituMv => "ritu-mv",
            RtMethod::Compe => "compe",
        }
    }

    /// Parses a CLI name produced by [`RtMethod::name`].
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.name() == s)
    }

    /// Does this method use the completion/certification control plane
    /// (per-ET applies tracked, completion or VTNC broadcasts issued)?
    pub fn tracks_completion(self) -> bool {
        matches!(self, RtMethod::Commu | RtMethod::Ritu | RtMethod::RituMv)
    }
}

/// Per-site oracle evidence extracted after a run. The protocol logs
/// are populated only when audits are enabled; the chaos counters
/// (`redelivered`, `journaled`, `link_*`) are live on chaos clusters,
/// proving the injected faults actually fired.
#[derive(Debug, Clone, Default)]
pub struct SiteAudit {
    /// ORDUP: `(et, seq)` in application order.
    pub ordup_order: Vec<(EtId, SeqNo)>,
    /// COMMU: ETs in application order.
    pub commu_order: Vec<EtId>,
    /// RITU overwrite: winning installs `(object, version)` in store
    /// order.
    pub ritu_installs: Vec<(ObjectId, VersionTs)>,
    /// RITU-MV: every VTNC target received, in arrival order.
    pub vtnc_targets: Vec<VersionTs>,
    /// RITU-MV: advances whose target exceeded the locally installed
    /// contiguous version prefix.
    pub vtnc_violations: u64,
    /// COMPE: lifecycle events in order.
    pub compe_events: Vec<(EtId, CompeEvent)>,
    /// Duplicate deliveries this site's idempotency guards suppressed.
    pub redelivered: u64,
    /// MSets durably journalled at this site (chaos/process runtimes).
    pub journaled: u64,
    /// Planned retry attempts on links into this site (chaos only).
    pub link_retries: u64,
    /// Ack-timeout re-sends on links into this site (chaos only).
    pub link_resends: u64,
    /// Attempts dropped on links into this site (chaos only).
    pub link_dropped: u64,
    /// Planned duplicate copies on links into this site (chaos only).
    pub link_duplicated: u64,
}

/// One site's protocol state machine, dispatching over the method.
pub enum SiteState {
    /// ORDUP site.
    Ordup(OrdupSite),
    /// COMMU site.
    Commu(CommuSite),
    /// RITU last-writer-wins site.
    Ritu(RituOverwriteSite),
    /// RITU multiversion site.
    RituMv(RituMvSite),
    /// COMPE site.
    Compe(CompeSite),
}

impl SiteState {
    /// A fresh site running `method`.
    pub fn new(method: RtMethod, id: SiteId) -> Self {
        match method {
            RtMethod::Ordup => SiteState::Ordup(OrdupSite::new(id)),
            RtMethod::Commu => SiteState::Commu(CommuSite::new(id)),
            RtMethod::Ritu => SiteState::Ritu(RituOverwriteSite::new(id)),
            RtMethod::RituMv => SiteState::RituMv(RituMvSite::new(id)),
            RtMethod::Compe => SiteState::Compe(CompeSite::new(id)),
        }
    }

    /// Dumps the method state machine into a checkpoint image.
    pub fn to_ckpt(&self) -> SiteCkpt {
        match self {
            SiteState::Ordup(s) => SiteCkpt::Ordup(s.to_ckpt()),
            SiteState::Commu(s) => SiteCkpt::Commu(s.to_ckpt()),
            SiteState::Ritu(s) => SiteCkpt::Ritu(s.to_ckpt()),
            SiteState::RituMv(s) => SiteCkpt::RituMv(s.to_ckpt()),
            SiteState::Compe(s) => SiteCkpt::Compe(s.to_ckpt()),
        }
    }

    /// Rebuilds a site from a checkpoint image. The variant fixes the
    /// method; audit logs and metrics bundles are *not* checkpointed —
    /// re-enable them after restore if wanted.
    pub fn from_ckpt(id: SiteId, c: SiteCkpt) -> Self {
        match c {
            SiteCkpt::Ordup(c) => SiteState::Ordup(OrdupSite::from_ckpt(id, c)),
            SiteCkpt::Commu(c) => SiteState::Commu(CommuSite::from_ckpt(id, c)),
            SiteCkpt::Ritu(c) => SiteState::Ritu(RituOverwriteSite::from_ckpt(id, c)),
            SiteCkpt::RituMv(c) => SiteState::RituMv(RituMvSite::from_ckpt(id, c)),
            SiteCkpt::Compe(c) => SiteState::Compe(CompeSite::from_ckpt(id, c)),
        }
    }

    /// Delivers one MSet (idempotent under redelivery).
    pub fn deliver(&mut self, mset: MSet) {
        match self {
            SiteState::Ordup(s) => s.deliver(mset),
            SiteState::Commu(s) => s.deliver(mset),
            SiteState::Ritu(s) => s.deliver(mset),
            SiteState::RituMv(s) => s.deliver(mset),
            SiteState::Compe(s) => s.deliver(mset),
        }
    }

    /// Delivers a batch through the method's coalescing fast path.
    pub fn deliver_batch(&mut self, msets: Vec<MSet>) {
        match self {
            SiteState::Ordup(s) => s.deliver_batch(msets),
            SiteState::Commu(s) => s.deliver_batch(msets),
            SiteState::Ritu(s) => s.deliver_batch(msets),
            SiteState::RituMv(s) => s.deliver_batch(msets),
            SiteState::Compe(s) => s.deliver_batch(msets),
        }
    }

    /// Runs a query ET against the local replica under `c`'s budget.
    pub fn query(&mut self, rs: &[ObjectId], c: &mut InconsistencyCounter) -> QueryOutcome {
        match self {
            SiteState::Ordup(s) => s.query(rs, c),
            SiteState::Commu(s) => s.query(rs, c),
            SiteState::Ritu(s) => s.query(rs, c),
            SiteState::RituMv(s) => s.query(rs, c),
            SiteState::Compe(s) => s.query(rs, c),
        }
    }

    /// The full replica snapshot.
    pub fn snapshot(&self) -> BTreeMap<ObjectId, Value> {
        match self {
            SiteState::Ordup(s) => s.snapshot(),
            SiteState::Commu(s) => s.snapshot(),
            SiteState::Ritu(s) => s.snapshot(),
            SiteState::RituMv(s) => s.snapshot(),
            SiteState::Compe(s) => s.snapshot(),
        }
    }

    /// Is this site settled (nothing held back, nothing at risk)?
    pub fn settled(&self) -> bool {
        match self {
            SiteState::Ordup(s) => s.backlog() == 0,
            SiteState::Commu(s) => s.quiescent(),
            SiteState::Ritu(s) => s.backlog() == 0,
            SiteState::RituMv(s) => s.backlog() == 0,
            SiteState::Compe(s) => s.at_risk() == 0,
        }
    }

    /// Has this site applied `et`?
    pub fn has_applied(&self, et: EtId) -> bool {
        match self {
            SiteState::Ordup(s) => s.has_applied(et),
            SiteState::Commu(s) => s.has_applied(et),
            SiteState::Ritu(s) => s.has_applied(et),
            SiteState::RituMv(s) => s.has_applied(et),
            SiteState::Compe(s) => s.has_applied(et),
        }
    }

    /// Duplicate deliveries suppressed so far.
    pub fn redelivered(&self) -> u64 {
        match self {
            SiteState::Ordup(s) => s.redelivered(),
            SiteState::Commu(s) => s.redelivered(),
            SiteState::Ritu(s) => s.redelivered(),
            SiteState::RituMv(s) => s.redelivered(),
            SiteState::Compe(s) => s.redelivered(),
        }
    }

    /// Attaches a per-site metrics bundle; the site ticks its delivery,
    /// backlog, and epsilon series from then on.
    pub fn attach_metrics(&mut self, obs: esr_obs::SiteInstruments) {
        match self {
            SiteState::Ordup(s) => s.attach_metrics(obs),
            SiteState::Commu(s) => s.attach_metrics(obs),
            SiteState::Ritu(s) => s.attach_metrics(obs),
            SiteState::RituMv(s) => s.attach_metrics(obs),
            SiteState::Compe(s) => s.attach_metrics(obs),
        }
    }

    /// Turns on the per-method audit log.
    pub fn enable_audit(&mut self) {
        match self {
            SiteState::Ordup(s) => s.enable_audit(),
            SiteState::Commu(s) => s.enable_audit(),
            SiteState::Ritu(s) => s.enable_audit(),
            SiteState::RituMv(s) => s.enable_audit(),
            SiteState::Compe(s) => s.enable_audit(),
        }
    }

    /// Extracts the oracle audit (protocol logs + redelivery counter;
    /// the caller fills in transport-side fields).
    pub fn audit(&self) -> SiteAudit {
        let mut a = SiteAudit::default();
        match self {
            SiteState::Ordup(s) => a.ordup_order = s.audit_log().to_vec(),
            SiteState::Commu(s) => a.commu_order = s.audit_log().to_vec(),
            SiteState::Ritu(s) => a.ritu_installs = s.audit_log().to_vec(),
            SiteState::RituMv(s) => {
                a.vtnc_targets = s.vtnc_targets().to_vec();
                a.vtnc_violations = s.vtnc_violations();
            }
            SiteState::Compe(s) => a.compe_events = s.audit_log().to_vec(),
        }
        a.redelivered = self.redelivered();
        a
    }

    /// Completion notice: every site has applied `et` (releases the
    /// COMMU/RITU lock-counters; a no-op for the other methods).
    pub fn complete(&mut self, et: EtId) {
        match self {
            SiteState::Commu(s) => s.complete(et),
            SiteState::Ritu(s) => s.complete(et),
            _ => {}
        }
    }

    /// VTNC certificate: advances the RITU-MV visibility horizon (a
    /// no-op for the other methods; monotone, so replays are harmless).
    pub fn advance_vtnc(&mut self, ts: VersionTs) {
        if let SiteState::RituMv(s) = self {
            s.advance_vtnc(ts);
        }
    }

    /// COMPE commit decision (no-op for the other methods).
    pub fn commit(&mut self, et: EtId) {
        if let SiteState::Compe(s) = self {
            s.commit(et);
        }
    }

    /// COMPE abort decision (no-op for the other methods).
    pub fn abort(&mut self, et: EtId) {
        if let SiteState::Compe(s) = self {
            let _ = s.abort(et);
        }
    }

    /// Replays recovered control-plane broadcasts after a journal
    /// replay: completion notices, the certified VTNC horizon, and COMPE
    /// decisions in their original order. Everything here is idempotent,
    /// so notices the site already processed before crashing are
    /// harmless to replay.
    pub fn replay_control(&mut self, r: &ControlReplay) {
        for &et in &r.completed {
            self.complete(et);
        }
        if let Some(v) = r.vtnc_max {
            self.advance_vtnc(v);
        }
        for d in &r.decisions {
            match d {
                Decision::Commit(et) => self.commit(*et),
                Decision::Abort(et) => self.abort(*et),
            }
        }
    }
}
