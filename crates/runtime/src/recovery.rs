//! Crash/restart support: the per-site apply journal and the shared
//! control-plane replay log.
//!
//! A chaos-mode site persists every MSet it accepts to an append-only
//! [`FileQueue`] journal *before* applying it, and acknowledges the
//! relay only afterwards — so a crash can lose channel contents but
//! never an acknowledged update. Restart replays the journal to rebuild
//! the replica state machine, then replays the [`ControlLog`] to
//! recover the control-plane messages (completion notices, VTNC
//! advances, COMPE decisions) that were broadcast while the site was
//! down and died with its dropped channel.
//!
//! The control log is deliberately *not* chaos-injected: the paper
//! treats completion/certification traffic as part of the reliable
//! stable-queue substrate, and the chaos layer targets update
//! propagation. See DESIGN.md §10 for the boundary.

use std::path::Path;

use esr_core::ids::{EtId, VersionTs};
use esr_replica::mset::MSet;
use esr_replica::wire::{decode_mset, encode_mset};
use esr_storage::stable_queue::{EntryId, FileQueue, StableQueue};
use parking_lot::Mutex;

/// A site's durable apply journal: encoded MSets in acceptance order.
/// Entries stay live until a checkpoint covering them is installed;
/// [`ApplyJournal::retire_through`] then acknowledges the covered
/// prefix so compaction can reclaim it.
#[derive(Debug)]
pub struct ApplyJournal {
    queue: FileQueue,
    entries: u64,
}

/// Auto-compact a journal once this many bytes belong to retired
/// (checkpoint-covered) records. Small enough that the checkpoint-smoke
/// CI job sees the file actually shrink; large enough that a compaction
/// rewrite never dominates steady-state appends.
const JOURNAL_COMPACT_DEAD_BYTES: u64 = 64 * 1024;

impl ApplyJournal {
    /// Opens (or reopens after a crash) the journal at `path`.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let mut queue = FileQueue::open(path)?;
        queue.set_auto_compact(JOURNAL_COMPACT_DEAD_BYTES);
        let entries = queue.len() as u64;
        Ok(Self { queue, entries })
    }

    /// Durably records an accepted MSet. Must be called before the MSet
    /// is applied (write-ahead), and before the relay is acked. Returns
    /// the approximate bytes appended, for checkpoint-policy
    /// accounting.
    pub fn record(&mut self, mset: &MSet) -> u64 {
        let encoded = encode_mset(mset);
        let bytes = 13 + encoded.len() as u64; // record framing + payload
        self.queue.enqueue(encoded);
        self.entries += 1;
        bytes
    }

    /// Decodes every journalled MSet in acceptance order.
    pub fn replay(&self) -> Vec<MSet> {
        self.replay_entries().into_iter().map(|(_, m)| m).collect()
    }

    /// Decodes every live journalled MSet with its stable entry id —
    /// the id-aware walk checkpoint recovery uses to split the log at a
    /// snapshot's `covered_through` cut.
    pub fn replay_entries(&self) -> Vec<(u64, MSet)> {
        self.queue
            .pending(usize::MAX)
            .into_iter()
            .map(|(id, payload)| {
                let m = decode_mset(&payload)
                    .unwrap_or_else(|e| panic!("journal entry {} undecodable: {e}", id.0));
                (id.0, m)
            })
            .collect()
    }

    /// The stable id of the newest record ever journalled, or `None`
    /// for a journal that never held one. Monotone across recovery,
    /// retirement, and compaction (the queue pins its allocator).
    pub fn last_id(&self) -> Option<u64> {
        let next = self.queue.next_id();
        (next > 0).then(|| next - 1)
    }

    /// Retires every entry with id `<= through`: the installed
    /// checkpoint covers them, so replay no longer needs them.
    /// Retirement is an ack, not a delete — the bytes are reclaimed by
    /// the queue's auto-compaction once enough accumulate. Returns the
    /// number of entries retired.
    pub fn retire_through(&mut self, through: u64) -> u64 {
        let covered: Vec<EntryId> = self
            .queue
            .pending(usize::MAX)
            .into_iter()
            .map(|(id, _)| id)
            .filter(|id| id.0 <= through)
            .collect();
        let mut retired = 0;
        for id in covered {
            if self.queue.ack(id) {
                retired += 1;
            }
        }
        retired
    }

    /// Number of live (unretired) journal entries.
    pub fn live_entries(&self) -> u64 {
        self.queue.len() as u64
    }

    /// Bytes currently occupied by the journal file.
    pub fn file_bytes(&self) -> u64 {
        std::fs::metadata(self.queue.path()).map_or(0, |m| m.len())
    }

    /// Number of MSets journalled this incarnation (live entries at
    /// open plus records appended since; retirement does not decrement).
    pub fn entries(&self) -> u64 {
        self.entries
    }
}

/// One COMPE outcome decision, in broadcast order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The global update committed.
    Commit(EtId),
    /// The global update aborted; replicas compensate.
    Abort(EtId),
}

#[derive(Debug, Default)]
struct ControlState {
    completed: Vec<EtId>,
    decisions: Vec<Decision>,
    vtnc_max: Option<VersionTs>,
}

/// Cluster-shared record of every control-plane broadcast, appended
/// *before* the channels are used so a site that crashes mid-broadcast
/// can recover the notice at restart. Channel re-delivery after replay
/// is harmless: completion, VTNC advance, and decision handling are all
/// idempotent at the sites.
#[derive(Debug, Default)]
pub struct ControlLog {
    state: Mutex<ControlState>,
}

/// Snapshot of the control log for restart replay.
#[derive(Debug, Clone, Default)]
pub struct ControlReplay {
    /// ETs whose completion notice has been broadcast (COMMU/RITU).
    pub completed: Vec<EtId>,
    /// COMPE commit/abort decisions in broadcast order.
    pub decisions: Vec<Decision>,
    /// The furthest VTNC horizon ever certified (RITU-MV).
    pub vtnc_max: Option<VersionTs>,
}

impl ControlLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completion notice about to be broadcast.
    pub fn note_complete(&self, et: EtId) {
        self.state.lock().completed.push(et);
    }

    /// Records a COMPE decision about to be broadcast.
    pub fn note_decision(&self, d: Decision) {
        self.state.lock().decisions.push(d);
    }

    /// Records a VTNC advance about to be broadcast (keeps the max —
    /// the horizon is monotone).
    pub fn note_vtnc(&self, to: VersionTs) {
        let mut s = self.state.lock();
        s.vtnc_max = Some(s.vtnc_max.map_or(to, |m| m.max(to)));
    }

    /// Everything a restarting site must replay after its journal.
    pub fn snapshot(&self) -> ControlReplay {
        let s = self.state.lock();
        ControlReplay {
            completed: s.completed.clone(),
            decisions: s.decisions.clone(),
            vtnc_max: s.vtnc_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::ids::{ClientId, ObjectId, SiteId};
    use esr_core::op::{ObjectOp, Operation};

    #[test]
    fn journal_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("esr-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j1.log");
        let _ = std::fs::remove_file(&path);
        let m1 = MSet::new(
            EtId(1),
            SiteId(0),
            vec![ObjectOp::new(ObjectId(0), Operation::Incr(5))],
        );
        let m2 = MSet::new(
            EtId(2),
            SiteId(1),
            vec![ObjectOp::new(ObjectId(1), Operation::Write(esr_core::value::Value::Int(9)))],
        );
        {
            let mut j = ApplyJournal::open(&path).unwrap();
            j.record(&m1);
            j.record(&m2);
            assert_eq!(j.entries(), 2);
        } // "crash": journal dropped without ceremony
        let j = ApplyJournal::open(&path).unwrap();
        assert_eq!(j.entries(), 2);
        let replayed = j.replay();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].et, EtId(1));
        assert_eq!(replayed[1].et, EtId(2));
        assert_eq!(replayed[1].ops, m2.ops);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn retire_through_drops_the_covered_prefix_and_keeps_ids() {
        let dir = std::env::temp_dir().join(format!("esr-journal-retire-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("retire.log");
        let _ = std::fs::remove_file(&path);
        let mk = |et: u64| {
            MSet::new(
                EtId(et),
                SiteId(0),
                vec![ObjectOp::new(ObjectId(0), Operation::Incr(1))],
            )
        };
        let mut j = ApplyJournal::open(&path).unwrap();
        for et in 1..=5 {
            assert!(j.record(&mk(et)) > 13);
        }
        let ids: Vec<u64> = j.replay_entries().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(j.last_id(), Some(4));
        // Retire the first three; the suffix survives with stable ids.
        assert_eq!(j.retire_through(2), 3);
        assert_eq!(j.retire_through(2), 0, "retirement is idempotent");
        assert_eq!(j.live_entries(), 2);
        let left: Vec<(u64, EtId)> = j
            .replay_entries()
            .into_iter()
            .map(|(id, m)| (id, m.et))
            .collect();
        assert_eq!(left, vec![(3, EtId(4)), (4, EtId(5))]);
        drop(j);
        // Reopen: retired entries stay gone, the allocator stays pinned.
        let mut j2 = ApplyJournal::open(&path).unwrap();
        assert_eq!(j2.live_entries(), 2);
        assert_eq!(j2.last_id(), Some(4));
        j2.record(&mk(6));
        assert_eq!(j2.last_id(), Some(5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn control_log_keeps_order_and_vtnc_max() {
        let log = ControlLog::new();
        log.note_complete(EtId(1));
        log.note_decision(Decision::Commit(EtId(2)));
        log.note_decision(Decision::Abort(EtId(3)));
        log.note_complete(EtId(4));
        log.note_vtnc(VersionTs::new(3, ClientId(0)));
        log.note_vtnc(VersionTs::new(1, ClientId(0)));
        let r = log.snapshot();
        assert_eq!(r.completed, vec![EtId(1), EtId(4)]);
        assert_eq!(
            r.decisions,
            vec![Decision::Commit(EtId(2)), Decision::Abort(EtId(3))]
        );
        assert_eq!(r.vtnc_max, Some(VersionTs::new(3, ClientId(0))));
    }
}
