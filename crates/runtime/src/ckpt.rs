//! Checkpoint payloads: one consistent cut of a daemon node.
//!
//! A checkpoint captures everything [`crate::ctrl::NodeCore`] would
//! otherwise rebuild by replaying the journal from its first entry: the
//! method state machine (via [`esr_replica::ckpt`]), the node's
//! idempotency/ordering bookkeeping, and the control-plane results it
//! has observed (completions, decisions, the VTNC horizon). Restoring a
//! payload and replaying only the journal *suffix* past the cut must be
//! indistinguishable from a full replay — `crates/check` tests exactly
//! that equivalence.
//!
//! Like every codec in this workspace the decoder is *total*: any byte
//! slice either yields a payload or `None`, never a panic — corrupt
//! snapshot files are detected, reported, and fall back to full replay.

use bytes::{BufMut, BytesMut};
use esr_core::ids::{ClientId, EtId, VersionTs};
use esr_replica::ckpt::{decode_site_ckpt, encode_site_ckpt, SiteCkpt};

use crate::state::RtMethod;

/// One consistent checkpoint of a daemon node, cut while the core lock
/// was held (so no effect is half-applied across the image).
#[derive(Debug, Clone, PartialEq)]
pub struct CkptPayload {
    /// Number of distinct MSets journalled at the cut — the payload's
    /// logical position, monotone across checkpoints of one node.
    pub covered: u64,
    /// Journal [`esr_storage::stable_queue::EntryId`] high-water mark at
    /// the cut: every journal entry with id `<= covered_through` is
    /// reflected in this image. `None` when the ids are meaningless
    /// locally — a fresh node, or a catch-up image fetched from a peer
    /// (whose entry ids refer to the *peer's* journal file).
    pub covered_through: Option<u64>,
    /// Durable view number at the cut.
    pub view: u64,
    /// Per-origin journalled counts `(site, count)` at the cut, for the
    /// status surface and the certifier's frontier rules.
    pub frontier: Vec<(u64, u64)>,
    /// Every ET journalled at the cut (sorted; the write-ahead dedup
    /// set).
    pub journaled: Vec<EtId>,
    /// Exactly-once client table: `(client, request_seq, et)`.
    pub client_table: Vec<(u64, u64, EtId)>,
    /// ETs this node has applied and announced, with the installed
    /// version for RITU-family methods (the coordinator re-announce
    /// set).
    pub applied_log: Vec<(EtId, Option<VersionTs>)>,
    /// Completion notices observed, in arrival order.
    pub completed: Vec<EtId>,
    /// COMPE decisions observed, in arrival order (`true` = commit).
    pub decisions: Vec<(EtId, bool)>,
    /// Highest VTNC certificate observed.
    pub vtnc: Option<VersionTs>,
    /// ETs journalled but still held back by the method at the cut:
    /// `(et, version, seq)` mirroring the node's held map.
    pub held: Vec<(EtId, Option<VersionTs>, Option<u64>)>,
    /// The method state machine image.
    pub site: SiteCkpt,
}

impl CkptPayload {
    /// The replica-control method this image belongs to. Restore
    /// refuses a payload whose method disagrees with the daemon's
    /// configuration.
    pub fn method(&self) -> RtMethod {
        match self.site {
            SiteCkpt::Ordup(_) => RtMethod::Ordup,
            SiteCkpt::Commu(_) => RtMethod::Commu,
            SiteCkpt::Ritu(_) => RtMethod::Ritu,
            SiteCkpt::RituMv(_) => RtMethod::RituMv,
            SiteCkpt::Compe(_) => RtMethod::Compe,
        }
    }
}

// ---- cursor primitives -------------------------------------------------
//
// The wire-format helpers in esr-replica are crate-private, so the
// payload codec carries its own minimal cursor set. Same discipline:
// every read checks remaining length, every count is bounded by the
// bytes that could plausibly back it (`min_elem`), so a hostile length
// prefix cannot force a huge allocation.

fn get_u8(b: &mut &[u8]) -> Option<u8> {
    let (&v, rest) = b.split_first()?;
    *b = rest;
    Some(v)
}

fn get_u64(b: &mut &[u8]) -> Option<u64> {
    if b.len() < 8 {
        return None;
    }
    let (raw, rest) = b.split_at(8);
    *b = rest;
    Some(u64::from_be_bytes(raw.try_into().ok()?))
}

fn get_count(b: &mut &[u8], min_elem: usize) -> Option<usize> {
    if b.len() < 4 {
        return None;
    }
    let (raw, rest) = b.split_at(4);
    *b = rest;
    let n = u32::from_be_bytes(raw.try_into().ok()?) as usize;
    if n.checked_mul(min_elem)? > b.len() {
        return None;
    }
    Some(n)
}

fn put_version_opt(out: &mut BytesMut, v: Option<VersionTs>) {
    match v {
        Some(ts) => {
            out.put_u8(1);
            out.put_u64(ts.time);
            out.put_u64(ts.client.raw());
        }
        None => out.put_u8(0),
    }
}

fn get_version_opt(b: &mut &[u8]) -> Option<Option<VersionTs>> {
    match get_u8(b)? {
        0 => Some(None),
        1 => {
            let time = get_u64(b)?;
            let client = ClientId::new(get_u64(b)?);
            Some(Some(VersionTs::new(time, client)))
        }
        _ => None,
    }
}

// ---- payload codec -----------------------------------------------------

/// Encodes a payload for [`esr_storage::snapshot::install`].
pub fn encode_payload(p: &CkptPayload) -> Vec<u8> {
    let site = encode_site_ckpt(&p.site);
    let mut out = BytesMut::with_capacity(128 + site.len());
    out.put_u64(p.covered);
    match p.covered_through {
        Some(id) => {
            out.put_u8(1);
            out.put_u64(id);
        }
        None => out.put_u8(0),
    }
    out.put_u64(p.view);
    out.put_u32(p.frontier.len() as u32);
    for &(site_id, count) in &p.frontier {
        out.put_u64(site_id);
        out.put_u64(count);
    }
    out.put_u32(p.journaled.len() as u32);
    for et in &p.journaled {
        out.put_u64(et.raw());
    }
    out.put_u32(p.client_table.len() as u32);
    for &(client, seq, et) in &p.client_table {
        out.put_u64(client);
        out.put_u64(seq);
        out.put_u64(et.raw());
    }
    out.put_u32(p.applied_log.len() as u32);
    for &(et, version) in &p.applied_log {
        out.put_u64(et.raw());
        put_version_opt(&mut out, version);
    }
    out.put_u32(p.completed.len() as u32);
    for et in &p.completed {
        out.put_u64(et.raw());
    }
    out.put_u32(p.decisions.len() as u32);
    for &(et, commit) in &p.decisions {
        out.put_u64(et.raw());
        out.put_u8(u8::from(commit));
    }
    put_version_opt(&mut out, p.vtnc);
    out.put_u32(p.held.len() as u32);
    for &(et, version, seq) in &p.held {
        out.put_u64(et.raw());
        put_version_opt(&mut out, version);
        match seq {
            Some(s) => {
                out.put_u8(1);
                out.put_u64(s);
            }
            None => out.put_u8(0),
        }
    }
    out.put_u32(site.len() as u32);
    out.put_slice(&site);
    out.to_vec()
}

/// Decodes a payload. Total: `None` on any truncation, bad tag, or
/// trailing garbage — the daemon treats that as a corrupt snapshot and
/// falls back to the next-older image (then to full journal replay).
pub fn decode_payload(bytes: &[u8]) -> Option<CkptPayload> {
    let mut b = bytes;
    let covered = get_u64(&mut b)?;
    let covered_through = match get_u8(&mut b)? {
        0 => None,
        1 => Some(get_u64(&mut b)?),
        _ => return None,
    };
    let view = get_u64(&mut b)?;
    let n = get_count(&mut b, 16)?;
    let mut frontier = Vec::with_capacity(n);
    for _ in 0..n {
        frontier.push((get_u64(&mut b)?, get_u64(&mut b)?));
    }
    let n = get_count(&mut b, 8)?;
    let mut journaled = Vec::with_capacity(n);
    for _ in 0..n {
        journaled.push(EtId::new(get_u64(&mut b)?));
    }
    let n = get_count(&mut b, 24)?;
    let mut client_table = Vec::with_capacity(n);
    for _ in 0..n {
        client_table.push((get_u64(&mut b)?, get_u64(&mut b)?, EtId::new(get_u64(&mut b)?)));
    }
    let n = get_count(&mut b, 9)?;
    let mut applied_log = Vec::with_capacity(n);
    for _ in 0..n {
        let et = EtId::new(get_u64(&mut b)?);
        applied_log.push((et, get_version_opt(&mut b)?));
    }
    let n = get_count(&mut b, 8)?;
    let mut completed = Vec::with_capacity(n);
    for _ in 0..n {
        completed.push(EtId::new(get_u64(&mut b)?));
    }
    let n = get_count(&mut b, 9)?;
    let mut decisions = Vec::with_capacity(n);
    for _ in 0..n {
        let et = EtId::new(get_u64(&mut b)?);
        let commit = match get_u8(&mut b)? {
            0 => false,
            1 => true,
            _ => return None,
        };
        decisions.push((et, commit));
    }
    let vtnc = get_version_opt(&mut b)?;
    let n = get_count(&mut b, 10)?;
    let mut held = Vec::with_capacity(n);
    for _ in 0..n {
        let et = EtId::new(get_u64(&mut b)?);
        let version = get_version_opt(&mut b)?;
        let seq = match get_u8(&mut b)? {
            0 => None,
            1 => Some(get_u64(&mut b)?),
            _ => return None,
        };
        held.push((et, version, seq));
    }
    let site_len = get_count(&mut b, 1)?;
    let (site_bytes, rest) = b.split_at(site_len);
    let site = decode_site_ckpt(site_bytes).ok()?;
    if !rest.is_empty() {
        return None; // trailing garbage: not an image we wrote
    }
    Some(CkptPayload {
        covered,
        covered_through,
        view,
        frontier,
        journaled,
        client_table,
        applied_log,
        completed,
        decisions,
        vtnc,
        held,
        site,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::ids::SeqNo;
    use esr_replica::ckpt::{CommuCkpt, OrdupCkpt, RituMvCkpt};

    fn sample() -> CkptPayload {
        CkptPayload {
            covered: 7,
            covered_through: Some(41),
            view: 3,
            frontier: vec![(0, 4), (1, 3)],
            journaled: vec![EtId::new(1), EtId::new(2), EtId::new(9)],
            client_table: vec![(5, 1, EtId::new(2)), (5, 2, EtId::new(9))],
            applied_log: vec![
                (EtId::new(1), None),
                (EtId::new(2), Some(VersionTs::new(10, ClientId::new(5)))),
            ],
            completed: vec![EtId::new(1)],
            decisions: vec![(EtId::new(2), true), (EtId::new(9), false)],
            vtnc: Some(VersionTs::new(10, ClientId::new(5))),
            held: vec![
                (EtId::new(9), None, Some(12)),
                (EtId::new(11), Some(VersionTs::new(11, ClientId::new(6))), None),
            ],
            site: SiteCkpt::RituMv(RituMvCkpt {
                versions: vec![],
                vtnc: VersionTs::new(10, ClientId::new(5)),
                newest_installed: 2,
                applied_ets: vec![EtId::new(1), EtId::new(2)],
                applied: 2,
                redelivered: 0,
            }),
        }
    }

    #[test]
    fn payload_round_trips() {
        let samples = vec![
            sample(),
            CkptPayload {
                covered: 0,
                covered_through: None,
                view: 0,
                frontier: vec![],
                journaled: vec![],
                client_table: vec![],
                applied_log: vec![],
                completed: vec![],
                decisions: vec![],
                vtnc: None,
                held: vec![],
                site: SiteCkpt::Commu(CommuCkpt {
                    values: vec![],
                    held: vec![],
                    applied_ets: vec![],
                    applied: 0,
                    redelivered: 0,
                }),
            },
        ];
        for p in samples {
            let bytes = encode_payload(&p);
            let back = decode_payload(&bytes).expect("decodes");
            assert_eq!(back, p);
        }
    }

    #[test]
    fn method_matches_site_variant() {
        assert_eq!(sample().method(), RtMethod::RituMv);
        let ordup = CkptPayload {
            site: SiteCkpt::Ordup(OrdupCkpt {
                values: vec![],
                next_seq: SeqNo(0),
                holdback: vec![],
                applied_ets: vec![],
                applied: 0,
                redelivered: 0,
            }),
            ..sample()
        };
        assert_eq!(ordup.method(), RtMethod::Ordup);
    }

    #[test]
    fn truncation_at_any_prefix_is_rejected_not_a_panic() {
        let bytes = encode_payload(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_payload(&bytes[..cut]).is_none(),
                "prefix of {cut} bytes decoded"
            );
        }
        assert!(decode_payload(&bytes).is_some());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_payload(&sample());
        bytes.push(0xEE);
        assert!(decode_payload(&bytes).is_none());
    }

    #[test]
    fn bad_decision_tag_is_rejected() {
        let p = CkptPayload {
            decisions: vec![(EtId::new(2), true)],
            held: vec![],
            ..sample()
        };
        let bytes = encode_payload(&p);
        // Locate the decision bool: scan for a mutation that flips only
        // that byte by brute force — corrupting any single byte must
        // never panic, and corrupting the tag byte must be rejected.
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xFF;
            let _ = decode_payload(&mutated); // totality: no panic
        }
    }
}
