//! Fault injection for the thread runtime: lossy links over durable
//! relay queues.
//!
//! The simulator (`esr-net`) already knows how to *plan* a message's
//! fate — drops, duplicates, partition stalls — deterministically from a
//! seed. This module puts that planner between the real site threads:
//! every inter-site MSet travels through a **relay** owning a durable
//! [`FileQueue`], and the relay consults a per-link [`Network`] to decide
//! how the transport mistreats each entry. Because each directed link
//! has its own RNG stream (forked from the plan seed) and its own
//! logical clock (one tick per enqueued entry), the planned fates — and
//! therefore the fault trace — are identical across runs of the same
//! seed, no matter how the OS schedules the threads.
//!
//! Delivery is at-least-once, the paper's §2.2 stable-queue assumption:
//! an entry stays in the relay's durable queue until the destination
//! site acknowledges it *after* journalling and applying it. Planned
//! extra attempts drive real exponential backoff through
//! [`StableQueue::record_attempt`]; an entry whose ack never arrives
//! (the destination crashed with the message in its channel) is re-sent
//! after an ack timeout. Sites tolerate the resulting duplicates via
//! their per-method idempotency guards.
//!
//! Relays themselves never crash — they model the stable queues the
//! paper assumes survive site failures.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant};

use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use esr_core::ids::SiteId;
use esr_net::faults::PartitionSchedule;
use esr_net::latency::LatencyModel;
use esr_net::topology::{LinkConfig, Topology};
use esr_net::transport::{Network, NetStats};
use esr_replica::mset::MSet;
use esr_replica::wire::decode_mset;
use esr_sim::rng::DetRng;
use esr_sim::time::{Duration as VDuration, VirtualTime};
use esr_storage::stable_queue::{EntryId, FileQueue, StableQueue};

/// A seeded description of how the transport misbehaves. All randomness
/// derives from `seed`; two clusters built from the same plan produce
/// byte-identical fault traces.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Master seed; each directed link forks its own RNG stream from it.
    pub seed: u64,
    /// Probability an individual send attempt is dropped (retried).
    pub drop_prob: f64,
    /// Probability a delivered entry arrives twice.
    pub duplicate_prob: f64,
    /// Partition windows over *logical ticks*: tick `k` on a link is its
    /// `k`-th enqueued entry (see [`FaultPlan::tick`]).
    pub partitions: PartitionSchedule,
    /// First backoff step after a failed attempt; doubles per attempt.
    pub backoff_base: StdDuration,
    /// Backoff ceiling.
    pub backoff_cap: StdDuration,
    /// How long a relay waits for an ack before re-sending an entry.
    pub ack_timeout: StdDuration,
}

impl FaultPlan {
    /// A plan with no faults — every knob off, ready for builders.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            partitions: PartitionSchedule::none(),
            backoff_base: StdDuration::from_micros(200),
            backoff_cap: StdDuration::from_millis(4),
            ack_timeout: StdDuration::from_millis(40),
        }
    }

    /// Sets the per-attempt drop probability.
    pub fn with_drops(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Sets the duplicate-delivery probability.
    pub fn with_duplicates(mut self, p: f64) -> Self {
        self.duplicate_prob = p;
        self
    }

    /// Installs a partition schedule (windows in logical ticks — build
    /// them with [`FaultPlan::tick`]).
    pub fn with_partitions(mut self, partitions: PartitionSchedule) -> Self {
        self.partitions = partitions;
        self
    }

    /// The logical-tick instant of a link's `k`-th enqueued entry, for
    /// building partition windows.
    pub fn tick(k: u64) -> VirtualTime {
        VirtualTime::from_millis(k)
    }
}

/// One planned link-level fate, recorded when the entry is enqueued.
/// The trace is a pure function of (plan seed, per-link submission
/// order): re-sends after an ack timeout never appear here, so crash
/// timing cannot perturb it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceEvent {
    /// Originating site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// The entry's id in the link's durable queue.
    pub entry: u64,
    /// Send attempts the planner charged before success (1 = clean).
    pub attempts: u32,
    /// True when the planner delivered a second copy.
    pub duplicate: bool,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}->{} #{} attempts={}{}",
            self.from.raw(),
            self.to.raw(),
            self.entry,
            self.attempts,
            if self.duplicate { " dup" } else { "" }
        )
    }
}

/// Renders a sorted trace as one event per line — the byte-identical
/// artifact the reproducibility tests compare.
pub fn render_trace(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

/// Aggregated fault counters across every link of a chaos cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Entries handed to relays.
    pub sent: u64,
    /// Copies handed to destination sites by the planner (first copies
    /// plus planned duplicates; excludes ack-timeout re-sends).
    pub delivered: u64,
    /// Send attempts lost to link drop probability.
    pub dropped: u64,
    /// Planned extra copies.
    pub duplicated: u64,
    /// Attempts blocked by a partition window.
    pub partition_blocked: u64,
    /// Extra attempts walked through the durable queue's backoff
    /// ([`StableQueue::record_attempt`] calls from planned retries).
    pub retries: u64,
    /// Re-sends triggered by a missing ack (crash recovery path).
    pub resends: u64,
    /// Site crashes injected.
    pub crashes: u64,
    /// Site restarts performed.
    pub restarts: u64,
}

impl ChaosStats {
    pub(crate) fn absorb(&mut self, s: &RelayStatus) {
        self.sent += s.stats.sent;
        self.delivered += s.stats.delivered;
        self.dropped += s.stats.dropped_attempts;
        self.duplicated += s.stats.duplicated;
        self.partition_blocked += s.stats.partition_blocked;
        self.retries += s.retries;
        self.resends += s.resends;
    }
}

/// Control messages understood by a relay thread.
pub(crate) enum RelayMsg {
    /// A freshly encoded MSet to enqueue durably and deliver.
    Send(Bytes),
    /// The destination journalled and applied the entry.
    Ack { entry: EntryId },
    /// Report queue depth, counters, and the fate trace.
    Status { reply: Sender<RelayStatus> },
    Shutdown,
}

/// A relay's answer to [`RelayMsg::Status`].
pub(crate) struct RelayStatus {
    /// Unacknowledged entries still owed to the destination.
    pub pending: usize,
    pub stats: NetStats,
    pub retries: u64,
    pub resends: u64,
    pub trace: Vec<TraceEvent>,
}

/// A running relay for one directed link.
pub(crate) struct RelayHandle {
    pub sender: Sender<RelayMsg>,
    pub thread: Option<JoinHandle<()>>,
    pub to: SiteId,
}

impl RelayHandle {
    /// Rendezvous for the relay's current status; `None` once shut down.
    pub fn status(&self) -> Option<RelayStatus> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.sender.send(RelayMsg::Status { reply: tx }).ok()?;
        rx.recv().ok()
    }
}

fn backoff_delay(plan: &FaultPlan, attempt: u32) -> StdDuration {
    let factor = 1u32 << attempt.saturating_sub(1).min(16);
    plan.backoff_base.saturating_mul(factor).min(plan.backoff_cap)
}

/// Spawns the relay thread for the `from -> to` link. The caller builds
/// the channel so the ack-sender half can be embedded in deliveries
/// before the thread exists. `deliver` hands a decoded MSet (tagged
/// with its queue entry) to the destination site, returning `false`
/// when the site's channel is gone (crashed) — the entry then stays
/// pending and the ack-timeout loop re-sends it.
pub(crate) fn spawn_relay(
    from: SiteId,
    to: SiteId,
    n: usize,
    plan: FaultPlan,
    queue_path: PathBuf,
    channel: (Sender<RelayMsg>, Receiver<RelayMsg>),
    deliver: impl Fn(MSet, EntryId) -> bool + Send + 'static,
) -> RelayHandle {
    let (tx, rx) = channel;
    let link = LinkConfig {
        latency: LatencyModel::Constant(VDuration::ZERO),
        drop_prob: plan.drop_prob,
        duplicate_prob: plan.duplicate_prob,
        bandwidth: None,
    };
    // One RNG stream per directed link: fates depend only on the seed
    // and this link's enqueue order, never on cross-link interleaving.
    let rng = DetRng::new(plan.seed).fork(from.raw().wrapping_mul(0x9e37) ^ to.raw());
    let handle = std::thread::Builder::new()
        .name(format!("esr-relay-{}-{}", from.raw(), to.raw()))
        .spawn(move || {
            let mut net = Network::new(Topology::full_mesh(n, link), rng)
                .with_partitions(plan.partitions.clone())
                // One retry = one logical tick, so a partition window of
                // w ticks costs at most a few planned attempts (the
                // planner jumps to the heal tick).
                .with_retry_interval(VDuration::from_millis(1))
                .with_max_attempts(4096);
            let mut queue = FileQueue::open(&queue_path)
                .unwrap_or_else(|e| panic!("open relay queue {}: {e}", queue_path.display()));
            let mut tick: u64 = 0;
            // Entries sent but not yet acked, with their last send time.
            let mut inflight: BTreeMap<EntryId, (Bytes, Instant)> = BTreeMap::new();
            let mut trace: Vec<TraceEvent> = Vec::new();
            let mut retries = 0u64;
            let mut resends = 0u64;
            let decode = |bytes: &Bytes| {
                decode_mset(bytes)
                    .unwrap_or_else(|e| panic!("relay queue holds undecodable MSet: {e}"))
            };
            loop {
                match rx.recv_timeout(StdDuration::from_millis(5)) {
                    Ok(RelayMsg::Send(bytes)) => {
                        let entry = queue.enqueue(bytes.clone());
                        let fate = net.plan_send_sized(
                            from,
                            to,
                            VirtualTime::from_millis(tick),
                            bytes.len() as u64,
                        );
                        tick += 1;
                        let attempts = fate.first().map_or(1, |d| d.attempts);
                        let duplicate = fate.len() > 1;
                        trace.push(TraceEvent {
                            from,
                            to,
                            entry: entry.0,
                            attempts,
                            duplicate,
                        });
                        // Walk the planned failures through the durable
                        // queue's attempt counter, paying real backoff
                        // for each: the delivery genuinely happens later.
                        for _ in 1..attempts {
                            if let Some(count) = queue.record_attempt(entry) {
                                retries += 1;
                                std::thread::sleep(backoff_delay(&plan, count));
                            }
                        }
                        queue.record_attempt(entry); // the successful try
                        let mset = decode(&bytes);
                        let _ = deliver(mset.clone(), entry);
                        if duplicate {
                            let _ = deliver(mset, entry);
                        }
                        inflight.insert(entry, (bytes, Instant::now()));
                    }
                    Ok(RelayMsg::Ack { entry }) => {
                        queue.ack(entry);
                        inflight.remove(&entry);
                    }
                    Ok(RelayMsg::Status { reply }) => {
                        let _ = reply.send(RelayStatus {
                            pending: queue.len(),
                            stats: net.stats(),
                            retries,
                            resends,
                            trace: trace.clone(),
                        });
                    }
                    Ok(RelayMsg::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
                    Err(RecvTimeoutError::Timeout) => {}
                }
                // Ack overdue: the destination lost the message (crash
                // drained its channel) or is still down. Re-send;
                // idempotent sites absorb the extras. Checked on every
                // loop turn — not only on channel silence, which a
                // status-polling quiescer would starve indefinitely.
                let now = Instant::now();
                for (entry, (bytes, last_send)) in inflight.iter_mut() {
                    if now.duration_since(*last_send) < plan.ack_timeout {
                        continue;
                    }
                    queue.record_attempt(*entry);
                    resends += 1;
                    let _ = deliver(decode(bytes), *entry);
                    *last_send = now;
                }
            }
        })
        .unwrap_or_else(|e| panic!("spawn relay thread {from}->{to}: {e}"));
    RelayHandle {
        sender: tx,
        thread: Some(handle),
        to,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let plan = FaultPlan::new(1);
        assert_eq!(backoff_delay(&plan, 1), StdDuration::from_micros(200));
        assert_eq!(backoff_delay(&plan, 2), StdDuration::from_micros(400));
        assert_eq!(backoff_delay(&plan, 3), StdDuration::from_micros(800));
        assert_eq!(backoff_delay(&plan, 10), plan.backoff_cap);
        assert_eq!(backoff_delay(&plan, 60), plan.backoff_cap, "no overflow");
    }

    #[test]
    fn trace_renders_one_line_per_event() {
        let events = vec![
            TraceEvent {
                from: SiteId(0),
                to: SiteId(1),
                entry: 0,
                attempts: 1,
                duplicate: false,
            },
            TraceEvent {
                from: SiteId(0),
                to: SiteId(2),
                entry: 1,
                attempts: 3,
                duplicate: true,
            },
        ];
        assert_eq!(render_trace(&events), "0->1 #0 attempts=1\n0->2 #1 attempts=3 dup\n");
    }

    #[test]
    fn fault_plan_builders_compose() {
        let p = FaultPlan::new(7).with_drops(0.3).with_duplicates(0.1);
        assert_eq!(p.seed, 7);
        assert!((p.drop_prob - 0.3).abs() < f64::EPSILON);
        assert!((p.duplicate_prob - 0.1).abs() < f64::EPSILON);
        assert_eq!(FaultPlan::tick(5), VirtualTime::from_millis(5));
    }
}
