//! Client library for talking to a running `esrd` site daemon.
//!
//! [`RpcClient`] speaks the client plane of the wire protocol: one
//! request frame per round trip, carried in [`NO_ENTRY`] envelopes (the
//! client plane is not durable — durability starts once the daemon has
//! journalled a submitted update and answered `SubmitOk`). Both
//! `esrctl` and the multi-process harness ([`crate::proc_cluster`]) are
//! built on it.
//!
//! Connections are cheap loopback sockets; harness code opens a fresh
//! client per request so a daemon restart (new port, republished
//! address file) never wedges a cached connection.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

use bytes::Bytes;

use esr_core::ids::{EtId, ObjectId, SiteId};
use esr_core::value::Value;
use esr_net::rpc::{read_frame, seal, unseal, write_frame, KIND_CLIENT, NO_ENTRY};
use esr_replica::mset::MSet;
use esr_replica::site::QueryOutcome;
use esr_replica::wire::{decode_frame, encode_frame, Frame};

use crate::daemon::resolve_addr;
use crate::spans::RawSpan;
use crate::state::SiteAudit;

/// A daemon's health summary, as reported by a `Status` round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonStatus {
    /// Is the site's protocol state settled (no backlog, nothing at
    /// risk)?
    pub settled: bool,
    /// Entries still pending in the daemon's outbound durable queues.
    pub outbound_pending: u64,
    /// The daemon's boot epoch (increments across restarts).
    pub epoch: u64,
    /// The currently installed view (0 until the first failover).
    pub view: u64,
    /// Does this site hold the coordinator role in its view?
    pub coordinator: bool,
    /// Sequence number of the newest installed checkpoint (0 = none).
    pub ckpt_seq: u64,
    /// Journalled MSets that checkpoint covers.
    pub ckpt_covered: u64,
}

/// A connected client-plane session with one daemon.
pub struct RpcClient {
    stream: TcpStream,
}

fn bad_reply(got: &Frame) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply frame: {got:?}"),
    )
}

impl RpcClient {
    /// Connects to a daemon at `addr` and identifies as a client.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500))?;
        stream.set_nodelay(true)?;
        stream.write_all(&[KIND_CLIENT])?;
        Ok(Self { stream })
    }

    /// Resolves site `site`'s published address under `dir` — waiting
    /// up to `timeout` for the daemon to come up — and connects.
    pub fn connect_dir(dir: &Path, site: SiteId, timeout: Duration) -> io::Result<Self> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(addr) = resolve_addr(dir, site) {
                // The address file may be stale (a freshly killed
                // daemon); treat connect failure as "not up yet".
                if let Ok(c) = Self::connect(addr) {
                    return Ok(c);
                }
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("site {} not reachable within {timeout:?}", site.raw()),
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn call(&mut self, request: &Frame) -> io::Result<Frame> {
        let bytes = encode_frame(request);
        write_frame(&mut self.stream, &seal(NO_ENTRY, &bytes))?;
        let env = unseal(read_frame(&mut self.stream)?)?;
        decode_frame(&Bytes::from(env.payload))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))
    }

    /// Submits an update ET. Returns once the daemon has journalled it
    /// and enqueued it to every peer.
    pub fn submit(&mut self, mset: MSet) -> io::Result<EtId> {
        match self.call(&Frame::Submit(mset))? {
            Frame::SubmitOk { et } => Ok(et),
            other => Err(bad_reply(&other)),
        }
    }

    /// Runs a query ET with an epsilon budget of `epsilon_limit`.
    pub fn query(&mut self, read_set: &[ObjectId], epsilon_limit: u64) -> io::Result<QueryOutcome> {
        let request = Frame::Query {
            read_set: read_set.to_vec(),
            epsilon_limit,
        };
        match self.call(&request)? {
            Frame::QueryOk(outcome) => Ok(outcome),
            other => Err(bad_reply(&other)),
        }
    }

    /// The site's full replica snapshot (convergence oracle input).
    pub fn snapshot(&mut self) -> io::Result<BTreeMap<ObjectId, Value>> {
        match self.call(&Frame::Snapshot)? {
            Frame::SnapshotOk { entries } => Ok(entries.into_iter().collect()),
            other => Err(bad_reply(&other)),
        }
    }

    /// The daemon's settledness/queue-depth/epoch summary.
    pub fn status(&mut self) -> io::Result<DaemonStatus> {
        match self.call(&Frame::Status)? {
            Frame::StatusOk {
                settled,
                outbound_pending,
                epoch,
                view,
                coordinator,
                ckpt_seq,
                ckpt_covered,
            } => Ok(DaemonStatus {
                settled,
                outbound_pending,
                epoch,
                view,
                coordinator,
                ckpt_seq,
                ckpt_covered,
            }),
            other => Err(bad_reply(&other)),
        }
    }

    /// The site's oracle audit (protocol logs, redelivery and journal
    /// counters; the link counters stay zero — they are a
    /// chaos-transport concept).
    pub fn audit(&mut self) -> io::Result<SiteAudit> {
        match self.call(&Frame::Audit)? {
            Frame::AuditOk(w) => Ok(SiteAudit {
                ordup_order: w.ordup_order,
                commu_order: w.commu_order,
                ritu_installs: w.ritu_installs,
                vtnc_targets: w.vtnc_targets,
                vtnc_violations: w.vtnc_violations,
                compe_events: w.compe_events,
                redelivered: w.redelivered,
                journaled: w.journaled,
                ..SiteAudit::default()
            }),
            other => Err(bad_reply(&other)),
        }
    }

    /// Issues a COMPE commit/abort decision for `et` (routed to the
    /// coordinator and broadcast from there).
    pub fn decide(&mut self, et: EtId, commit: bool) -> io::Result<()> {
        match self.call(&Frame::Decision { et, commit })? {
            Frame::DecisionOk { .. } => Ok(()),
            other => Err(bad_reply(&other)),
        }
    }

    /// Scrapes the daemon's metrics registry in Prometheus text format.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.call(&Frame::Metrics)? {
            Frame::MetricsOk { text } => Ok(text),
            other => Err(bad_reply(&other)),
        }
    }

    /// Dumps the daemon's in-memory trace ring: the number of events the
    /// bounded ring dropped, and the retained events in order.
    pub fn trace(&mut self) -> io::Result<(u64, Vec<WireTraceEvent>)> {
        match self.call(&Frame::TraceDump)? {
            Frame::TraceOk { dropped, events } => Ok((dropped, events)),
            other => Err(bad_reply(&other)),
        }
    }

    /// Dumps the daemon's esr-trace span ring for one ET (or every
    /// span, with [`crate::spans::SPAN_QUERY_ALL`]): the number of
    /// spans the bounded ring evicted, plus the retained matching
    /// `(ring_seq, micros, span)` records in order.
    pub fn spans(&mut self, et: u64) -> io::Result<(u64, Vec<RawSpan>)> {
        match self.call(&Frame::SpanQuery { et })? {
            Frame::SpanOk { dropped, spans } => Ok((dropped, spans)),
            other => Err(bad_reply(&other)),
        }
    }

    /// Asks the daemon to take a checkpoint right now, regardless of its
    /// byte-interval policy. Returns the installed `(seq, covered)`.
    pub fn checkpoint(&mut self) -> io::Result<(u64, u64)> {
        match self.call(&Frame::Checkpoint)? {
            Frame::CheckpointOk { seq, covered } => Ok((seq, covered)),
            other => Err(bad_reply(&other)),
        }
    }

    /// Downloads the daemon's newest installed checkpoint container in
    /// chunks. `Ok(None)` when the daemon has no checkpoint to offer.
    ///
    /// The serving daemon may install a newer checkpoint mid-download;
    /// the container CRC catches the resulting splice, so callers must
    /// validate with `esr_storage::snapshot::decode_container` before
    /// trusting the bytes.
    pub fn fetch_snapshot(&mut self) -> io::Result<Option<Vec<u8>>> {
        let mut out: Vec<u8> = Vec::new();
        loop {
            let want = out.len() as u64;
            match self.call(&Frame::SnapshotRequest { offset: want })? {
                Frame::SnapshotChunk {
                    total_len,
                    offset,
                    bytes,
                } => {
                    if total_len == 0 {
                        return Ok(None);
                    }
                    if offset != want || bytes.is_empty() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "bad snapshot chunk (offset mismatch or empty)",
                        ));
                    }
                    out.extend_from_slice(&bytes);
                    if out.len() as u64 >= total_len {
                        return Ok(Some(out));
                    }
                }
                other => return Err(bad_reply(&other)),
            }
        }
    }
}

/// One trace-ring event as it crosses the wire:
/// `(seq, micros-since-boot, component, message)`.
pub type WireTraceEvent = (u64, u64, String, String);
