//! # esr-runtime — thread-per-site concurrent runtime
//!
//! The replica control methods of [`esr_replica`] running on real OS
//! threads: one thread per site, crossbeam channels as the links, an
//! atomic global sequencer for ORDUP, an atomic version clock for RITU,
//! and a completion-tracker thread that releases COMMU/RITU
//! lock-counters. The paper's repro hint calls for "async replicas";
//! this runtime provides exactly that with the crates available in this
//! workspace (threads + channels instead of an async executor — the
//! protocol state machines are identical).
//!
//! The [`chaos`] module adds a seeded fault-injection transport
//! (drops, duplicates, partition windows, durable at-least-once link
//! queues) and [`recovery`] the journal/control-log machinery behind
//! [`Cluster::crash`] / [`Cluster::restart`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod ckpt;
pub mod client;
pub mod cluster;
pub mod ctrl;
pub mod daemon;
pub mod proc_cluster;
pub mod recovery;
pub mod spans;
pub mod state;

pub use chaos::{render_trace, ChaosStats, FaultPlan, TraceEvent};
pub use ckpt::{decode_payload, encode_payload, CkptPayload};
pub use client::RpcClient;
pub use cluster::{Cluster, QuiesceTimeout, RtCanary};
pub use ctrl::{CoordCore, CtrlCanary, Effect, NodeCore, NodeEvent};
pub use daemon::{Daemon, DaemonConfig};
pub use proc_cluster::ProcCluster;
pub use recovery::{ApplyJournal, ControlLog, Decision};
pub use spans::{
    critical_path, merge_timeline, render_timeline, RawSpan, SiteSpan, SpanRing, SPAN_QUERY_ALL,
};
pub use state::{RtMethod, SiteAudit, SiteState};
