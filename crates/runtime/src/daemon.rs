//! The `esrd` site daemon: one replica-control site behind real
//! sockets.
//!
//! A daemon hosts one [`SiteState`] (any of the five methods), accepts
//! peer and client connections on a loopback TCP listener, and drives
//! durable outbound [`Link`]s — one per peer site — that persistently
//! retry delivery until acknowledged (the paper's §2.2 stable-queue
//! contract, over a real network). All of the daemon's I/O — the
//! listener, every accepted connection, and every outbound link —
//! multiplexes onto one poll-driven [`Reactor`] thread; an accepted
//! connection costs a buffer pair, not an OS thread, so client fan-in
//! scales to thousands of concurrent sockets. A peer connection's
//! envelopes are dispatched in readiness-cycle batches and answered
//! with a single batched ack frame. Every accepted update MSet is
//! write-ahead journalled *before* it is applied or acknowledged, so a
//! `kill -9` never loses an acked update: the next incarnation replays
//! the journal, re-announces its applies, and catches up on everything
//! it missed through the peers' at-least-once queues.
//!
//! ## Topology and the coordinator
//!
//! Site 0 doubles as the **coordinator**: the networked analogue of the
//! thread runtime's completion tracker. Peers send it
//! [`Frame::Applied`] evidence; once every site has applied an ET it
//! broadcasts [`Frame::Complete`] (COMMU/RITU lock-counter release) or
//! advances the VTNC horizon ([`Frame::Vtnc`], RITU-MV) over the
//! durable links. COMPE decisions are routed through it the same way.
//! Because control broadcasts ride the durable queues, a site that was
//! dead during a broadcast still receives it after restarting; on every
//! peer (re)handshake the coordinator additionally re-sends a
//! [`Frame::ControlSnapshot`] so a recovering site converges even if
//! its queue files were lost. Coordinator fault tolerance is an
//! explicit non-goal of this layer (see DESIGN.md §11): the harnesses
//! never kill site 0.
//!
//! ## Discovery
//!
//! Daemons bind an ephemeral loopback port and publish it at
//! `<dir>/site-<i>.addr` (atomic tmp+rename write). Links re-resolve
//! the address file on every dial, so a restarted peer on a new port is
//! found as soon as it republishes. `<dir>/site-<i>.epoch` counts boots
//! and is echoed in the handshake.

use std::collections::{BTreeMap, HashSet};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use parking_lot::Mutex;

use esr_core::divergence::{EpsilonSpec, InconsistencyCounter};
use esr_core::ids::{EtId, SiteId, VersionTs};
use esr_core::op::Operation;
use esr_net::rpc::{
    seal, seal_acks, write_frame, Backoff, ConnKind, Envelope, Link, Reactor, RpcService,
    NO_ENTRY,
};
use esr_obs::{
    EventRing, Histogram, LinkInstruments, MetricsRegistry, ReactorInstruments, SiteInstruments,
};
use esr_replica::mset::MSet;
use esr_replica::wire::{decode_frame, encode_frame, Frame, WireAudit};
use esr_storage::stable_queue::FileQueue;

use crate::recovery::ApplyJournal;
use crate::state::{RtMethod, SiteState};

/// Everything a daemon needs to come up.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// This site's id (site 0 is the coordinator).
    pub site: SiteId,
    /// Total number of sites in the cluster.
    pub sites: usize,
    /// The replica control method to run.
    pub method: RtMethod,
    /// The cluster directory: address files, journals, and link queue
    /// files all live here (shared by every site of one cluster).
    pub dir: PathBuf,
}

/// The coordinator's completion/certification state (site 0 only).
struct Coordinator {
    n: usize,
    method: RtMethod,
    /// Per-ET apply evidence: which sites reported, and the max
    /// timestamped-write version seen (for VTNC).
    counts: BTreeMap<EtId, (HashSet<SiteId>, Option<VersionTs>)>,
    /// ETs whose completion already broadcast — late or duplicate
    /// `Applied` reports (redelivery, restart re-announcements) land
    /// here and are dropped.
    done: HashSet<EtId>,
    /// Broadcast log, replayed to recovering peers as a snapshot.
    completed_log: Vec<EtId>,
    decided: HashSet<EtId>,
    decisions_log: Vec<(EtId, bool)>,
    /// VTNC certification: fully-installed version times awaiting the
    /// dense-prefix scan (the version clock hands out 1, 2, 3, …).
    fully_installed: BTreeMap<u64, VersionTs>,
    next_time: u64,
    vtnc_max: Option<VersionTs>,
}

impl Coordinator {
    fn new(n: usize, method: RtMethod) -> Self {
        Self {
            n,
            method,
            counts: BTreeMap::new(),
            done: HashSet::new(),
            completed_log: Vec::new(),
            decided: HashSet::new(),
            decisions_log: Vec::new(),
            fully_installed: BTreeMap::new(),
            next_time: 1,
            vtnc_max: None,
        }
    }

    /// Absorbs one apply report; returns the control broadcasts it
    /// triggers (computed under the lock, sent outside it).
    fn on_applied(&mut self, site: SiteId, et: EtId, version: Option<VersionTs>) -> Vec<Frame> {
        if !self.method.tracks_completion() || self.done.contains(&et) {
            return Vec::new();
        }
        let e = self.counts.entry(et).or_insert_with(|| (HashSet::new(), None));
        e.0.insert(site);
        e.1 = e.1.max(version);
        if e.0.len() < self.n {
            return Vec::new();
        }
        let version = self.counts.remove(&et).and_then(|(_, v)| v);
        self.done.insert(et);
        if self.method == RtMethod::RituMv {
            let Some(v) = version else { return Vec::new() };
            self.fully_installed.insert(v.time, v);
            let mut horizon = None;
            while let Some(v) = self.fully_installed.remove(&self.next_time) {
                horizon = Some(v);
                self.next_time += 1;
            }
            match horizon {
                Some(h) => {
                    self.vtnc_max = Some(self.vtnc_max.map_or(h, |m| m.max(h)));
                    vec![Frame::Vtnc { ts: h }]
                }
                None => Vec::new(),
            }
        } else {
            self.completed_log.push(et);
            vec![Frame::Complete { et }]
        }
    }

    /// Absorbs a COMPE decision; returns the broadcast (once per ET).
    fn on_decision(&mut self, et: EtId, commit: bool) -> Vec<Frame> {
        if !self.decided.insert(et) {
            return Vec::new();
        }
        self.decisions_log.push((et, commit));
        vec![Frame::Decision { et, commit }]
    }

    /// The recovery snapshot sent to a (re)connecting peer.
    fn control_state(&self) -> Frame {
        Frame::ControlSnapshot {
            completed: self.completed_log.clone(),
            decisions: self.decisions_log.clone(),
            vtnc_max: self.vtnc_max,
        }
    }
}

/// Write-ahead journal plus the set of ETs already in it.
struct Journal {
    journal: ApplyJournal,
    journaled: HashSet<EtId>,
}

/// A running site daemon. Construct with [`Daemon::start`]; one
/// reactor thread drives all of its I/O in the background until the
/// process exits.
pub struct Daemon {
    cfg: DaemonConfig,
    epoch: u64,
    addr: SocketAddr,
    state: Mutex<SiteState>,
    journal: Mutex<Journal>,
    /// Durable outbound links, indexed by target site (`None` at our
    /// own slot).
    links: Vec<Option<Link>>,
    /// The poll-driven I/O thread every socket of this daemon runs on.
    /// Declared after `links` so they deregister before it joins.
    reactor: Reactor,
    /// Reactor metrics bundle (kept here to tick ack-batch sizes from
    /// the service dispatch).
    robs: ReactorInstruments,
    /// Completion/certification state; `Some` only on site 0.
    coord: Option<Mutex<Coordinator>>,
    /// This incarnation's metrics; scraped via [`Frame::Metrics`].
    metrics: MetricsRegistry,
    /// Bounded structured-event ring; dumped via [`Frame::TraceDump`].
    trace: EventRing,
    /// Boot instant — trace timestamps are micros since boot.
    boot: Instant,
    /// Wall-clock journal+apply latency per accepted MSet.
    apply_latency: Histogram,
    /// Wall-clock client-plane request handling latency.
    rpc_latency: Histogram,
}

/// The address file published by site `site` under `dir`.
pub fn addr_path(dir: &Path, site: SiteId) -> PathBuf {
    dir.join(format!("site-{}.addr", site.raw()))
}

fn epoch_path(dir: &Path, site: SiteId) -> PathBuf {
    dir.join(format!("site-{}.epoch", site.raw()))
}

fn journal_path(dir: &Path, site: SiteId) -> PathBuf {
    dir.join(format!("site-{}.journal", site.raw()))
}

fn queue_path(dir: &Path, from: SiteId, to: SiteId) -> PathBuf {
    dir.join(format!("link-{}-{}.queue", from.raw(), to.raw()))
}

/// Atomic publish: write to a tmp file, then rename into place, so a
/// concurrent reader never observes a torn address.
fn publish(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Reads the address a peer most recently published (`None` while the
/// peer is down or not yet up — the link keeps retrying).
pub fn resolve_addr(dir: &Path, site: SiteId) -> Option<SocketAddr> {
    std::fs::read_to_string(addr_path(dir, site))
        .ok()?
        .trim()
        .parse()
        .ok()
}

/// The max timestamped-write version in an MSet (the VTNC install
/// evidence an `Applied` report carries).
fn max_version(mset: &MSet) -> Option<VersionTs> {
    mset.ops
        .iter()
        .filter_map(|o| match &o.op {
            Operation::TimestampedWrite(ts, _) => Some(*ts),
            _ => None,
        })
        .max()
}

fn wire_audit(a: crate::state::SiteAudit, journaled: u64) -> WireAudit {
    WireAudit {
        ordup_order: a.ordup_order,
        commu_order: a.commu_order,
        ritu_installs: a.ritu_installs,
        vtnc_targets: a.vtnc_targets,
        vtnc_violations: a.vtnc_violations,
        compe_events: a.compe_events,
        redelivered: a.redelivered,
        journaled,
    }
}

impl Daemon {
    /// Boots the daemon: bumps the epoch, replays the journal, spawns
    /// the reactor, attaches the outbound links to it, binds a loopback
    /// listener, publishes its address, and starts accepting. Returns
    /// the running handle (the reactor thread lives until process
    /// exit).
    pub fn start(cfg: DaemonConfig) -> std::io::Result<Arc<Self>> {
        assert!(cfg.sites > 0 && (cfg.site.raw() as usize) < cfg.sites);
        std::fs::create_dir_all(&cfg.dir)?;

        // Boot epoch: crashed incarnations are distinguishable.
        let epoch = std::fs::read_to_string(epoch_path(&cfg.dir, cfg.site))
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0)
            + 1;
        publish(&epoch_path(&cfg.dir, cfg.site), &epoch.to_string())?;

        // Recovery: replay the write-ahead journal into a fresh state
        // machine. Remember what was already applied — those ETs are
        // re-announced to the coordinator below, because the previous
        // incarnation may have died before its `Applied` report was
        // durably enqueued.
        let boot = Instant::now();
        let metrics = MetricsRegistry::new();
        let trace = EventRing::default();
        let site_label = cfg.site.raw().to_string();
        let mut state = SiteState::new(cfg.method, cfg.site);
        state.enable_audit();
        state.attach_metrics(SiteInstruments::for_site(
            &metrics,
            cfg.method.name(),
            cfg.site.raw(),
        ));
        let replays = metrics.counter("esr_recovery_replays_total", &[("site", &site_label)]);
        let journal = ApplyJournal::open(journal_path(&cfg.dir, cfg.site))?;
        let mut journaled = HashSet::new();
        let mut recovered: Vec<(EtId, Option<VersionTs>)> = Vec::new();
        for mset in journal.replay() {
            journaled.insert(mset.et);
            let version = max_version(&mset);
            let et = mset.et;
            state.deliver(mset);
            replays.inc();
            if state.has_applied(et) {
                recovered.push((et, version));
            }
        }
        trace.record(
            0,
            "boot",
            format!("epoch {epoch}: replayed {} journal entries", journaled.len()),
        );

        // One reactor thread multiplexes every socket this daemon owns:
        // the listener, each accepted connection, and each outbound
        // link below.
        let robs = ReactorInstruments::for_registry(&metrics);
        let reactor = Reactor::with_instruments(robs.clone())?;

        // Durable outbound links, one per peer, all sharing the
        // reactor. The hello frame carries our id + epoch; the
        // coordinator answers a peer hello with a control snapshot.
        let hello = encode_frame(&Frame::Hello {
            site: cfg.site,
            epoch,
        });
        let mut links = Vec::with_capacity(cfg.sites);
        for j in 0..cfg.sites {
            let to = SiteId(j as u64);
            if to == cfg.site {
                links.push(None);
                continue;
            }
            let queue = FileQueue::open(queue_path(&cfg.dir, cfg.site, to))?;
            let dir = cfg.dir.clone();
            let link_obs = LinkInstruments::for_link(
                &metrics,
                &format!("{}->{}", cfg.site.raw(), to.raw()),
            );
            links.push(Some(Link::attach(
                &reactor,
                Box::new(queue),
                Box::new(move || resolve_addr(&dir, to)),
                hello.clone(),
                Backoff::default(),
                link_obs,
            )));
        }

        let coord = (cfg.site == SiteId(0))
            .then(|| Mutex::new(Coordinator::new(cfg.sites, cfg.method)));

        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;

        let apply_latency =
            metrics.histogram("esr_apply_latency_micros", &[("site", &site_label)]);
        let rpc_latency = metrics.histogram("esr_rpc_latency_micros", &[("site", &site_label)]);
        let daemon = Arc::new(Self {
            epoch,
            addr,
            state: Mutex::new(state),
            journal: Mutex::new(Journal { journal, journaled }),
            links,
            reactor,
            robs,
            coord,
            cfg,
            metrics,
            trace,
            boot,
            apply_latency,
            rpc_latency,
        });

        // Re-announce recovered applies (the coordinator deduplicates).
        for (et, version) in recovered {
            daemon.report_applied(et, version);
        }

        // Publish last: a resolvable address implies a daemon ready to
        // accept.
        publish(
            &addr_path(&daemon.cfg.dir, daemon.cfg.site),
            &addr.to_string(),
        )?;

        daemon
            .reactor
            .serve(listener, Arc::clone(&daemon) as Arc<dyn RpcService>);

        Ok(daemon)
    }

    /// The loopback address this daemon accepts on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This incarnation's boot epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn handle_peer_frame(&self, frame: Frame) {
        match frame {
            Frame::Hello { site, epoch } => {
                self.trace_event("peer", format!("hello from site {} epoch {epoch}", site.raw()));
                // Coordinator: answer every peer (re)handshake with the
                // control snapshot — idempotent replay that covers a
                // recovering site whose queue files were lost.
                if let Some(coord) = &self.coord {
                    let snapshot = coord.lock().control_state();
                    self.send_to(site, &snapshot);
                }
            }
            Frame::MSet(mset) => self.accept_mset(mset),
            Frame::Applied { site, et, version } => {
                let broadcasts = match &self.coord {
                    Some(c) => c.lock().on_applied(site, et, version),
                    None => Vec::new(),
                };
                for b in broadcasts {
                    self.broadcast_control(&b);
                }
            }
            Frame::Complete { et } => self.state.lock().complete(et),
            Frame::Vtnc { ts } => self.state.lock().advance_vtnc(ts),
            Frame::Decision { et, commit } => {
                if self.coord.is_some() {
                    // A peer forwarded a client's decision to us.
                    self.decide(et, commit);
                } else {
                    // The coordinator's broadcast: apply it here (calling
                    // `decide` would bounce it straight back).
                    let mut st = self.state.lock();
                    if commit {
                        st.commit(et);
                    } else {
                        st.abort(et);
                    }
                }
            }
            Frame::ControlSnapshot {
                completed,
                decisions,
                vtnc_max,
            } => {
                let mut st = self.state.lock();
                for et in completed {
                    st.complete(et);
                }
                for (et, commit) in decisions {
                    if commit {
                        st.commit(et);
                    } else {
                        st.abort(et);
                    }
                }
                if let Some(v) = vtnc_max {
                    st.advance_vtnc(v);
                }
            }
            // Client-plane or transport-layer frames have no business
            // on a peer link; ignore them.
            _ => {}
        }
    }

    fn handle_client_request(&self, request: Frame) -> Frame {
        match request {
            Frame::Submit(mset) => {
                let et = mset.et;
                // Fan the update out to every peer over the durable
                // links, then absorb it locally (journal + apply +
                // report).
                let bytes = encode_frame(&Frame::MSet(mset.clone()));
                for j in 0..self.cfg.sites {
                    if SiteId(j as u64) != self.cfg.site {
                        self.send_bytes(SiteId(j as u64), bytes.clone());
                    }
                }
                self.accept_mset(mset);
                Frame::SubmitOk { et }
            }
            Frame::Query {
                read_set,
                epsilon_limit,
            } => {
                let mut counter =
                    InconsistencyCounter::new(EpsilonSpec::bounded(epsilon_limit));
                Frame::QueryOk(self.state.lock().query(&read_set, &mut counter))
            }
            Frame::Snapshot => Frame::SnapshotOk {
                entries: self.state.lock().snapshot().into_iter().collect(),
            },
            Frame::Status => Frame::StatusOk {
                settled: self.state.lock().settled(),
                outbound_pending: self
                    .links
                    .iter()
                    .flatten()
                    .map(|l| l.pending() as u64)
                    .sum(),
                epoch: self.epoch,
            },
            Frame::Audit => {
                let a = self.state.lock().audit();
                let journaled = self.journal.lock().journal.entries();
                Frame::AuditOk(wire_audit(a, journaled))
            }
            Frame::Decision { et, commit } => {
                self.decide(et, commit);
                Frame::DecisionOk { et }
            }
            Frame::Metrics => Frame::MetricsOk {
                text: self.metrics.render(),
            },
            Frame::TraceDump => Frame::TraceOk {
                dropped: self.trace.dropped(),
                events: self
                    .trace
                    .entries()
                    .into_iter()
                    .map(|e| (e.seq, e.micros, e.component, e.message))
                    .collect(),
            },
            // Anything else is a protocol error; answer with an empty
            // status so the client sees *a* frame and can give up.
            _ => Frame::StatusOk {
                settled: false,
                outbound_pending: 0,
                epoch: self.epoch,
            },
        }
    }

    /// Journal (write-ahead), apply, and report the apply — the one
    /// path every update takes, whether it arrived from a client
    /// (origin) or a peer link (propagation).
    fn accept_mset(&self, mset: MSet) {
        let et = mset.et;
        let version = max_version(&mset);
        let started = Instant::now();
        {
            let mut j = self.journal.lock();
            if !j.journaled.contains(&et) {
                j.journal.record(&mset);
                j.journaled.insert(et);
            }
        }
        let newly_applied = {
            let mut st = self.state.lock();
            let before = st.has_applied(et);
            st.deliver(mset);
            !before && st.has_applied(et)
        };
        self.apply_latency
            .record(started.elapsed().as_micros() as u64);
        self.trace_event(
            "apply",
            format!(
                "et {} {}",
                et.0,
                if newly_applied { "applied" } else { "held/duplicate" }
            ),
        );
        if newly_applied {
            self.report_applied(et, version);
        }
    }

    /// Records a structured trace event stamped micros-since-boot.
    fn trace_event(&self, component: &str, message: String) {
        self.trace
            .record(self.boot.elapsed().as_micros() as u64, component, message);
    }

    /// Routes apply evidence to the coordinator (inline when we *are*
    /// the coordinator, over the durable link otherwise).
    fn report_applied(&self, et: EtId, version: Option<VersionTs>) {
        if !self.cfg.method.tracks_completion() {
            return;
        }
        match &self.coord {
            Some(c) => {
                let broadcasts = c.lock().on_applied(self.cfg.site, et, version);
                for b in broadcasts {
                    self.broadcast_control(&b);
                }
            }
            None => self.send_to(
                SiteId(0),
                &Frame::Applied {
                    site: self.cfg.site,
                    et,
                    version,
                },
            ),
        }
    }

    /// A COMPE commit/abort decision. The coordinator logs and
    /// broadcasts it; any other site forwards it to the coordinator
    /// over its durable link (the broadcast will come back around).
    fn decide(&self, et: EtId, commit: bool) {
        match &self.coord {
            Some(c) => {
                let broadcasts = c.lock().on_decision(et, commit);
                for b in broadcasts {
                    self.broadcast_control(&b);
                }
            }
            None => self.send_to(SiteId(0), &Frame::Decision { et, commit }),
        }
    }

    /// Applies a control broadcast locally and enqueues it to every
    /// peer (durable, so a currently-dead site receives it on revival).
    fn broadcast_control(&self, frame: &Frame) {
        match *frame {
            Frame::Complete { et } => {
                self.trace_event("control", format!("complete et {}", et.0));
                self.state.lock().complete(et);
            }
            Frame::Vtnc { ts } => {
                self.trace_event("control", format!("vtnc -> time {}", ts.time));
                self.state.lock().advance_vtnc(ts);
            }
            Frame::Decision { et, commit } => {
                self.trace_event(
                    "control",
                    format!("{} et {}", if commit { "commit" } else { "abort" }, et.0),
                );
                let mut st = self.state.lock();
                if commit {
                    st.commit(et);
                } else {
                    st.abort(et);
                }
            }
            _ => {}
        }
        let bytes = encode_frame(frame);
        for j in 0..self.cfg.sites {
            let to = SiteId(j as u64);
            if to != self.cfg.site {
                self.send_bytes(to, bytes.clone());
            }
        }
    }

    fn send_to(&self, to: SiteId, frame: &Frame) {
        self.send_bytes(to, encode_frame(frame));
    }

    fn send_bytes(&self, to: SiteId, bytes: Bytes) {
        if let Some(Some(link)) = self.links.get(to.raw() as usize) {
            link.send(bytes);
        }
    }
}

/// The daemon's inbound planes, dispatched in batches on the reactor
/// thread.
impl RpcService for Daemon {
    fn handle_batch(&self, kind: ConnKind, envs: Vec<Envelope>, out: &mut Vec<u8>) -> bool {
        match kind {
            // Peer plane: durable envelopes in, one batched ack frame
            // out. The ack is written only after journal + apply, so
            // the sender retires an entry only once its effect is
            // crash-durable here.
            ConnKind::Peer => {
                let mut acks = Vec::with_capacity(envs.len());
                for env in envs {
                    let entry = env.entry;
                    match decode_frame(&Bytes::from(env.payload)) {
                        Ok(f) => self.handle_peer_frame(f),
                        Err(_) => {
                            // A corrupt frame is dropped; acking it
                            // anyway prevents an infinite retransmit of
                            // a poisoned entry.
                        }
                    }
                    if entry != NO_ENTRY {
                        acks.push(entry);
                    }
                }
                if !acks.is_empty() {
                    self.robs.ack_batch(acks.len() as u64);
                    let _ = write_frame(out, &seal_acks(&acks));
                }
                true
            }
            // Client plane: one request frame in, one reply frame out,
            // in order. A malformed request closes the connection.
            ConnKind::Client => {
                for env in envs {
                    let Ok(request) = decode_frame(&Bytes::from(env.payload)) else {
                        return false;
                    };
                    let started = Instant::now();
                    let reply = self.handle_client_request(request);
                    self.rpc_latency
                        .record(started.elapsed().as_micros() as u64);
                    let bytes = encode_frame(&reply);
                    let _ = write_frame(out, &seal(NO_ENTRY, &bytes));
                }
                true
            }
        }
    }
}
