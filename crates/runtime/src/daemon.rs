//! The `esrd` site daemon: one replica-control site behind real
//! sockets.
//!
//! A daemon hosts one [`SiteState`] (any of the five methods), accepts
//! peer and client connections on a loopback TCP listener, and drives
//! durable outbound [`Link`]s — one per peer site — that persistently
//! retry delivery until acknowledged (the paper's §2.2 stable-queue
//! contract, over a real network). All of the daemon's I/O — the
//! listener, every accepted connection, and every outbound link —
//! multiplexes onto one poll-driven [`Reactor`] thread; an accepted
//! connection costs a buffer pair, not an OS thread, so client fan-in
//! scales to thousands of concurrent sockets. A peer connection's
//! envelopes are dispatched in readiness-cycle batches and answered
//! with a single batched ack frame. Every accepted update MSet is
//! write-ahead journalled *before* it is applied or acknowledged, so a
//! `kill -9` never loses an acked update: the next incarnation replays
//! the journal, re-announces its applies, and catches up on everything
//! it missed through the peers' at-least-once queues.
//!
//! ## Topology and the coordinator
//!
//! The coordinator of view `v` is site `v % sites` (view 0 → site 0):
//! the networked analogue of the thread runtime's completion tracker.
//! Peers send it [`Frame::Applied`] evidence; once every site has
//! applied an ET it broadcasts [`Frame::Complete`] (COMMU/RITU
//! lock-counter release) or advances the VTNC horizon
//! ([`Frame::Vtnc`], RITU-MV) over the durable links. COMPE decisions
//! are routed toward it the same way. Because control broadcasts ride
//! the durable queues, a site that was dead during a broadcast still
//! receives it after restarting; on every peer (re)handshake the
//! coordinator additionally re-sends a [`Frame::StartView`] snapshot so
//! a recovering site converges even if its queue files were lost.
//!
//! The coordinator role is **movable** (DESIGN.md §15): a timer thread
//! feeds [`NodeEvent::Tick`]s to the core, the acting coordinator
//! heartbeats with [`Frame::Ping`], and a follower that misses enough
//! pings elects view `v+1` via the StartViewChange / DoViewChange /
//! StartView exchange — all of it pure [`NodeCore`] logic; this file
//! only executes the resulting effects. An installed view is persisted
//! to `<dir>/site-<i>.view` (atomic tmp+rename) by
//! [`Effect::RecordView`] before any frame of the new view is sent, so
//! a rebooted site rejoins its last view rather than view 0. `kill -9`
//! of the acting coordinator is therefore survivable: the survivors
//! elect the next site, re-announce their applied ETs, and the merged
//! DoViewChange evidence carries completions/decisions/VTNC across the
//! handoff.
//!
//! ## Discovery
//!
//! Daemons bind an ephemeral loopback port and publish it at
//! `<dir>/site-<i>.addr` (atomic tmp+rename write). Links re-resolve
//! the address file on every dial, so a restarted peer on a new port is
//! found as soon as it republishes. `<dir>/site-<i>.epoch` counts boots
//! and is echoed in the handshake.

use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;

use esr_core::divergence::{EpsilonSpec, InconsistencyCounter};
use esr_core::ids::SiteId;
use esr_net::rpc::{
    seal, seal_acks, write_frame, Backoff, ConnKind, Envelope, Link, Reactor, RpcService,
    NO_ENTRY,
};
use esr_obs::{
    CkptInstruments, Counter, EventRing, Gauge, Histogram, LinkInstruments, MetricsRegistry,
    ReactorInstruments, SiteInstruments,
};
use esr_replica::mset::MSet;
use esr_replica::wire::{decode_frame, encode_frame, Frame, WireAudit};
use esr_storage::snapshot;
use esr_storage::stable_queue::FileQueue;

use crate::ckpt::{decode_payload, encode_payload, CkptPayload};
use crate::client::RpcClient;
use crate::ctrl::{Effect, NodeCore, NodeEvent};
use crate::recovery::ApplyJournal;
use crate::spans::SpanRing;
use crate::state::{RtMethod, SiteState};

/// Everything a daemon needs to come up.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// This site's id (site 0 coordinates view 0).
    pub site: SiteId,
    /// Total number of sites in the cluster.
    pub sites: usize,
    /// The replica control method to run.
    pub method: RtMethod,
    /// The cluster directory: address files, journals, snapshots, and
    /// link queue files all live here (shared by every site of one
    /// cluster).
    pub dir: PathBuf,
    /// Checkpoint policy: cut a snapshot after roughly this many bytes
    /// of journal appends. `None` disables the policy (on-demand
    /// [`Frame::Checkpoint`] still works) *and* the boot-time snapshot
    /// catch-up pull, preserving the pre-checkpoint layout exactly.
    pub ckpt_bytes: Option<u64>,
}

/// What the daemon durably knows about its checkpoint chain.
#[derive(Debug, Clone, Copy, Default)]
struct CkptState {
    /// Sequence of the newest installed snapshot (0 = none yet).
    seq: u64,
    /// Journalled-MSet count that snapshot covers.
    covered: u64,
    /// That snapshot's journal entry-id cut (`None` for a catch-up
    /// image whose ids refer to a peer's journal).
    covered_through: Option<u64>,
}

/// A running site daemon. Construct with [`Daemon::start`]; one
/// reactor thread drives all of its I/O in the background until the
/// process exits.
///
/// All protocol logic lives in the pure [`NodeCore`]
/// (`crate::ctrl`): the daemon's job is only to feed it events and
/// execute the effects it returns against the real world — the on-disk
/// journal, the durable links, and the esr-obs trace ring.
pub struct Daemon {
    cfg: DaemonConfig,
    epoch: u64,
    addr: SocketAddr,
    /// The pure control-plane state machine (replica state, journalled
    /// set, view-change machine, and — on the current view's
    /// coordinator — the coordinator core).
    core: Mutex<NodeCore>,
    /// The on-disk write-ahead journal the core's `Effect::Journal`
    /// effects append to. Lock order: `core` before `journal`.
    journal: Mutex<ApplyJournal>,
    /// Durable outbound links, indexed by target site (`None` at our
    /// own slot).
    links: Vec<Option<Link>>,
    /// The poll-driven I/O thread every socket of this daemon runs on.
    /// Declared after `links` so they deregister before it joins.
    reactor: Reactor,
    /// Reactor metrics bundle (kept here to tick ack-batch sizes from
    /// the service dispatch).
    robs: ReactorInstruments,
    /// This incarnation's metrics; scraped via [`Frame::Metrics`].
    metrics: MetricsRegistry,
    /// Bounded structured-event ring; dumped via [`Frame::TraceDump`].
    trace: EventRing,
    /// Bounded esr-trace span ring; scraped via [`Frame::SpanQuery`].
    spans: SpanRing,
    /// Boot instant — trace timestamps are micros since boot.
    boot: Instant,
    /// UNIX micros at `boot`: span stamps are `wall_base + elapsed`,
    /// so every site's spans share the host's wall epoch (what lets
    /// `esrctl spans` subtract stamps across rings on one host).
    wall_base: u64,
    /// Wall-clock journal+apply latency per accepted MSet.
    apply_latency: Histogram,
    /// Wall-clock client-plane request handling latency.
    rpc_latency: Histogram,
    /// The currently installed view (`esr_view`).
    view_gauge: Gauge,
    /// Whether this site holds the coordinator role (`esr_coordinator`).
    coordinator_gauge: Gauge,
    /// Elections this incarnation participated in (`esr_elections_total`,
    /// counted at the first StartViewChange sent per election).
    elections: Counter,
    /// Wall-clock latency from first StartViewChange sent to the next
    /// view landing durably (`esr_election_latency_micros`).
    election_latency: Histogram,
    /// When the in-progress election started (None outside elections).
    election_started: Mutex<Option<Instant>>,
    /// The checkpoint chain: newest installed snapshot seq, its covered
    /// frontier, and its journal cut. Lock order: `ckpt` before
    /// `journal`; never taken with `core` held by the writer thread
    /// (the cut itself happens under `core`, the install does not).
    ckpt: Mutex<CkptState>,
    /// Journal bytes appended since the last policy-triggered cut.
    ckpt_bytes_since: AtomicU64,
    /// Set by the policy when a cut is due; consumed by `dispatch`
    /// under the core lock so the cut is a consistent prefix.
    ckpt_due: AtomicBool,
    /// Hands cut payloads to the background writer thread so snapshot
    /// encoding + fsync never blocks the apply path.
    ckpt_tx: Mutex<mpsc::Sender<Box<CkptPayload>>>,
    /// Checkpoint/journal metrics bundle.
    ckpt_obs: CkptInstruments,
}

/// Heartbeat period: coordinators ping every tick, followers suspect
/// after [`crate::ctrl::SUSPECT_AFTER`] silent ticks (~3s).
const TICK_INTERVAL: Duration = Duration::from_millis(250);

/// Snapshot chunk size served per [`Frame::SnapshotRequest`].
const SNAP_CHUNK: usize = 256 * 1024;

/// The snapshot filename prefix for site `site` (containers land at
/// `<dir>/site-<i>.ckpt-<seq>.snap`).
fn snap_prefix(site: SiteId) -> String {
    format!("site-{}", site.raw())
}

/// Pulls the newest snapshot from any reachable peer and installs it
/// locally (wiped-site catch-up). The fetched payload's journal cut
/// refers to the *peer's* journal ids, so it is rebased to `None`
/// before the local install; our own journal is empty, so restore
/// replays nothing on top. Best-effort: an unreachable cluster just
/// means a cold boot.
fn catch_up_from_peers(cfg: &DaemonConfig, prefix: &str, trace: &EventRing) {
    for j in 0..cfg.sites {
        let peer = SiteId(j as u64);
        if peer == cfg.site {
            continue;
        }
        let Ok(mut client) = RpcClient::connect_dir(&cfg.dir, peer, Duration::from_millis(300))
        else {
            continue;
        };
        let Ok(Some(raw)) = client.fetch_snapshot() else {
            continue;
        };
        let Some((peer_seq, payload_bytes)) = snapshot::decode_container(&raw) else {
            continue;
        };
        let Some(mut payload) = decode_payload(payload_bytes) else {
            continue;
        };
        payload.covered_through = None;
        if snapshot::install(&cfg.dir, prefix, peer_seq, &encode_payload(&payload)).is_ok() {
            trace.record(
                0,
                "ckpt",
                format!(
                    "catch-up: installed snapshot seq {peer_seq} (covered {}) from site {}",
                    payload.covered,
                    peer.raw()
                ),
            );
            return;
        }
    }
}

/// The address file published by site `site` under `dir`.
pub fn addr_path(dir: &Path, site: SiteId) -> PathBuf {
    dir.join(format!("site-{}.addr", site.raw()))
}

fn epoch_path(dir: &Path, site: SiteId) -> PathBuf {
    dir.join(format!("site-{}.epoch", site.raw()))
}

fn journal_path(dir: &Path, site: SiteId) -> PathBuf {
    dir.join(format!("site-{}.journal", site.raw()))
}

/// The durably recorded view of site `site` under `dir` (absent or
/// unreadable means view 0 — the pre-failover layout).
fn view_path(dir: &Path, site: SiteId) -> PathBuf {
    dir.join(format!("site-{}.view", site.raw()))
}

fn queue_path(dir: &Path, from: SiteId, to: SiteId) -> PathBuf {
    dir.join(format!("link-{}-{}.queue", from.raw(), to.raw()))
}

/// Atomic publish: write to a tmp file, then rename into place, so a
/// concurrent reader never observes a torn address.
fn publish(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Reads the address a peer most recently published (`None` while the
/// peer is down or not yet up — the link keeps retrying).
pub fn resolve_addr(dir: &Path, site: SiteId) -> Option<SocketAddr> {
    std::fs::read_to_string(addr_path(dir, site))
        .ok()?
        .trim()
        .parse()
        .ok()
}

fn wire_audit(a: crate::state::SiteAudit, journaled: u64) -> WireAudit {
    WireAudit {
        ordup_order: a.ordup_order,
        commu_order: a.commu_order,
        ritu_installs: a.ritu_installs,
        vtnc_targets: a.vtnc_targets,
        vtnc_violations: a.vtnc_violations,
        compe_events: a.compe_events,
        redelivered: a.redelivered,
        journaled,
    }
}

impl Daemon {
    /// Boots the daemon: bumps the epoch, replays the journal, spawns
    /// the reactor, attaches the outbound links to it, binds a loopback
    /// listener, publishes its address, and starts accepting. Returns
    /// the running handle (the reactor thread lives until process
    /// exit).
    pub fn start(cfg: DaemonConfig) -> std::io::Result<Arc<Self>> {
        assert!(cfg.sites > 0 && (cfg.site.raw() as usize) < cfg.sites);
        std::fs::create_dir_all(&cfg.dir)?;

        // Boot epoch: crashed incarnations are distinguishable.
        let epoch = std::fs::read_to_string(epoch_path(&cfg.dir, cfg.site))
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0)
            + 1;
        publish(&epoch_path(&cfg.dir, cfg.site), &epoch.to_string())?;

        // Recovery: replay the write-ahead journal into a fresh state
        // machine via the pure recovery path (`NodeCore::recover`) —
        // the very code the model checker explores. Recovered applies
        // are re-announced to the coordinator through the returned
        // effects, because the previous incarnation may have died
        // before its `Applied` report was durably enqueued.
        let boot = Instant::now();
        let wall_base = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let metrics = MetricsRegistry::new();
        let trace = EventRing::default();
        let site_label = cfg.site.raw().to_string();
        let replays = metrics.counter("esr_recovery_replays_total", &[("site", &site_label)]);
        let ckpt_obs = CkptInstruments::for_site(&metrics, cfg.site.raw());
        let journal = ApplyJournal::open(journal_path(&cfg.dir, cfg.site))?;
        let prefix = snap_prefix(cfg.site);

        // Catch-up: a wiped site (no snapshot, empty journal) in a
        // checkpointing cluster pulls a peer's newest snapshot instead
        // of waiting for full retransmission — the peers may already
        // have truncated the covered prefix out of their queues.
        if cfg.ckpt_bytes.is_some()
            && cfg.sites > 1
            && journal.live_entries() == 0
            && snapshot::load_newest(&cfg.dir, &prefix).ok().flatten().is_none()
        {
            catch_up_from_peers(&cfg, &prefix, &trace);
        }

        // Rejoin the last durably installed view (0 on a cold boot):
        // the recovered core assumes the coordinator role only if the
        // view still maps to this site.
        let view = std::fs::read_to_string(view_path(&cfg.dir, cfg.site))
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0);

        // Restore-or-replay: prefer the newest decodable snapshot plus
        // the journal suffix past its cut; fall back to a full journal
        // replay when there is no snapshot or every snapshot is
        // corrupt. Either path runs the pure recovery code the model
        // checker explores.
        let mut restored: Option<(NodeCore, Vec<Effect>, CkptState)> = None;
        if let Some((snap_seq, payload_bytes)) =
            snapshot::load_newest(&cfg.dir, &prefix).ok().flatten()
        {
            if let Some(payload) = decode_payload(&payload_bytes) {
                let suffix: Vec<MSet> = journal
                    .replay_entries()
                    .into_iter()
                    .filter(|(id, _)| payload.covered_through.is_none_or(|cut| *id > cut))
                    .map(|(_, m)| m)
                    .collect();
                let replayed = suffix.len() as u64;
                let chain = CkptState {
                    seq: snap_seq,
                    covered: payload.covered,
                    covered_through: payload.covered_through,
                };
                let started = Instant::now();
                if let Some((mut core, effects)) = NodeCore::restore(
                    cfg.method,
                    cfg.site,
                    cfg.sites,
                    None,
                    view.max(payload.view),
                    payload,
                    suffix,
                ) {
                    ckpt_obs.suffix_replay(started.elapsed().as_micros() as u64);
                    // Audit logs and metrics bundles are not part of
                    // the checkpoint image; re-attach them now.
                    core.state.enable_audit();
                    core.state.attach_metrics(SiteInstruments::for_site(
                        &metrics,
                        cfg.method.name(),
                        cfg.site.raw(),
                    ));
                    for _ in 0..replayed {
                        replays.inc();
                    }
                    trace.record(
                        0,
                        "boot",
                        format!(
                            "epoch {epoch}: restored snapshot seq {snap_seq} \
                             (covered {}), replayed {replayed} suffix entries, view {}",
                            chain.covered, core.view
                        ),
                    );
                    restored = Some((core, effects, chain));
                } else {
                    trace.record(
                        0,
                        "ckpt",
                        format!("snapshot seq {snap_seq} method mismatch; full replay"),
                    );
                }
            }
        }
        let (core, recovery_effects, mut ckpt_state) = match restored {
            Some(r) => r,
            None => {
                let mut state = SiteState::new(cfg.method, cfg.site);
                state.enable_audit();
                state.attach_metrics(SiteInstruments::for_site(
                    &metrics,
                    cfg.method.name(),
                    cfg.site.raw(),
                ));
                let entries = journal.replay();
                for _ in &entries {
                    replays.inc();
                }
                trace.record(
                    0,
                    "boot",
                    format!(
                        "epoch {epoch}: replayed {} journal entries, view {view}",
                        entries.len()
                    ),
                );
                let (core, effects) = NodeCore::recover(
                    state,
                    cfg.method,
                    cfg.site,
                    cfg.sites,
                    None,
                    view,
                    entries,
                );
                (core, effects, CkptState::default())
            }
        };
        // Never re-issue a sequence number an on-disk container already
        // claims, even a corrupt one load_newest skipped.
        if let Some(newest) = snapshot::list(&cfg.dir, &prefix)
            .ok()
            .and_then(|l| l.last().map(|(seq, _)| *seq))
        {
            ckpt_state.seq = ckpt_state.seq.max(newest);
        }
        ckpt_obs.journal(journal.file_bytes(), journal.live_entries());

        // One reactor thread multiplexes every socket this daemon owns:
        // the listener, each accepted connection, and each outbound
        // link below.
        let robs = ReactorInstruments::for_registry(&metrics);
        let reactor = Reactor::with_instruments(robs.clone())?;

        // Durable outbound links, one per peer, all sharing the
        // reactor. The hello frame carries our id + epoch; the
        // coordinator answers a peer hello with a control snapshot.
        let hello = encode_frame(&Frame::Hello {
            site: cfg.site,
            epoch,
        });
        let mut links = Vec::with_capacity(cfg.sites);
        for j in 0..cfg.sites {
            let to = SiteId(j as u64);
            if to == cfg.site {
                links.push(None);
                continue;
            }
            let queue = FileQueue::open(queue_path(&cfg.dir, cfg.site, to))?;
            let dir = cfg.dir.clone();
            let link_obs = LinkInstruments::for_link(
                &metrics,
                &format!("{}->{}", cfg.site.raw(), to.raw()),
            );
            links.push(Some(Link::attach(
                &reactor,
                Box::new(queue),
                Box::new(move || resolve_addr(&dir, to)),
                hello.clone(),
                Backoff::default(),
                link_obs,
            )));
        }

        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;

        let apply_latency =
            metrics.histogram("esr_apply_latency_micros", &[("site", &site_label)]);
        let rpc_latency = metrics.histogram("esr_rpc_latency_micros", &[("site", &site_label)]);
        let view_gauge = metrics.gauge("esr_view", &[("site", &site_label)]);
        view_gauge.set(core.view as i64);
        let coordinator_gauge = metrics.gauge("esr_coordinator", &[("site", &site_label)]);
        coordinator_gauge.set(i64::from(core.coord.is_some()));
        let elections = metrics.counter("esr_elections_total", &[("site", &site_label)]);
        let election_latency =
            metrics.histogram("esr_election_latency_micros", &[("site", &site_label)]);
        let (ckpt_tx, ckpt_rx) = mpsc::channel::<Box<CkptPayload>>();
        let daemon = Arc::new(Self {
            epoch,
            addr,
            core: Mutex::new(core),
            journal: Mutex::new(journal),
            links,
            reactor,
            robs,
            cfg,
            metrics,
            trace,
            spans: SpanRing::default(),
            boot,
            wall_base,
            apply_latency,
            rpc_latency,
            view_gauge,
            coordinator_gauge,
            elections,
            election_latency,
            election_started: Mutex::new(None),
            ckpt: Mutex::new(ckpt_state),
            ckpt_bytes_since: AtomicU64::new(0),
            ckpt_due: AtomicBool::new(false),
            ckpt_tx: Mutex::new(ckpt_tx),
            ckpt_obs,
        });

        // The checkpoint writer: encodes and fsyncs cut payloads off
        // the apply path. Holds a Weak so a dropped daemon (in-process
        // tests) lets the thread exit when the sender disconnects.
        let ckpt_target = Arc::downgrade(&daemon);
        std::thread::Builder::new()
            .name(format!("esrd-ckpt-{}", daemon.cfg.site.raw()))
            .spawn(move || {
                while let Ok(payload) = ckpt_rx.recv() {
                    let Some(daemon) = ckpt_target.upgrade() else {
                        break;
                    };
                    daemon.install_ckpt(&payload);
                }
            })?;

        // Execute the recovery effects: replay trace events plus the
        // re-announcement of recovered applies (the coordinator
        // deduplicates).
        daemon.perform(recovery_effects);

        // Publish last: a resolvable address implies a daemon ready to
        // accept.
        publish(
            &addr_path(&daemon.cfg.dir, daemon.cfg.site),
            &addr.to_string(),
        )?;

        daemon
            .reactor
            .serve(listener, Arc::clone(&daemon) as Arc<dyn RpcService>);

        // The heartbeat timer: the only place wall-clock time enters
        // the protocol, and it enters as a bare tick count. Holds a
        // Weak so a dropped daemon (in-process tests) stops ticking.
        let tick_target = Arc::downgrade(&daemon);
        std::thread::Builder::new()
            .name(format!("esrd-tick-{}", daemon.cfg.site.raw()))
            .spawn(move || loop {
                std::thread::sleep(TICK_INTERVAL);
                let Some(daemon) = tick_target.upgrade() else {
                    break;
                };
                daemon.dispatch(NodeEvent::Tick);
            })?;

        Ok(daemon)
    }

    /// The loopback address this daemon accepts on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This incarnation's boot epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Feeds one event through the pure core and executes its effects
    /// in order. The core lock is held across effect execution so that
    /// a duplicate delivery racing this step cannot be acknowledged
    /// before this step's journal append is durable.
    fn dispatch(&self, event: NodeEvent) {
        let mut core = self.core.lock();
        let effects = core.step(event);
        let coordinator = core.coord.is_some();
        self.perform(effects);
        // A policy-due cut happens under the same core lock, so the
        // payload is a consistent prefix of everything journalled so
        // far. The cut itself is cheap (a clone of the bookkeeping);
        // encoding and fsync happen on the writer thread.
        if self.ckpt_due.swap(false, Ordering::Relaxed) {
            let through = self.journal.lock().last_id();
            let effects = core.step(NodeEvent::Checkpoint { through });
            self.perform(effects);
        }
        self.coordinator_gauge.set(i64::from(coordinator));
    }

    /// Executes core effects against the real world, strictly in
    /// order: journal appends hit disk, view records land durably,
    /// sends enqueue on the durable links, trace effects land in the
    /// esr-obs ring.
    fn perform(&self, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Journal(mset) => {
                    let (bytes, file_bytes, live) = {
                        let mut journal = self.journal.lock();
                        let bytes = journal.record(&mset);
                        (bytes, journal.file_bytes(), journal.live_entries())
                    };
                    self.ckpt_obs.journal(file_bytes, live);
                    if let Some(limit) = self.cfg.ckpt_bytes {
                        let since =
                            self.ckpt_bytes_since.fetch_add(bytes, Ordering::Relaxed) + bytes;
                        if since >= limit {
                            self.ckpt_bytes_since.store(0, Ordering::Relaxed);
                            self.ckpt_due.store(true, Ordering::Relaxed);
                        }
                    }
                }
                Effect::Checkpoint(payload) => {
                    let _ = self.ckpt_tx.lock().send(payload);
                }
                Effect::RecordView(view) => self.record_view(view),
                Effect::Send { to, frame } => {
                    // The first StartViewChange of an election marks
                    // its start for the latency histogram.
                    if matches!(frame, Frame::StartViewChange { .. }) {
                        let mut started = self.election_started.lock();
                        if started.is_none() {
                            *started = Some(Instant::now());
                            self.elections.inc();
                        }
                    }
                    self.send_bytes(to, encode_frame(&frame));
                }
                Effect::Trace { component, message } => self.trace_event(component, message),
                Effect::Span(rec) => self
                    .spans
                    .record(self.wall_base + self.boot.elapsed().as_micros() as u64, rec),
            }
        }
    }

    /// Durably installs a view: atomic file write (the same tmp+rename
    /// publish as the address file — ordered before any send of the new
    /// view by `perform`'s in-order execution), then the obs gauges.
    fn record_view(&self, view: u64) {
        let _ = publish(
            &view_path(&self.cfg.dir, self.cfg.site),
            &view.to_string(),
        );
        self.view_gauge.set(view as i64);
        if let Some(started) = self.election_started.lock().take() {
            self.election_latency
                .record(started.elapsed().as_micros() as u64);
        }
    }

    fn handle_peer_frame(&self, frame: Frame) {
        let timed = matches!(frame, Frame::MSet(_));
        let started = Instant::now();
        self.dispatch(NodeEvent::PeerFrame(frame));
        if timed {
            self.apply_latency
                .record(started.elapsed().as_micros() as u64);
        }
    }

    fn handle_client_request(&self, request: Frame) -> Frame {
        match request {
            Frame::Submit(mset) => {
                // Exactly-once: a retried request (same client id +
                // request seq) is answered from the client table with
                // the *original* ET — byte-identical to the first
                // SubmitOk — even if the retry was re-stamped.
                if let Some((cid, seq)) = mset.client {
                    if let Some(et) = self.core.lock().cached_et(cid, seq) {
                        self.trace_event(
                            "client",
                            format!(
                                "duplicate submit client {} seq {seq} -> et {}",
                                cid.raw(),
                                et.0
                            ),
                        );
                        return Frame::SubmitOk { et };
                    }
                }
                let et = mset.et;
                let started = Instant::now();
                self.dispatch(NodeEvent::ClientSubmit(mset));
                self.apply_latency
                    .record(started.elapsed().as_micros() as u64);
                Frame::SubmitOk { et }
            }
            Frame::Query {
                read_set,
                epsilon_limit,
            } => {
                let mut counter =
                    InconsistencyCounter::new(EpsilonSpec::bounded(epsilon_limit));
                Frame::QueryOk(self.core.lock().state.query(&read_set, &mut counter))
            }
            Frame::Snapshot => Frame::SnapshotOk {
                entries: self.core.lock().state.snapshot().into_iter().collect(),
            },
            Frame::Status => {
                let (settled, view, coordinator) = {
                    let core = self.core.lock();
                    (core.state.settled(), core.view, core.coord.is_some())
                };
                let (ckpt_seq, ckpt_covered) = self.ckpt_status();
                Frame::StatusOk {
                    settled,
                    outbound_pending: self
                        .links
                        .iter()
                        .flatten()
                        .map(|l| l.pending() as u64)
                        .sum(),
                    epoch: self.epoch,
                    view,
                    coordinator,
                    ckpt_seq,
                    ckpt_covered,
                }
            }
            Frame::Audit => {
                let a = self.core.lock().state.audit();
                let journaled = self.journal.lock().entries();
                Frame::AuditOk(wire_audit(a, journaled))
            }
            Frame::Decision { et, commit } => {
                self.dispatch(NodeEvent::ClientDecision { et, commit });
                Frame::DecisionOk { et }
            }
            Frame::Checkpoint => {
                let (seq, covered) = self.take_checkpoint();
                Frame::CheckpointOk { seq, covered }
            }
            Frame::SnapshotRequest { offset } => {
                // Serve the raw newest container (CRC and all) in
                // bounded chunks; the fetcher validates the container
                // end-to-end. `total_len == 0` means "no snapshot yet".
                let prefix = snap_prefix(self.cfg.site);
                match snapshot::load_newest_raw(&self.cfg.dir, &prefix).ok().flatten() {
                    Some((_, raw)) => {
                        let total_len = raw.len() as u64;
                        let start = (offset.min(total_len)) as usize;
                        let end = (start + SNAP_CHUNK).min(raw.len());
                        Frame::SnapshotChunk {
                            total_len,
                            offset,
                            bytes: raw[start..end].to_vec(),
                        }
                    }
                    None => Frame::SnapshotChunk {
                        total_len: 0,
                        offset: 0,
                        bytes: Vec::new(),
                    },
                }
            }
            Frame::Metrics => Frame::MetricsOk {
                text: self.metrics.render(),
            },
            Frame::SpanQuery { et } => Frame::SpanOk {
                dropped: self.spans.dropped(),
                spans: self.spans.query(et),
            },
            Frame::TraceDump => Frame::TraceOk {
                dropped: self.trace.dropped(),
                events: self
                    .trace
                    .entries()
                    .into_iter()
                    .map(|e| (e.seq, e.micros, e.component, e.message))
                    .collect(),
            },
            // Anything else is a protocol error; answer with an empty
            // status so the client sees *a* frame and can give up.
            _ => Frame::StatusOk {
                settled: false,
                outbound_pending: 0,
                epoch: self.epoch,
                view: 0,
                coordinator: false,
                ckpt_seq: 0,
                ckpt_covered: 0,
            },
        }
    }

    /// The newest installed snapshot's (seq, covered frontier).
    fn ckpt_status(&self) -> (u64, u64) {
        let st = self.ckpt.lock();
        (st.seq, st.covered)
    }

    /// An on-demand checkpoint (`esrctl checkpoint`): cuts a consistent
    /// payload under the core lock, then installs it synchronously so
    /// the reply reflects the new snapshot. Works with the byte policy
    /// disabled.
    fn take_checkpoint(&self) -> (u64, u64) {
        let payload = {
            let mut core = self.core.lock();
            let through = self.journal.lock().last_id();
            let effects = core.step(NodeEvent::Checkpoint { through });
            let mut payload = None;
            for effect in effects {
                match effect {
                    Effect::Checkpoint(p) => payload = Some(p),
                    Effect::Trace { component, message } => self.trace_event(component, message),
                    _ => {}
                }
            }
            payload
        };
        match payload {
            Some(p) => self.install_ckpt(&p),
            None => self.ckpt_status(),
        }
    }

    /// Installs a cut payload as the next snapshot in the chain, then
    /// retires the journal prefix the *previous* snapshot covered
    /// (lag-by-one: the newest snapshot's own prefix stays live so a
    /// corrupt-newest fallback to snapshot N-1 still finds its suffix).
    /// Keeps the two newest containers on disk for the same reason.
    fn install_ckpt(&self, payload: &CkptPayload) -> (u64, u64) {
        let mut st = self.ckpt.lock();
        if payload.covered < st.covered {
            // A stale cut raced a newer install; the chain only moves
            // forward.
            return (st.seq, st.covered);
        }
        let started = Instant::now();
        let bytes = encode_payload(payload);
        let seq = st.seq + 1;
        let prefix = snap_prefix(self.cfg.site);
        if let Err(e) = snapshot::install(&self.cfg.dir, &prefix, seq, &bytes) {
            self.trace_event("ckpt", format!("install seq={seq} failed: {e}"));
            return (st.seq, st.covered);
        }
        self.ckpt_obs.installed(
            (bytes.len() + snapshot::SNAP_OVERHEAD) as u64,
            started.elapsed().as_micros() as u64,
        );
        self.trace_event(
            "ckpt",
            format!("install seq={seq} covered={}", payload.covered),
        );
        let previous_cut = st.covered_through;
        st.seq = seq;
        st.covered = payload.covered;
        st.covered_through = payload.covered_through;
        if let Some(cut) = previous_cut {
            let (retired, file_bytes, live) = {
                let mut journal = self.journal.lock();
                let retired = journal.retire_through(cut);
                (retired, journal.file_bytes(), journal.live_entries())
            };
            if retired > 0 {
                self.ckpt_obs.truncated(retired);
                self.ckpt_obs.journal(file_bytes, live);
                self.trace_event("ckpt", format!("truncate through={cut} retired={retired}"));
            }
        }
        let _ = snapshot::retain(&self.cfg.dir, &prefix, 2);
        (st.seq, st.covered)
    }

    /// Records a structured trace event stamped micros-since-boot.
    fn trace_event(&self, component: &str, message: String) {
        self.trace
            .record(self.boot.elapsed().as_micros() as u64, component, message);
    }

    fn send_bytes(&self, to: SiteId, bytes: Bytes) {
        if let Some(Some(link)) = self.links.get(to.raw() as usize) {
            link.send(bytes);
        }
    }
}

/// The daemon's inbound planes, dispatched in batches on the reactor
/// thread.
impl RpcService for Daemon {
    fn handle_batch(&self, kind: ConnKind, envs: Vec<Envelope>, out: &mut Vec<u8>) -> bool {
        match kind {
            // Peer plane: durable envelopes in, one batched ack frame
            // out. The ack is written only after journal + apply, so
            // the sender retires an entry only once its effect is
            // crash-durable here.
            ConnKind::Peer => {
                let mut acks = Vec::with_capacity(envs.len());
                for env in envs {
                    let entry = env.entry;
                    match decode_frame(&Bytes::from(env.payload)) {
                        Ok(f) => self.handle_peer_frame(f),
                        Err(_) => {
                            // A corrupt frame is dropped; acking it
                            // anyway prevents an infinite retransmit of
                            // a poisoned entry.
                        }
                    }
                    if entry != NO_ENTRY {
                        acks.push(entry);
                    }
                }
                if !acks.is_empty() {
                    self.robs.ack_batch(acks.len() as u64);
                    let _ = write_frame(out, &seal_acks(&acks));
                }
                true
            }
            // Client plane: one request frame in, one reply frame out,
            // in order. A malformed request closes the connection.
            ConnKind::Client => {
                for env in envs {
                    let Ok(request) = decode_frame(&Bytes::from(env.payload)) else {
                        return false;
                    };
                    let started = Instant::now();
                    let reply = self.handle_client_request(request);
                    self.rpc_latency
                        .record(started.elapsed().as_micros() as u64);
                    let bytes = encode_frame(&reply);
                    let _ = write_frame(out, &seal(NO_ENTRY, &bytes));
                }
                true
            }
        }
    }
}
