//! esr-trace: the per-daemon span ring and the cross-site timeline
//! merge.
//!
//! Each daemon appends every [`Effect::Span`](crate::ctrl::Effect)
//! its core emits to a bounded [`SpanRing`] — the tracing plane's
//! flight recorder, shaped like the esr-obs `EventRing` but typed.
//! `esrctl spans <et>` then scrapes every site's ring over the client
//! plane ([`Frame::SpanQuery`](esr_replica::wire::Frame)) and calls
//! [`merge_timeline`] to stitch the records into one causal timeline.
//!
//! ## Merge rules (DESIGN.md §17)
//!
//! Wall clocks across sites are never compared to *order* the
//! timeline: ordering comes exclusively from the protocol's
//! happens-before edges, which the stage vocabulary encodes directly —
//!
//! ```text
//! submit@origin < enqueue@origin->p < deliver@p < held@p < apply@p
//! apply@every-site < complete-cert@coord < complete@site
//! decision-cert@coord < decision@site ; vtnc-cert@coord < vtnc@site
//! ```
//!
//! Every stage therefore gets a fixed causal rank; ties (genuinely
//! concurrent spans, e.g. two sites' applies) break deterministically
//! by origin-first, then site id, then per-ring sequence — so the same
//! execution always renders the same timeline, byte for byte.
//!
//! Wall stamps are still *shown* (and subtracted for the critical-path
//! breakdown): on one host — the proc-cluster and bench topology —
//! they share a clock and the durations are exact; across hosts the
//! ordering stays exact while durations inherit clock skew.
//!
//! ## Overflow
//!
//! The ring is bounded ([`SPAN_RING_CAPACITY`]); overflow evicts the
//! oldest records and counts them, mirroring the event ring. A merge
//! over a ring that dropped records still orders what remains
//! correctly (ranks are per-record), but the critical path may lose
//! edges — `esrctl spans` surfaces the per-site drop counters so a
//! truncated answer is never mistaken for a complete one (the same
//! honesty rule the trace certifier applies to `EventRing` overflow).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};

use esr_core::ids::{EtId, SiteId, VersionTs};
use esr_replica::span::{SpanRec, SpanStage};

/// Default per-daemon span ring capacity. At ~10 spans per ET
/// lifecycle this retains the last few thousand ETs — enough to trace
/// any ET a load driver just pushed, in bounded memory.
pub const SPAN_RING_CAPACITY: usize = 65_536;

/// The `et` value in a [`Frame::SpanQuery`](esr_replica::wire::Frame)
/// that selects every retained span.
pub const SPAN_QUERY_ALL: u64 = u64::MAX;

#[derive(Debug, Default)]
struct SpanRingInner {
    spans: VecDeque<(u64, u64, SpanRec)>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, shareable ring of `(ring_seq, micros, span)` records.
/// Cloning shares the ring.
#[derive(Debug, Clone)]
pub struct SpanRing {
    inner: Arc<Mutex<SpanRingInner>>,
    capacity: usize,
}

impl SpanRing {
    /// A ring holding at most `capacity` spans (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(SpanRingInner::default())),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SpanRingInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Appends one span stamped with caller-supplied micros (wall in
    /// the daemon; the ring itself never reads a clock).
    pub fn record(&self, micros: u64, rec: SpanRec) {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.spans.len() == self.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back((seq, micros, rec));
    }

    /// Retained spans matching `et` ([`SPAN_QUERY_ALL`] selects all),
    /// oldest first. VTNC horizon spans carry no ET and match every
    /// query: the caller attributes them via apply versions.
    pub fn query(&self, et: u64) -> Vec<(u64, u64, SpanRec)> {
        self.lock()
            .spans
            .iter()
            .filter(|(_, _, r)| {
                et == SPAN_QUERY_ALL || r.et.is_none() || r.et == Some(EtId(et))
            })
            .copied()
            .collect()
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.lock().spans.len()
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.lock().spans.is_empty()
    }
}

impl Default for SpanRing {
    fn default() -> Self {
        Self::new(SPAN_RING_CAPACITY)
    }
}

/// A span as it comes off the wire: `(ring seq, wall micros, record)`.
pub type RawSpan = (u64, u64, SpanRec);

/// One span as it appears in a merged cross-site timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteSpan {
    /// The site whose ring recorded it.
    pub site: SiteId,
    /// Its per-ring sequence number (causal order *within* the site).
    pub seq: u64,
    /// Its wall stamp (UNIX micros at the recording site).
    pub micros: u64,
    /// The record itself.
    pub rec: SpanRec,
}

/// The fixed causal rank of a stage — the happens-before skeleton the
/// merge linearizes along. Replay shares Apply's rank: it is the
/// post-crash stand-in for the same hop.
fn rank(stage: SpanStage) -> u8 {
    match stage {
        SpanStage::Submit => 0,
        SpanStage::Enqueue => 1,
        SpanStage::Deliver => 2,
        SpanStage::Held => 3,
        SpanStage::Apply | SpanStage::Replay => 4,
        SpanStage::CompleteCert => 5,
        SpanStage::Complete => 6,
        SpanStage::DecisionCert => 7,
        SpanStage::Decision => 8,
        SpanStage::VtncCert => 9,
        SpanStage::Vtnc => 10,
    }
}

/// Merges per-site span dumps into one causally ordered timeline for
/// `et`.
///
/// Ordering is happens-before only (see the module doc): stage rank,
/// then origin-site-first, then site id, then ring seq — never wall
/// clocks. Exact duplicates of the same hop at the same site (a
/// re-delivered MSet, a re-driven control broadcast) keep the first
/// record. VTNC horizon spans (no ET) are attributed to `et` by
/// version: only horizons at or past the ET's max applied version are
/// kept, and only the first qualifying one per site *and stage* — the
/// moment this ET became VTNC-certified / VTNC-visible there (the
/// coordinator records both: its certificate and its own observation).
/// An ET with no versioned apply keeps no VTNC spans.
pub fn merge_timeline(
    per_site: &[(SiteId, Vec<RawSpan>)],
    et: EtId,
) -> Vec<SiteSpan> {
    // The ET's version horizon target, from any apply/replay span.
    let et_version: Option<VersionTs> = per_site
        .iter()
        .flat_map(|(_, spans)| spans.iter())
        .filter(|(_, _, r)| {
            r.et == Some(et)
                && matches!(r.stage, SpanStage::Apply | SpanStage::Replay)
        })
        .filter_map(|(_, _, r)| r.version)
        .max();
    // The origin site, identified by who recorded the submit span.
    let origin: Option<SiteId> = per_site
        .iter()
        .find(|(_, spans)| {
            spans
                .iter()
                .any(|(_, _, r)| r.et == Some(et) && r.stage == SpanStage::Submit)
        })
        .map(|(site, _)| *site);

    let mut out: Vec<SiteSpan> = Vec::new();
    let mut seen: Vec<(SiteId, SpanStage, Option<SiteId>)> = Vec::new();
    for (site, spans) in per_site {
        // (certificate seen, observation seen) — tracked separately so
        // the coordinator keeps both its vtnc-cert and its own vtnc.
        let mut vtnc_done = (false, false);
        for &(seq, micros, rec) in spans {
            let keep = match rec.et {
                Some(e) => e == et,
                // A horizon span: visible iff it covers the ET's
                // version, and only the first such per site and stage.
                None => match (et_version, rec.version) {
                    (Some(target), Some(h)) if h >= target => {
                        let slot = if rec.stage == SpanStage::VtncCert {
                            &mut vtnc_done.0
                        } else {
                            &mut vtnc_done.1
                        };
                        !std::mem::replace(slot, true)
                    }
                    _ => false,
                },
            };
            if !keep {
                continue;
            }
            let key = (*site, rec.stage, rec.peer);
            if rec.et.is_some() && seen.contains(&key) {
                continue; // duplicate hop: keep the first record
            }
            seen.push(key);
            out.push(SiteSpan {
                site: *site,
                seq,
                micros,
                rec,
            });
        }
    }
    out.sort_by_key(|s| {
        (
            rank(s.rec.stage),
            Some(s.site) != origin, // origin's span of a rank leads
            s.site,
            s.seq,
        )
    });
    out
}

/// One edge of the latency attribution: a label and its duration in
/// micros (`None` when either endpoint span is missing, e.g. evicted
/// by ring overflow or lost to a crash).
pub type PathEdge = (String, Option<u64>);

/// Attributes the ET's end-to-end latency to protocol stages, from a
/// merged timeline. Durations subtract wall stamps and assume the
/// sites share a clock (exact in the proc-cluster / bench topology;
/// approximate across hosts — the module doc's caveat).
pub fn critical_path(timeline: &[SiteSpan]) -> Vec<PathEdge> {
    let find = |stage: SpanStage, site: Option<SiteId>| -> Option<&SiteSpan> {
        timeline.iter().find(|s| {
            s.rec.stage == stage && site.is_none_or(|want| s.site == want)
        })
    };
    let sub = |a: Option<&SiteSpan>, b: Option<&SiteSpan>| -> Option<u64> {
        Some(a?.micros.saturating_sub(b?.micros))
    };
    let submit = find(SpanStage::Submit, None);
    let mut edges: Vec<PathEdge> = Vec::new();
    // Client queue wait: from the client's own wall stamp to the
    // daemon accepting the submit.
    if let Some(s) = submit {
        edges.push((
            "client queue".into(),
            s.rec.t0.map(|t0| s.micros.saturating_sub(t0)),
        ));
    }
    let origin = submit.map(|s| s.site);
    if let Some(origin) = origin {
        let local_apply = find(SpanStage::Apply, Some(origin))
            .or_else(|| find(SpanStage::Replay, Some(origin)));
        edges.push(("local apply".into(), sub(local_apply, submit)));
        // Per-peer propagation and hold-back, in site order.
        let mut peers: Vec<SiteId> = timeline
            .iter()
            .filter(|s| s.site != origin)
            .map(|s| s.site)
            .collect();
        peers.sort_unstable();
        peers.dedup();
        for peer in peers {
            let enqueue = timeline.iter().find(|s| {
                s.rec.stage == SpanStage::Enqueue && s.rec.peer == Some(peer)
            });
            let deliver = find(SpanStage::Deliver, Some(peer));
            let apply = find(SpanStage::Apply, Some(peer))
                .or_else(|| find(SpanStage::Replay, Some(peer)));
            edges.push((format!("{peer} transit"), sub(deliver, enqueue)));
            edges.push((format!("{peer} hold-back"), sub(apply, deliver)));
        }
    }
    // Control-plane tail: certification and per-site visibility.
    let last_apply = timeline
        .iter()
        .filter(|s| matches!(s.rec.stage, SpanStage::Apply | SpanStage::Replay))
        .max_by_key(|s| s.micros);
    for (cert, learn, label) in [
        (SpanStage::CompleteCert, SpanStage::Complete, "complete"),
        (SpanStage::DecisionCert, SpanStage::Decision, "decision"),
        (SpanStage::VtncCert, SpanStage::Vtnc, "vtnc"),
    ] {
        let cert_span = find(cert, None);
        if let Some(c) = cert_span {
            edges.push((format!("{label} certify"), sub(Some(c), last_apply)));
            let last_learned = timeline
                .iter()
                .filter(|s| s.rec.stage == learn)
                .max_by_key(|s| s.micros);
            edges.push((
                format!("{label} visibility"),
                sub(last_learned, Some(c)),
            ));
        }
    }
    edges
}

/// Renders a merged timeline. Full mode shows wall stamps relative to
/// the first span plus the critical-path breakdown; skeleton mode
/// (`skeleton = true`) drops every nondeterministic column (stamps,
/// ring seqs, durations) and prints only the causal skeleton — two
/// same-seed runs of a deterministic workload render byte-identical
/// skeletons, which CI asserts.
pub fn render_timeline(timeline: &[SiteSpan], skeleton: bool) -> String {
    let mut out = String::new();
    let base = timeline.iter().map(|s| s.micros).min().unwrap_or(0);
    for s in timeline {
        if skeleton {
            let mut rec = s.rec;
            rec.t0 = None; // wall stamp: nondeterministic
            let _ = writeln!(out, "{} {}", s.site, rec);
        } else {
            let _ = writeln!(out, "+{:>8}us {} {}", s.micros - base, s.site, s.rec);
        }
    }
    if !skeleton {
        for (label, micros) in critical_path(timeline) {
            match micros {
                Some(us) => {
                    let _ = writeln!(out, "path {label:<16} {us:>8}us");
                }
                None => {
                    let _ = writeln!(out, "path {label:<16}        ?");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::ids::ClientId;

    fn et() -> EtId {
        EtId(7)
    }

    /// A 3-site lifecycle dump: submit at s0, propagate to s1/s2,
    /// complete. Wall stamps are deliberately adversarial (s1's clock
    /// runs "ahead") to prove ordering ignores them.
    fn three_site_dump() -> Vec<(SiteId, Vec<RawSpan>)> {
        let e = et();
        vec![
            (
                SiteId(0),
                vec![
                    (0, 100, SpanRec::new(SpanStage::Submit, e).with_t0(Some(40))),
                    (1, 101, SpanRec::new(SpanStage::Enqueue, e).to_peer(SiteId(1))),
                    (2, 102, SpanRec::new(SpanStage::Enqueue, e).to_peer(SiteId(2))),
                    (3, 110, SpanRec::new(SpanStage::Deliver, e)),
                    (4, 120, SpanRec::new(SpanStage::Apply, e)),
                    (5, 500, SpanRec::new(SpanStage::CompleteCert, e)),
                    (6, 510, SpanRec::new(SpanStage::Complete, e)),
                ],
            ),
            (
                SiteId(1),
                vec![
                    (0, 9_000, SpanRec::new(SpanStage::Deliver, e)),
                    (1, 9_100, SpanRec::new(SpanStage::Apply, e)),
                    (2, 9_800, SpanRec::new(SpanStage::Complete, e)),
                ],
            ),
            (
                SiteId(2),
                vec![
                    (0, 300, SpanRec::new(SpanStage::Deliver, e)),
                    (1, 310, SpanRec::new(SpanStage::Apply, e)),
                    (2, 560, SpanRec::new(SpanStage::Complete, e)),
                ],
            ),
        ]
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let ring = SpanRing::new(3);
        for i in 0..5u64 {
            ring.record(i, SpanRec::new(SpanStage::Apply, EtId(i)));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let spans = ring.query(SPAN_QUERY_ALL);
        assert_eq!(spans[0].0, 2, "oldest two evicted");
        assert!(!ring.is_empty());
    }

    #[test]
    fn query_filters_by_et_but_always_yields_horizons() {
        let ring = SpanRing::new(16);
        ring.record(0, SpanRec::new(SpanStage::Apply, EtId(1)));
        ring.record(1, SpanRec::new(SpanStage::Apply, EtId(2)));
        ring.record(
            2,
            SpanRec::vtnc(SpanStage::Vtnc, VersionTs::new(5, ClientId(0))),
        );
        let one = ring.query(1);
        assert_eq!(one.len(), 2, "et1 apply + the horizon span");
        assert!(one.iter().any(|(_, _, r)| r.et.is_none()));
        assert_eq!(ring.query(SPAN_QUERY_ALL).len(), 3);
    }

    #[test]
    fn merge_orders_by_happens_before_not_clocks() {
        let timeline = merge_timeline(&three_site_dump(), et());
        let stages: Vec<(u64, SpanStage)> = timeline
            .iter()
            .map(|s| (s.site.raw(), s.rec.stage))
            .collect();
        // s1's wall clock is ~9ms ahead, yet its deliver sits with the
        // other delivers, strictly after both enqueues.
        let pos = |site: u64, stage: SpanStage| {
            stages.iter().position(|&(s, g)| s == site && g == stage).unwrap()
        };
        assert_eq!(pos(0, SpanStage::Submit), 0, "submit roots the timeline");
        assert!(pos(0, SpanStage::Enqueue) < pos(1, SpanStage::Deliver));
        assert!(pos(1, SpanStage::Deliver) < pos(1, SpanStage::Apply));
        assert!(pos(2, SpanStage::Apply) < pos(0, SpanStage::CompleteCert));
        assert!(pos(0, SpanStage::CompleteCert) < pos(1, SpanStage::Complete));
        // Origin-first tie-break within a rank.
        assert!(pos(0, SpanStage::Deliver) < pos(1, SpanStage::Deliver));
    }

    #[test]
    fn merge_dedups_redelivered_hops() {
        let mut dump = three_site_dump();
        // s2 sees the MSet twice (at-least-once link): second deliver
        // record must not appear in the timeline.
        dump[2].1.push((3, 999, SpanRec::new(SpanStage::Deliver, et())));
        let timeline = merge_timeline(&dump, et());
        let delivers = timeline
            .iter()
            .filter(|s| s.site == SiteId(2) && s.rec.stage == SpanStage::Deliver)
            .count();
        assert_eq!(delivers, 1);
    }

    #[test]
    fn vtnc_horizons_attach_by_version() {
        let e = et();
        let v3 = VersionTs::new(3, ClientId(0));
        let v2 = VersionTs::new(2, ClientId(0));
        let dump = vec![(
            SiteId(0),
            vec![
                (0, 10, SpanRec::new(SpanStage::Submit, e)),
                (1, 20, SpanRec::new(SpanStage::Apply, e).with_version(Some(v3))),
                // Below the ET's version: not its visibility moment.
                (2, 30, SpanRec::vtnc(SpanStage::Vtnc, v2)),
                (3, 40, SpanRec::vtnc(SpanStage::Vtnc, v3)),
                // Later horizon: redundant for this ET.
                (4, 50, SpanRec::vtnc(SpanStage::Vtnc, VersionTs::new(9, ClientId(0)))),
            ],
        )];
        let timeline = merge_timeline(&dump, e);
        let horizons: Vec<&SiteSpan> = timeline
            .iter()
            .filter(|s| s.rec.stage == SpanStage::Vtnc)
            .collect();
        assert_eq!(horizons.len(), 1);
        assert_eq!(horizons[0].rec.version, Some(v3));
    }

    #[test]
    fn replay_substitutes_for_a_lost_apply() {
        let e = et();
        let mut dump = three_site_dump();
        // s2 crashed after applying: its ring died, recovery re-emitted
        // the hop as a replay span.
        dump[2].1 = vec![
            (0, 700, SpanRec::new(SpanStage::Replay, e)),
            (1, 710, SpanRec::new(SpanStage::Complete, e)),
        ];
        let timeline = merge_timeline(&dump, e);
        let s2_replay = timeline
            .iter()
            .position(|s| s.site == SiteId(2) && s.rec.stage == SpanStage::Replay)
            .expect("replay span survives the merge");
        let cert = timeline
            .iter()
            .position(|s| s.rec.stage == SpanStage::CompleteCert)
            .unwrap();
        assert!(s2_replay < cert, "replay ranks with apply, before cert");
        let path = critical_path(&timeline);
        let hold = path
            .iter()
            .find(|(l, _)| l == "s2 hold-back")
            .expect("per-peer edge present");
        assert!(hold.1.is_none(), "missing deliver yields an honest unknown");
    }

    #[test]
    fn critical_path_attributes_every_stage() {
        let timeline = merge_timeline(&three_site_dump(), et());
        let path = critical_path(&timeline);
        let get = |label: &str| {
            path.iter()
                .find(|(l, _)| l == label)
                .unwrap_or_else(|| panic!("edge {label} missing"))
                .1
        };
        assert_eq!(get("client queue"), Some(60), "submit@100 - t0@40");
        assert_eq!(get("local apply"), Some(20));
        assert_eq!(get("s2 transit"), Some(198), "deliver@300 - enqueue@102");
        assert_eq!(get("s2 hold-back"), Some(10));
        // s1's skewed clock makes its edges large but still finite.
        assert_eq!(get("s1 transit"), Some(9_000 - 101));
        assert_eq!(get("complete certify"), Some(0), "clamped: cert@500 < apply@9100");
        assert_eq!(get("complete visibility"), Some(9_800 - 500));
    }

    #[test]
    fn skeleton_render_is_clock_free() {
        let timeline = merge_timeline(&three_site_dump(), et());
        let skel = render_timeline(&timeline, true);
        assert!(!skel.contains("us"), "no durations:\n{skel}");
        assert!(!skel.contains("t0="), "no wall stamps:\n{skel}");
        assert!(skel.lines().count() >= 10);
        // Re-merging a dump whose stamps all shifted renders the same
        // skeleton (what the CI same-seed check relies on).
        let shifted: Vec<(SiteId, Vec<RawSpan>)> = three_site_dump()
            .into_iter()
            .map(|(s, v)| {
                (s, v.into_iter().map(|(q, m, r)| (q, m + 1_000, r)).collect())
            })
            .collect();
        assert_eq!(
            skel,
            render_timeline(&merge_timeline(&shifted, et()), true)
        );
        let full = render_timeline(&timeline, false);
        assert!(full.contains("path client queue"), "{full}");
        assert!(full.starts_with("+       0us s0 submit"), "{full}");
    }
}
