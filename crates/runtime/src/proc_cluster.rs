//! Multi-process cluster harness: N real `esrd` daemons on loopback.
//!
//! [`ProcCluster`] is the process-level analogue of
//! [`crate::cluster::Cluster`]: it spawns one `esrd` OS process per
//! site (all sharing a cluster directory for discovery, journals, and
//! durable link queues), stamps and submits ETs through the client
//! plane, and reuses the same convergence oracles — quiesce until every
//! site reports settled with drained queues, then compare full replica
//! snapshots. Because the sites are real processes, [`ProcCluster::kill`]
//! is a genuine `SIGKILL`: no destructors, no flushes, exactly the
//! failure model the paper's stable-queue argument is about.
//!
//! Client-side stamping mirrors the thread runtime's atomics: ET ids
//! from 1, the ORDUP sequencer from 0, the RITU version clock handing
//! out 1, 2, 3, … — a single-harness (single-client) assumption that is
//! an explicit non-goal to lift at this layer (DESIGN.md §11).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use std::time::{Duration, Instant};

use esr_core::ids::{ClientId, EtId, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_replica::mset::MSet;

use crate::client::{DaemonStatus, RpcClient, WireTraceEvent};
use crate::cluster::QuiesceTimeout;
use crate::spans::RawSpan;
use crate::state::{RtMethod, SiteAudit};

/// How long to wait for a daemon to come up / answer before calling it
/// unreachable.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// A running cluster of `esrd` processes.
pub struct ProcCluster {
    esrd: PathBuf,
    dir: PathBuf,
    method: RtMethod,
    n: usize,
    children: Vec<Option<Child>>,
    next_et: AtomicU64,
    sequencer: AtomicU64,
    version_clock: AtomicU64,
    /// ORDUP sequence numbers already handed to a `(client, seq)`
    /// request, so a retried submit reuses its original global
    /// sequence instead of opening a hole in the total order.
    client_seqs: Mutex<BTreeMap<(u64, u64), SeqNo>>,
    /// `--ckpt-bytes` passed to every spawned daemon (`None` = policy
    /// off, the pre-checkpoint layout).
    ckpt_bytes: Option<u64>,
}

impl ProcCluster {
    /// Spawns `n` daemons running `method` under `dir`, using the
    /// `esrd` binary at `esrd` (tests use `env!("CARGO_BIN_EXE_esrd")`).
    /// Blocks until every site answers a status round trip.
    pub fn spawn(
        esrd: impl AsRef<Path>,
        dir: impl AsRef<Path>,
        method: RtMethod,
        n: usize,
    ) -> io::Result<Self> {
        Self::spawn_with_ckpt(esrd, dir, method, n, None)
    }

    /// [`ProcCluster::spawn`] with the daemons' checkpoint byte policy
    /// enabled: every site cuts a snapshot after roughly `ckpt_bytes`
    /// journal bytes and truncates the covered prefix lag-by-one.
    pub fn spawn_with_ckpt(
        esrd: impl AsRef<Path>,
        dir: impl AsRef<Path>,
        method: RtMethod,
        n: usize,
        ckpt_bytes: Option<u64>,
    ) -> io::Result<Self> {
        assert!(n > 0, "a cluster needs at least one site");
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut cluster = Self {
            esrd: esrd.as_ref().to_path_buf(),
            dir,
            method,
            n,
            children: Vec::new(),
            next_et: AtomicU64::new(1),
            sequencer: AtomicU64::new(0),
            version_clock: AtomicU64::new(0),
            client_seqs: Mutex::new(BTreeMap::new()),
            ckpt_bytes,
        };
        for i in 0..n {
            let child = cluster.spawn_site(SiteId(i as u64))?;
            cluster.children.push(Some(child));
        }
        for i in 0..n {
            cluster.status_of(SiteId(i as u64))?;
        }
        Ok(cluster)
    }

    fn spawn_site(&self, site: SiteId) -> io::Result<Child> {
        let mut cmd = Command::new(&self.esrd);
        cmd.arg("--site")
            .arg(site.raw().to_string())
            .arg("--sites")
            .arg(self.n.to_string())
            .arg("--method")
            .arg(self.method.name())
            .arg("--dir")
            .arg(&self.dir);
        if let Some(bytes) = self.ckpt_bytes {
            cmd.arg("--ckpt-bytes").arg(bytes.to_string());
        }
        cmd.stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.n
    }

    /// The method this cluster runs.
    pub fn method(&self) -> RtMethod {
        self.method
    }

    /// The shared cluster directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Opens a fresh client-plane connection to `site`, waiting for the
    /// daemon to be reachable.
    pub fn client(&self, site: SiteId) -> io::Result<RpcClient> {
        RpcClient::connect_dir(&self.dir, site, CONNECT_TIMEOUT)
    }

    fn fresh_et(&self) -> EtId {
        EtId(self.next_et.fetch_add(1, Ordering::Relaxed))
    }

    /// Stamps and submits an update ET at `origin`; the daemon journals
    /// it and fans it out to the peers over the durable links.
    pub fn submit_update(&self, origin: SiteId, ops: Vec<ObjectOp>) -> io::Result<EtId> {
        let et = self.fresh_et();
        let mset = match self.method {
            RtMethod::Ordup => {
                let seq = SeqNo(self.sequencer.fetch_add(1, Ordering::Relaxed));
                MSet::new(et, origin, ops).sequenced(seq)
            }
            _ => MSet::new(et, origin, ops),
        };
        self.client(origin)?.submit(mset)
    }

    /// [`ProcCluster::submit_update`] carrying a client identity: a
    /// retried submit with the same `(client, seq)` — at the same site
    /// or, after a failover, at any site that journalled the original —
    /// is answered from the daemon's client table with the original ET
    /// instead of being applied again.
    pub fn submit_update_from_client(
        &self,
        origin: SiteId,
        ops: Vec<ObjectOp>,
        client: u64,
        seq: u64,
    ) -> io::Result<EtId> {
        let et = self.fresh_et();
        let mset = match self.method {
            RtMethod::Ordup => {
                let s = *self
                    .client_seqs
                    .lock()
                    .entry((client, seq))
                    .or_insert_with(|| SeqNo(self.sequencer.fetch_add(1, Ordering::Relaxed)));
                MSet::new(et, origin, ops).sequenced(s)
            }
            _ => MSet::new(et, origin, ops),
        }
        .from_client(ClientId(client), seq);
        self.client(origin)?.submit(mset)
    }

    /// Stamps and submits a RITU blind write.
    pub fn submit_blind_write(
        &self,
        origin: SiteId,
        object: ObjectId,
        value: Value,
    ) -> io::Result<EtId> {
        let t = self.version_clock.fetch_add(1, Ordering::Relaxed) + 1;
        let ts = VersionTs::new(t, ClientId(origin.raw()));
        self.submit_update(
            origin,
            vec![ObjectOp::new(object, Operation::TimestampedWrite(ts, value))],
        )
    }

    /// COMPE: issues a commit decision at site 0 (forwarded to
    /// whichever site holds the coordinator role).
    pub fn commit(&self, et: EtId) -> io::Result<()> {
        self.commit_via(SiteId(0), et)
    }

    /// COMPE: issues an abort decision at site 0.
    pub fn abort(&self, et: EtId) -> io::Result<()> {
        self.abort_via(SiteId(0), et)
    }

    /// COMPE: issues a commit decision at a chosen site — the failover
    /// tests decide via a survivor while the old coordinator is dead.
    pub fn commit_via(&self, site: SiteId, et: EtId) -> io::Result<()> {
        self.client(site)?.decide(et, true)
    }

    /// COMPE: issues an abort decision at a chosen site.
    pub fn abort_via(&self, site: SiteId, et: EtId) -> io::Result<()> {
        self.client(site)?.decide(et, false)
    }

    /// `SIGKILL`s a site's daemon process mid-flight — no shutdown
    /// path runs. Its journal, queue files, and (stale) address file
    /// stay on disk; peers keep retrying until [`ProcCluster::restart`].
    pub fn kill(&mut self, site: SiteId) {
        if let Some(mut child) = self.children[site.raw() as usize].take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Destroys a killed site's entire local disk state — journal,
    /// snapshots, durable view/epoch, address file, and its *outbound*
    /// link queues. Peers' queues toward the site survive (they live in
    /// the peers' `link-<j>-<i>.queue` files), which is exactly the
    /// wiped-replacement scenario snapshot catch-up exists for: the
    /// fresh incarnation pulls a peer's checkpoint instead of hoping
    /// the full history is still queued. Call between
    /// [`ProcCluster::kill`] and [`ProcCluster::restart`].
    pub fn wipe_site(&mut self, site: SiteId) {
        assert!(
            self.children[site.raw() as usize].is_none(),
            "wipe_site() of a live site"
        );
        let i = site.raw();
        for name in [
            format!("site-{i}.journal"),
            format!("site-{i}.view"),
            format!("site-{i}.epoch"),
            format!("site-{i}.addr"),
        ] {
            let _ = std::fs::remove_file(self.dir.join(name));
        }
        for j in 0..self.n as u64 {
            let _ = std::fs::remove_file(self.dir.join(format!("link-{i}-{j}.queue")));
        }
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            let snap_prefix = format!("site-{i}.ckpt-");
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with(&snap_prefix) && name.ends_with(".snap") {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }

    /// Triggers an on-demand checkpoint at `site`; returns the newly
    /// installed snapshot's `(seq, covered)`.
    pub fn checkpoint_at(&self, site: SiteId) -> io::Result<(u64, u64)> {
        self.client(site)?.checkpoint()
    }

    /// Respawns a killed site. The new incarnation bumps its epoch,
    /// replays its journal, re-announces its applies, and republishes
    /// its address so peers reconnect.
    pub fn restart(&mut self, site: SiteId) -> io::Result<()> {
        assert!(
            self.children[site.raw() as usize].is_none(),
            "restart() of a live site"
        );
        self.children[site.raw() as usize] = Some(self.spawn_site(site)?);
        self.status_of(site).map(|_| ())
    }

    /// One status round trip against `site` (fresh connection, so this
    /// also doubles as a liveness probe after restarts).
    pub fn status_of(&self, site: SiteId) -> io::Result<DaemonStatus> {
        self.client(site)?.status()
    }

    /// Blocks until every site reports settled protocol state and
    /// empty outbound queues for two consecutive polls, or the deadline
    /// passes. Mirrors [`crate::cluster::Cluster::quiesce_within`].
    pub fn quiesce_within(&self, deadline: Duration) -> Result<(), QuiesceTimeout> {
        let start = Instant::now();
        let mut stable_rounds = 0;
        loop {
            let mut quiet = true;
            for i in 0..self.n {
                match self.status_of(SiteId(i as u64)) {
                    Ok(s) if s.settled && s.outbound_pending == 0 => {}
                    _ => {
                        quiet = false;
                        break;
                    }
                }
            }
            stable_rounds = if quiet { stable_rounds + 1 } else { 0 };
            if stable_rounds >= 2 {
                return Ok(());
            }
            if start.elapsed() >= deadline {
                // Per-site pending work at the deadline: the daemon's
                // outbound durable-queue depth, or None for a site that
                // no longer answers (the usual wedge) — plus which site
                // reports holding the coordinator role, since a dead
                // never-restarted coordinator is the other usual wedge.
                let mut coordinator = None;
                let site_queues = (0..self.n)
                    .map(|i| {
                        let status = self.status_of(SiteId(i as u64)).ok();
                        if status.is_some_and(|s| s.coordinator) {
                            coordinator = Some(SiteId(i as u64));
                        }
                        status.map(|s| s.outbound_pending)
                    })
                    .collect();
                return Err(QuiesceTimeout {
                    waited: start.elapsed(),
                    site_queues,
                    coordinator,
                });
            }
            std::thread::sleep(Duration::from_millis(40));
        }
    }

    /// Quiesces with the default two-minute deadline, panicking on
    /// timeout (test-harness convenience).
    pub fn quiesce(&self) {
        self.quiesce_within(Duration::from_secs(120))
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// The full replica snapshot at `site`.
    pub fn snapshot_of(&self, site: SiteId) -> io::Result<BTreeMap<ObjectId, Value>> {
        self.client(site)?.snapshot()
    }

    /// The oracle audit at `site`.
    pub fn audit_of(&self, site: SiteId) -> io::Result<SiteAudit> {
        self.client(site)?.audit()
    }

    /// Scrapes `site`'s metrics in Prometheus text format.
    pub fn metrics_of(&self, site: SiteId) -> io::Result<String> {
        self.client(site)?.metrics()
    }

    /// Dumps `site`'s trace ring: `(dropped, events)`.
    pub fn trace_of(&self, site: SiteId) -> io::Result<(u64, Vec<WireTraceEvent>)> {
        self.client(site)?.trace()
    }

    /// Dumps `site`'s esr-trace span ring for one ET (or all spans via
    /// [`crate::spans::SPAN_QUERY_ALL`]): `(dropped, spans)`.
    pub fn spans_of(
        &self,
        site: SiteId,
        et: u64,
    ) -> io::Result<(u64, Vec<RawSpan>)> {
        self.client(site)?.spans(et)
    }

    /// Do all sites hold identical replica snapshots? (Call after
    /// [`ProcCluster::quiesce`].)
    pub fn converged(&self) -> io::Result<bool> {
        let reference = self.snapshot_of(SiteId(0))?;
        for i in 1..self.n {
            if self.snapshot_of(SiteId(i as u64))? != reference {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Kills every daemon (cluster teardown).
    pub fn shutdown(&mut self) {
        for i in 0..self.n {
            self.kill(SiteId(i as u64));
        }
    }
}

impl Drop for ProcCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
