//! Exactly-once client semantics under retries, reordering, and a
//! coordinator failover — property-tested over the pure control core.
//!
//! The client contract (DESIGN.md §15): a client stamps each request
//! once (`MSet::from_client`) and resends the *same* stamped request
//! until it sees a reply. The properties below drive arbitrary
//! interleavings of such retries — duplicated, reordered, landing at
//! different sites, straddling a view change — through a 3-site
//! cluster of [`NodeCore`]s wired by in-memory FIFO links, emulating
//! the daemon's reply path (answer from the client table when the
//! request is already known). They assert the update applies exactly
//! once everywhere, every retry is answered with the original ET, the
//! cluster settles in the new view, and the client table survives a
//! journal-replay restart at every site.

use std::collections::VecDeque;

use esr_core::ids::{ClientId, EtId, ObjectId, SeqNo, SiteId};
use esr_core::op::{ObjectOp, Operation};
use esr_replica::mset::MSet;
use esr_replica::wire::Frame;
use esr_runtime::ctrl::{Effect, NodeCore, NodeEvent};
use esr_runtime::state::{RtMethod, SiteState};
use proptest::prelude::*;

const SITES: usize = 3;

/// One logical client request: a uniquely stamped MSet the client
/// resends verbatim on every retry.
#[derive(Debug, Clone)]
struct Request {
    mset: MSet,
    client: u64,
    seq: u64,
}

/// A deterministic splittable generator for schedule shuffling and
/// partial-delivery choices (the proptest inputs stay small; the
/// schedule detail is derived from one seed).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// The in-memory cluster: pure cores, per-site journals, FIFO links.
struct Net {
    cores: Vec<NodeCore>,
    journals: Vec<Vec<MSet>>,
    views: Vec<u64>,
    queues: Vec<Vec<VecDeque<Frame>>>,
}

impl Net {
    fn new(method: RtMethod) -> Self {
        let cores = (0..SITES)
            .map(|i| {
                let site = SiteId(i as u64);
                let mut state = SiteState::new(method, site);
                state.enable_audit();
                NodeCore::fresh(state, method, site, SITES, None)
            })
            .collect();
        Net {
            cores,
            journals: vec![Vec::new(); SITES],
            views: vec![0; SITES],
            queues: (0..SITES)
                .map(|_| (0..SITES).map(|_| VecDeque::new()).collect())
                .collect(),
        }
    }

    fn apply(&mut self, site: usize, effects: Vec<Effect>) {
        for e in effects {
            match e {
                Effect::Journal(m) => self.journals[site].push(m),
                Effect::Send { to, frame } => {
                    self.queues[site][to.raw() as usize].push_back(frame)
                }
                Effect::RecordView(v) => self.views[site] = v,
                Effect::Trace { .. } | Effect::Checkpoint(_) | Effect::Span(_) => {}
            }
        }
    }

    fn step(&mut self, site: usize, event: NodeEvent) {
        let effects = self.cores[site].step(event);
        self.apply(site, effects);
    }

    /// Delivers up to `budget` queued frames in round-robin order.
    fn deliver_some(&mut self, budget: u64) {
        for _ in 0..budget {
            let Some((to, frame)) = (0..SITES)
                .flat_map(|f| (0..SITES).map(move |t| (f, t)))
                .find_map(|(f, t)| self.queues[f][t].pop_front().map(|fr| (t, fr)))
            else {
                return;
            };
            self.step(to, NodeEvent::PeerFrame(frame));
        }
    }

    /// Drains every link to quiescence. Panics on livelock.
    fn drain(&mut self) {
        for _ in 0..100_000 {
            let pending = (0..SITES)
                .flat_map(|f| (0..SITES).map(move |t| (f, t)))
                .any(|(f, t)| !self.queues[f][t].is_empty());
            if !pending {
                return;
            }
            self.deliver_some(64);
        }
        panic!("links failed to drain");
    }

    /// The daemon's submit handler: answer a known `(client, seq)`
    /// from the client table, otherwise run the submit through the
    /// core. Returns the ET the client would see in `SubmitOk`.
    fn submit(&mut self, site: usize, request: &Request) -> EtId {
        if let Some(et) =
            self.cores[site].cached_et(ClientId(request.client), request.seq)
        {
            return et;
        }
        let et = request.mset.et;
        self.step(site, NodeEvent::ClientSubmit(request.mset.clone()));
        et
    }
}

/// The workload: `n` requests, each stamped with a distinct client
/// identity, sequence, and ET. ORDUP requests carry dense global
/// sequence numbers in request order, so reordered retries also
/// exercise the hold-and-release path.
fn requests(method: RtMethod, n: usize, amounts: &[i64]) -> Vec<Request> {
    (0..n)
        .map(|r| {
            let et = EtId(1 + r as u64);
            let origin = SiteId((r % SITES) as u64);
            let amount = amounts[r % amounts.len()];
            let op = ObjectOp::new(ObjectId(r as u64 % 2), Operation::Incr(amount));
            let mut mset = MSet::new(et, origin, vec![op]);
            if method == RtMethod::Ordup {
                mset = mset.sequenced(SeqNo(r as u64));
            }
            Request {
                mset: mset.from_client(ClientId(100 + r as u64), r as u64),
                client: 100 + r as u64,
                seq: r as u64,
            }
        })
        .collect()
}

/// Sequential reference: every request applied exactly once, in
/// request order.
fn reference(method: RtMethod, reqs: &[Request]) -> SiteState {
    let mut s = SiteState::new(method, SiteId(999));
    for r in reqs {
        s.deliver(r.mset.clone());
    }
    s
}

/// One schedule: every retry of every request plus one coordinator
/// suspicion, shuffled by `seed`, with partial frame delivery between
/// events. Returns the net and the replies each submit produced.
fn run_schedule(
    method: RtMethod,
    reqs: &[Request],
    retries: usize,
    suspect_site: usize,
    seed: u64,
) -> (Net, Vec<(usize, EtId)>) {
    // Event list: (request index, landing site) per retry, plus the
    // suspicion marked as usize::MAX.
    let mut lcg = Lcg(seed | 1);
    let mut events: Vec<(usize, usize)> = Vec::new();
    for (r, _) in reqs.iter().enumerate() {
        for _ in 0..1 + retries {
            events.push((r, lcg.below(SITES as u64) as usize));
        }
    }
    events.push((usize::MAX, suspect_site));
    for i in (1..events.len()).rev() {
        events.swap(i, lcg.below(i as u64 + 1) as usize);
    }

    let mut net = Net::new(method);
    let mut replies = Vec::new();
    for (r, site) in events {
        if r == usize::MAX {
            net.step(site, NodeEvent::SuspectCoordinator);
        } else {
            let et = net.submit(site, &reqs[r]);
            replies.push((r, et));
        }
        net.deliver_some(lcg.below(6));
    }
    net.drain();
    (net, replies)
}

fn check_schedule(method: RtMethod, n: usize, retries: usize, suspect: usize, seed: u64) {
    let amounts = [3, 5, 7, 11];
    let reqs = requests(method, n, &amounts);
    let (mut net, replies) = run_schedule(method, &reqs, retries, 1 + suspect % 2, seed);

    // Exactly-once: every site converged to the one-application
    // reference, settled, in an installed post-failover view.
    let reference = reference(method, &reqs).snapshot();
    for (i, core) in net.cores.iter().enumerate() {
        assert_eq!(
            core.state.snapshot(),
            reference,
            "site {i} diverged from the exactly-once reference (seed {seed})"
        );
        assert!(core.state.settled(), "site {i} unsettled (seed {seed})");
    }
    let views: Vec<u64> = net.cores.iter().map(|c| c.view).collect();
    assert!(
        views.iter().all(|v| *v == views[0] && *v >= 1),
        "views diverged or never advanced: {views:?} (seed {seed})"
    );
    let coordinators = net
        .cores
        .iter()
        .filter(|c| c.coord.is_some())
        .count();
    assert_eq!(coordinators, 1, "expected one coordinator (seed {seed})");

    // Byte-identical replies: every retry of request `r` was answered
    // with the original ET.
    for (r, et) in replies {
        assert_eq!(
            et, reqs[r].mset.et,
            "request {r} answered with a different ET (seed {seed})"
        );
    }

    // The table is fully replicated and journal-durable: after a
    // journal-replay restart at its durable view, every site still
    // answers every request from the cache.
    for i in 0..SITES {
        let mut state = SiteState::new(method, SiteId(i as u64));
        state.enable_audit();
        let (recovered, _) = NodeCore::recover(
            state,
            method,
            SiteId(i as u64),
            SITES,
            None,
            net.views[i],
            net.journals[i].clone(),
        );
        for r in &reqs {
            assert_eq!(
                recovered.cached_et(ClientId(r.client), r.seq),
                Some(r.mset.et),
                "site {i} lost request (client {}, seq {}) across a restart (seed {seed})",
                r.client,
                r.seq
            );
        }
        net.cores[i] = recovered;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn commu_retries_across_failover_apply_exactly_once(
        n in 1usize..4,
        retries in 1usize..3,
        suspect in 0usize..2,
        seed in any::<u64>(),
    ) {
        check_schedule(RtMethod::Commu, n, retries, suspect, seed);
    }

    #[test]
    fn ordup_retries_across_failover_apply_exactly_once(
        n in 1usize..4,
        retries in 1usize..3,
        suspect in 0usize..2,
        seed in any::<u64>(),
    ) {
        check_schedule(RtMethod::Ordup, n, retries, suspect, seed);
    }
}

/// The sharpest single case, pinned as a plain test: a retry that
/// lands at a *different* site after the original propagated, across
/// the view change, must be answered from the replicated client table
/// without re-applying.
#[test]
fn cross_site_retry_after_failover_hits_the_cache() {
    let reqs = requests(RtMethod::Commu, 1, &[5]);
    let mut net = Net::new(RtMethod::Commu);
    let first = net.submit(0, &reqs[0]);
    net.drain();
    net.step(1, NodeEvent::SuspectCoordinator);
    net.drain();
    assert!(net.cores.iter().all(|c| c.view == 1));
    let retried = net.submit(2, &reqs[0]);
    net.drain();
    assert_eq!(first, retried);
    assert_eq!(
        net.cores[2].cached_et(ClientId(reqs[0].client), reqs[0].seq),
        Some(first)
    );
    let reference = reference(RtMethod::Commu, &reqs).snapshot();
    for core in &net.cores {
        assert_eq!(core.state.snapshot(), reference);
        assert!(core.state.settled());
    }
}
