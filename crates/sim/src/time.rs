//! Virtual time.
//!
//! The simulator measures time in integer **microseconds** from the start
//! of the run. Integer time keeps event ordering exact and runs identical
//! on every platform.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// Simulation start.
    pub const ZERO: VirtualTime = VirtualTime(0);
    /// The largest representable instant (used as "never").
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        VirtualTime(us)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        VirtualTime(ms * 1_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Self {
        VirtualTime(s * 1_000_000)
    }

    /// This instant in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant in seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Duration) -> VirtualTime {
        VirtualTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// A span of virtual time (microseconds).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// The span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the duration by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, d: Duration) -> VirtualTime {
        VirtualTime(self.0 + d.0)
    }
}

impl AddAssign<Duration> for VirtualTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = Duration;
    fn sub(self, other: VirtualTime) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(VirtualTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(VirtualTime::from_secs(1).as_millis(), 1_000);
        assert_eq!(Duration::from_secs(2).as_micros(), 2_000_000);
        assert!((VirtualTime::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = VirtualTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t, VirtualTime::from_millis(15));
        let mut t2 = t;
        t2 += Duration::from_millis(1);
        assert_eq!(t2.as_millis(), 16);
        assert_eq!(t2 - t, Duration::from_millis(1));
        // Subtraction saturates rather than panicking.
        assert_eq!(t - t2, Duration::ZERO);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            VirtualTime::MAX.saturating_add(Duration::from_secs(1)),
            VirtualTime::MAX
        );
        assert_eq!(
            Duration::from_secs(1).saturating_mul(u64::MAX),
            Duration(u64::MAX)
        );
    }

    #[test]
    fn ordering() {
        assert!(VirtualTime::ZERO < VirtualTime::from_micros(1));
        assert!(Duration::from_millis(1) < Duration::from_millis(2));
    }

    #[test]
    fn display() {
        assert_eq!(VirtualTime::from_micros(500).to_string(), "500us");
        assert_eq!(VirtualTime::from_secs(2).to_string(), "2.000s");
        assert_eq!(Duration::from_millis(3).to_string(), "3ms");
        assert_eq!(Duration::from_micros(7).to_string(), "7us");
    }
}
