//! # esr-sim — deterministic discrete-event simulation kernel
//!
//! The substrate under the simulated distributed system: a virtual clock,
//! a deterministic event queue, seeded randomness, Lamport clocks, and a
//! bounded trace. Replica-control experiments run on this kernel so that
//! every run is exactly reproducible from its seed — adversarial message
//! reorderings and partition schedules included.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod event;
pub mod probe;
pub mod rng;
pub mod sched;
pub mod time;
pub mod trace;
pub mod vclock;

pub use clock::LamportClock;
pub use event::EventQueue;
pub use probe::{SyncEvent, SyncOp};
pub use rng::DetRng;
pub use sched::Scheduler;
pub use time::{Duration, VirtualTime};
pub use trace::{Trace, TraceEntry};
pub use vclock::{Epoch, VectorClock};
