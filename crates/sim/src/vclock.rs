//! Vector clocks over dense thread indices.
//!
//! The concurrency checker (`esr-check`) tracks happens-before with
//! vector clocks: one logical clock per participating thread, joined at
//! every synchronization edge (channel message, lock hand-off, atomic
//! read-modify-write). The clock lives here, next to the other shared
//! trace types, so both the instrumented shims' consumers and the
//! detector agree on its semantics.
//!
//! Threads are identified by *dense indices* (0, 1, 2, …) assigned by
//! whoever builds the clocks — the detector interns thread names into
//! indices before processing a trace. Clocks grow on demand; a missing
//! component reads as zero.

use std::fmt;

/// A vector clock: component `i` counts the synchronization steps of
/// thread `i` that are known to happen before the clock's owner's
/// current point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    components: Vec<u64>,
}

impl VectorClock {
    /// The zero clock (happens before everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// The clock component of thread `i` (zero when never seen).
    pub fn get(&self, i: usize) -> u64 {
        self.components.get(i).copied().unwrap_or(0)
    }

    /// Sets thread `i`'s component to `v`, growing the vector as needed.
    pub fn set(&mut self, i: usize, v: u64) {
        if self.components.len() <= i {
            self.components.resize(i + 1, 0);
        }
        self.components[i] = v;
    }

    /// Increments thread `i`'s component by one and returns the new
    /// value — the owner's step counter after a local event.
    pub fn tick(&mut self, i: usize) -> u64 {
        let v = self.get(i) + 1;
        self.set(i, v);
        v
    }

    /// Pointwise maximum with `other` — the join at a synchronization
    /// edge (message receive, lock acquire).
    pub fn join(&mut self, other: &VectorClock) {
        if self.components.len() < other.components.len() {
            self.components.resize(other.components.len(), 0);
        }
        for (mine, theirs) in self.components.iter_mut().zip(&other.components) {
            if *theirs > *mine {
                *mine = *theirs;
            }
        }
    }

    /// True when every component of `self` is ≤ the matching component
    /// of `other`: everything known here happened before there.
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.components
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.get(i))
    }

    /// True when an *epoch* — thread `i` at step `v` — is ordered before
    /// this clock. The FastTrack fast path: most race checks compare one
    /// epoch against one clock, not two full vectors.
    pub fn covers(&self, i: usize, v: u64) -> bool {
        v <= self.get(i)
    }

    /// Number of allocated components (threads seen so far).
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when no component has ever been set.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

/// A FastTrack epoch: one thread's clock value at one event, the compact
/// representation of "last write" metadata when a single writer
/// dominates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// The thread index.
    pub thread: usize,
    /// That thread's clock at the event.
    pub clock: u64,
}

impl Epoch {
    /// An epoch ordered before everything (clock zero).
    pub const ZERO: Epoch = Epoch {
        thread: 0,
        clock: 0,
    };

    /// True when this epoch happens before the point described by `vc`.
    pub fn before(&self, vc: &VectorClock) -> bool {
        vc.covers(self.thread, self.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_takes_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VectorClock::new();
        b.set(0, 1);
        b.set(1, 5);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn leq_orders_causally_related_clocks() {
        let mut a = VectorClock::new();
        a.set(0, 1);
        let mut b = a.clone();
        b.tick(1);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        // Concurrent clocks: neither ≤ the other.
        let mut c = VectorClock::new();
        c.set(1, 9);
        assert!(!b.leq(&c));
        assert!(!c.leq(&b));
    }

    #[test]
    fn tick_increments_own_component() {
        let mut a = VectorClock::new();
        assert_eq!(a.tick(3), 1);
        assert_eq!(a.tick(3), 2);
        assert_eq!(a.get(3), 2);
        assert_eq!(a.get(0), 0);
    }

    #[test]
    fn epoch_before_clock() {
        let mut vc = VectorClock::new();
        vc.set(1, 4);
        assert!(Epoch { thread: 1, clock: 4 }.before(&vc));
        assert!(!Epoch { thread: 1, clock: 5 }.before(&vc));
        assert!(Epoch::ZERO.before(&VectorClock::new()));
    }

    #[test]
    fn display_compact() {
        let mut vc = VectorClock::new();
        vc.set(1, 2);
        assert_eq!(vc.to_string(), "⟨0,2⟩");
    }
}
