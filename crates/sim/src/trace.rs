//! A bounded simulation trace.
//!
//! Sites and the network record human-readable trace entries; the trace
//! keeps the most recent `capacity` entries so that long runs don't grow
//! without bound. Tests and debugging tools read it back.

use std::collections::VecDeque;
use std::fmt;

use crate::time::VirtualTime;

/// One trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When it happened.
    pub at: VirtualTime,
    /// Which component logged it (e.g. `"site/2"`, `"net"`).
    pub component: String,
    /// What happened.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.component, self.message)
    }
}

/// A bounded ring buffer of trace entries.
#[derive(Debug)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Trace {
    /// A trace holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// A disabled trace: records nothing (zero overhead for benchmarks).
    pub fn disabled() -> Self {
        let mut t = Self::new(0);
        t.enabled = false;
        t
    }

    /// Turns recording on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Records an entry, evicting the oldest if at capacity.
    pub fn record(&mut self, at: VirtualTime, component: &str, message: impl Into<String>) {
        if !self.enabled || self.capacity == 0 {
            if self.enabled {
                self.dropped += 1;
            }
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            at,
            component: component.to_owned(),
            message: message.into(),
        });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted (or suppressed while at zero capacity).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All retained entries whose component matches.
    pub fn for_component<'a>(&'a self, component: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| e.component == component)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::new(10);
        t.record(VirtualTime(1), "a", "first");
        t.record(VirtualTime(2), "b", "second");
        let all: Vec<_> = t.entries().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].message, "first");
        assert_eq!(all[1].component, "b");
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.record(VirtualTime(i), "c", format!("{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<_> = t.entries().map(|e| e.message.clone()).collect();
        assert_eq!(msgs, vec!["2", "3", "4"]);
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.record(VirtualTime(1), "a", "x");
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn component_filter() {
        let mut t = Trace::new(10);
        t.record(VirtualTime(1), "site/1", "a");
        t.record(VirtualTime(2), "site/2", "b");
        t.record(VirtualTime(3), "site/1", "c");
        assert_eq!(t.for_component("site/1").count(), 2);
        assert_eq!(t.for_component("net").count(), 0);
    }

    #[test]
    fn display_formats_entry() {
        let e = TraceEntry {
            at: VirtualTime(5),
            component: "net".into(),
            message: "drop".into(),
        };
        assert_eq!(e.to_string(), "[5us] net: drop");
    }
}
