//! The simulation scheduler: an event queue bound to a virtual clock.

use crate::event::EventQueue;
use crate::time::{Duration, VirtualTime};

/// Drives a simulation: events are scheduled at absolute or relative
/// virtual times and popped in order, advancing the clock.
///
/// ```
/// use esr_sim::sched::Scheduler;
/// use esr_sim::time::Duration;
///
/// let mut sched: Scheduler<&str> = Scheduler::new();
/// sched.schedule_in(Duration::from_millis(10), "world");
/// sched.schedule_in(Duration::from_millis(5), "hello");
/// let (t1, e1) = sched.next_event().unwrap();
/// assert_eq!((t1.as_millis(), e1), (5, "hello"));
/// let (t2, e2) = sched.next_event().unwrap();
/// assert_eq!((t2.as_millis(), e2), (10, "world"));
/// assert!(sched.is_quiescent());
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: VirtualTime,
    processed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self {
            queue: EventQueue::new(),
            now: VirtualTime::ZERO,
            processed: 0,
        }
    }
}

impl<E> Scheduler<E> {
    /// A scheduler at time zero with no events.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.queue.schedule_at(self.now + delay, event);
    }

    /// Schedules an event at an absolute time. Times in the past are
    /// clamped to "now" (the event fires immediately, after already
    /// pending events at the current instant).
    pub fn schedule_at(&mut self, at: VirtualTime, event: E) {
        self.queue.schedule_at(at.max(self.now), event);
    }

    /// Advances the clock to `t` without processing events (models a
    /// client waiting in real time). Moving backwards is a no-op.
    pub fn advance_to(&mut self, t: VirtualTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Pops the next event, advancing the clock to its fire time.
    pub fn next_event(&mut self) -> Option<(VirtualTime, E)> {
        let (at, e) = self.queue.pop()?;
        // `advance_to` may have moved the clock past pending events; such
        // events fire "now" rather than in the past.
        let fire = at.max(self.now);
        self.now = fire;
        self.processed += 1;
        Some((fire, e))
    }

    /// Pops the next event only if it fires at or before `deadline`.
    pub fn next_event_before(&mut self, deadline: VirtualTime) -> Option<(VirtualTime, E)> {
        if self.queue.peek_time()? > deadline {
            return None;
        }
        self.next_event()
    }

    /// Pops the next event only when `pred` accepts it (handed the
    /// event's fire time and a reference to its payload). On a match the
    /// clock advances exactly as [`Scheduler::next_event`] would; on a
    /// miss nothing changes. The batching hook: a handler drains the run
    /// of events it can absorb in one step, stopping at the first one it
    /// cannot.
    pub fn next_event_if(
        &mut self,
        pred: impl FnOnce(VirtualTime, &E) -> bool,
    ) -> Option<(VirtualTime, E)> {
        let now = self.now;
        let (at, e) = self.queue.pop_if(|at, e| pred(at.max(now), e))?;
        let fire = at.max(self.now);
        self.now = fire;
        self.processed += 1;
        Some((fire, e))
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True when no events are pending — the simulation is quiescent.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }

    /// Runs `handler` on every event until the queue drains or `limit`
    /// events have been processed, whichever comes first. The handler may
    /// schedule further events through the scheduler it is handed.
    /// Returns the number of events processed.
    pub fn run(&mut self, limit: u64, mut handler: impl FnMut(&mut Self, VirtualTime, E)) -> u64 {
        let mut n = 0;
        while n < limit {
            let Some((at, e)) = self.next_event() else {
                break;
            };
            handler(self, at, e);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_in(Duration::from_millis(5), "a");
        s.schedule_in(Duration::from_millis(2), "b");
        let (t1, e1) = s.next_event().unwrap();
        assert_eq!((t1.as_millis(), e1), (2, "b"));
        assert_eq!(s.now().as_millis(), 2);
        let (t2, e2) = s.next_event().unwrap();
        assert_eq!((t2.as_millis(), e2), (5, "a"));
        assert!(s.is_quiescent());
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_in(Duration::from_millis(10), 1);
        s.next_event();
        s.schedule_in(Duration::from_millis(10), 2);
        let (t, _) = s.next_event().unwrap();
        assert_eq!(t.as_millis(), 20);
    }

    #[test]
    fn past_absolute_times_are_clamped() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_in(Duration::from_millis(10), 1);
        s.next_event();
        s.schedule_at(VirtualTime::from_millis(3), 2);
        let (t, e) = s.next_event().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t.as_millis(), 10, "clamped to now, not the past");
    }

    #[test]
    fn next_event_before_respects_deadline() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_in(Duration::from_millis(10), 1);
        assert!(s.next_event_before(VirtualTime::from_millis(5)).is_none());
        assert!(s.next_event_before(VirtualTime::from_millis(10)).is_some());
    }

    #[test]
    fn run_drains_and_counts() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..5 {
            s.schedule_in(Duration::from_millis(i), i as u32);
        }
        let mut seen = Vec::new();
        let n = s.run(u64::MAX, |_, _, e| seen.push(e));
        assert_eq!(n, 5);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.processed(), 5);
    }

    #[test]
    fn handler_can_schedule_more_events() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_in(Duration::ZERO, 3);
        let n = s.run(100, |sched, _, e| {
            if e > 0 {
                sched.schedule_in(Duration::from_millis(1), e - 1);
            }
        });
        assert_eq!(n, 4, "3 → 2 → 1 → 0");
        assert_eq!(s.now().as_millis(), 3);
    }

    #[test]
    fn next_event_if_drains_a_matching_run() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_in(Duration::from_millis(5), 1);
        s.schedule_in(Duration::from_millis(5), 2);
        s.schedule_in(Duration::from_millis(5), 7);
        s.schedule_in(Duration::from_millis(9), 3);
        let (t, first) = s.next_event().unwrap();
        assert_eq!((t.as_millis(), first), (5, 1));
        // Drain the same-instant run of small events.
        let mut batch = vec![first];
        while let Some((_, e)) = s.next_event_if(|at, e| at == t && *e < 5) {
            batch.push(e);
        }
        assert_eq!(batch, vec![1, 2]);
        assert_eq!(s.pending(), 2, "7 (non-matching) and 3 remain");
        assert_eq!(s.processed(), 2);
        assert_eq!(s.next_event().unwrap().1, 7);
    }

    #[test]
    fn run_respects_limit() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..10 {
            s.schedule_in(Duration::from_millis(i), 0);
        }
        let n = s.run(4, |_, _, _| {});
        assert_eq!(n, 4);
        assert_eq!(s.pending(), 6);
    }
}
