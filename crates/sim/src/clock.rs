//! Lamport logical clocks (§3.1 of the paper, citing Lamport 1978).
//!
//! ORDUP's distributed variant orders update MSets by Lamport timestamp.
//! Each site keeps a [`LamportClock`]; local events `tick` it, and
//! received messages `observe` the sender's timestamp so that causality
//! is respected: if `a` happened-before `b`, then `ts(a) < ts(b)`.

use serde::{Deserialize, Serialize};

use esr_core::ids::SiteId;
use esr_core::LamportTs;

/// One site's Lamport clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LamportClock {
    site: SiteId,
    counter: u64,
}

impl LamportClock {
    /// A fresh clock owned by `site`, starting at zero.
    pub fn new(site: SiteId) -> Self {
        Self { site, counter: 0 }
    }

    /// The owning site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Advances the clock for a local event and returns the new
    /// timestamp.
    pub fn tick(&mut self) -> LamportTs {
        self.counter += 1;
        LamportTs::new(self.counter, self.site)
    }

    /// Merges a timestamp received in a message: the clock jumps past it,
    /// then ticks. Returns the timestamp of the receive event.
    pub fn observe(&mut self, remote: LamportTs) -> LamportTs {
        self.counter = self.counter.max(remote.counter);
        self.tick()
    }

    /// The current value without advancing.
    pub fn peek(&self) -> LamportTs {
        LamportTs::new(self.counter, self.site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_monotonic() {
        let mut c = LamportClock::new(SiteId(1));
        let a = c.tick();
        let b = c.tick();
        assert!(a < b);
        assert_eq!(b.counter, 2);
        assert_eq!(b.site, SiteId(1));
    }

    #[test]
    fn observe_jumps_past_remote() {
        let mut c = LamportClock::new(SiteId(1));
        c.tick();
        let r = c.observe(LamportTs::new(10, SiteId(2)));
        assert_eq!(r.counter, 11);
        assert!(r > LamportTs::new(10, SiteId(2)));
    }

    #[test]
    fn observe_older_timestamp_still_ticks() {
        let mut c = LamportClock::new(SiteId(1));
        for _ in 0..5 {
            c.tick();
        }
        let r = c.observe(LamportTs::new(2, SiteId(2)));
        assert_eq!(r.counter, 6);
    }

    #[test]
    fn happened_before_implies_ordered_timestamps() {
        // A send on site 1 happens-before its receive on site 2, which
        // happens-before a later send from site 2.
        let mut s1 = LamportClock::new(SiteId(1));
        let mut s2 = LamportClock::new(SiteId(2));
        let send = s1.tick();
        let recv = s2.observe(send);
        let send2 = s2.tick();
        assert!(send < recv);
        assert!(recv < send2);
    }

    #[test]
    fn concurrent_events_are_totally_ordered_by_site() {
        let mut s1 = LamportClock::new(SiteId(1));
        let mut s2 = LamportClock::new(SiteId(2));
        let a = s1.tick();
        let b = s2.tick();
        // Same counter; site breaks the tie deterministically.
        assert_eq!(a.counter, b.counter);
        assert!(a < b);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut c = LamportClock::new(SiteId(3));
        c.tick();
        let p1 = c.peek();
        let p2 = c.peek();
        assert_eq!(p1, p2);
        assert_eq!(p1.counter, 1);
    }
}
