//! Global concurrency instrumentation hub (the `checked` mode spine).
//!
//! The offline shims (`shims/crossbeam`, `shims/parking_lot`) report
//! every channel send/receive, lock acquire/release, and atomic access
//! here when a checked run is active. `esr-check` consumes the recorded
//! [`SyncEvent`] trace (happens-before analysis, race detection) and may
//! additionally install a [`Gate`] — a cooperative scheduler that
//! serializes the process onto one runnable thread at a time so the same
//! workload can be replayed under many distinct, deterministic
//! interleavings.
//!
//! Three modes, stored in one process-global atomic:
//!
//! * **off** (default) — every probe call is a single relaxed atomic
//!   load; the shims behave exactly like their uninstrumented selves.
//! * **record** — synchronization events are appended to a global log.
//! * **scheduled** — record, plus every instrumented operation first
//!   parks on the installed [`Gate`] until the scheduler grants the
//!   thread its turn.
//!
//! Identities are *epoch-tagged*: each `start_*` call begins a new run
//! epoch, and per-object ids (channels, locks, atomic cells) as well as
//! per-channel message counters reset with it, so identical runs produce
//! identical traces regardless of what earlier runs allocated.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Instrumentation disabled (the default).
const MODE_OFF: u8 = 0;
/// Record synchronization events.
const MODE_RECORD: u8 = 1;
/// Record events and serialize threads through the installed [`Gate`].
const MODE_SCHED: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_OFF);

/// Run epoch, bumped by every `start_*`; epoch 0 never runs.
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// Bits of an epoch-tagged slot reserved for the counter/id payload.
const PAYLOAD_BITS: u32 = 40;
const PAYLOAD_MASK: u64 = (1 << PAYLOAD_BITS) - 1;

/// One synchronization (or annotated memory) operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOp {
    /// A channel send; `msg` is the per-channel, per-epoch message
    /// number the matching receive will observe.
    ChanSend {
        /// Channel id.
        chan: u64,
        /// Message number within this run.
        msg: u64,
    },
    /// A channel receive of message `msg` (0 when the message was sent
    /// before recording started — no happens-before edge available).
    ChanRecv {
        /// Channel id.
        chan: u64,
        /// Message number matched to the send, 0 if unpaired.
        msg: u64,
    },
    /// Mutex (or write-lock) acquired.
    LockAcquire {
        /// Lock id.
        lock: u64,
    },
    /// Mutex (or write-lock) released.
    LockRelease {
        /// Lock id.
        lock: u64,
    },
    /// Read-side of an RwLock acquired.
    RwReadAcquire {
        /// Lock id.
        lock: u64,
    },
    /// Read-side of an RwLock released.
    RwReadRelease {
        /// Lock id.
        lock: u64,
    },
    /// Atomic load from a cell.
    AtomicLoad {
        /// Cell id.
        cell: u64,
    },
    /// Atomic store to a cell.
    AtomicStore {
        /// Cell id.
        cell: u64,
    },
    /// Atomic read-modify-write (fetch_add etc.) on a cell.
    AtomicRmw {
        /// Cell id.
        cell: u64,
    },
    /// Annotated read of a logical shared-memory location.
    MemRead {
        /// Location id (chosen by the annotating code).
        loc: u64,
    },
    /// Annotated write of a logical shared-memory location.
    MemWrite {
        /// Location id (chosen by the annotating code).
        loc: u64,
    },
}

/// One recorded event: who did what, in global trace order.
#[derive(Debug, Clone)]
pub struct SyncEvent {
    /// Position in the trace (dense from 0 within one run).
    pub seq: u64,
    /// Stable thread key (thread name, or an explicit override).
    pub thread: Arc<str>,
    /// The operation.
    pub op: SyncOp,
}

/// The cooperative scheduler interface a checker installs for
/// *scheduled* mode. Implementations serialize execution: at most one
/// participating thread runs between consecutive `reach` calls.
pub trait Gate: Send + Sync {
    /// Called before every instrumented operation; blocks until the
    /// scheduler makes this thread the active one. This is the
    /// preemption point.
    fn reach(&self, thread: &str);
    /// Called when the thread's operation cannot complete right now
    /// (empty channel, contended lock): the scheduler should hand the
    /// turn to another runnable thread before the caller retries.
    fn yield_blocked(&self, thread: &str);
}

struct Hub {
    log: Mutex<LogInner>,
    gate: Mutex<Option<Arc<dyn Gate>>>,
}

struct LogInner {
    events: Vec<SyncEvent>,
}

fn hub() -> &'static Hub {
    static HUB: OnceLock<Hub> = OnceLock::new();
    HUB.get_or_init(|| Hub {
        log: Mutex::new(LogInner { events: Vec::new() }),
        gate: Mutex::new(None),
    })
}

fn lock_log(h: &Hub) -> std::sync::MutexGuard<'_, LogInner> {
    match h.log.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn lock_gate(h: &Hub) -> std::sync::MutexGuard<'_, Option<Arc<dyn Gate>>> {
    match h.gate.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Is any instrumentation active? One relaxed load — the fast path the
/// shims take on every operation.
#[inline]
pub fn recording() -> bool {
    MODE.load(Ordering::Relaxed) != MODE_OFF
}

/// Is a scheduler gate installed and serializing threads?
#[inline]
pub fn scheduling() -> bool {
    MODE.load(Ordering::Relaxed) == MODE_SCHED
}

/// Begins a recording run: clears the log, bumps the run epoch.
pub fn start_recording() {
    let h = hub();
    lock_log(h).events.clear();
    *lock_gate(h) = None;
    EPOCH.fetch_add(1, Ordering::SeqCst);
    MODE.store(MODE_RECORD, Ordering::SeqCst);
}

/// Begins a scheduled run: like [`start_recording`], plus installs the
/// gate every instrumented operation will park on.
pub fn start_scheduled(gate: Arc<dyn Gate>) {
    let h = hub();
    lock_log(h).events.clear();
    *lock_gate(h) = Some(gate);
    EPOCH.fetch_add(1, Ordering::SeqCst);
    MODE.store(MODE_SCHED, Ordering::SeqCst);
}

/// Stops instrumentation and drains the recorded trace. When a gate was
/// installed the caller must release its parked threads (e.g. a
/// scheduler `shutdown`) *before* calling this, or they stay parked.
pub fn stop() -> Vec<SyncEvent> {
    let h = hub();
    MODE.store(MODE_OFF, Ordering::SeqCst);
    *lock_gate(h) = None;
    std::mem::take(&mut lock_log(h).events)
}

thread_local! {
    static THREAD_KEY: std::cell::RefCell<Option<Arc<str>>> =
        const { std::cell::RefCell::new(None) };
}

/// Overrides the current thread's stable key (by default its name).
/// Checker drivers call this so the controlling thread has a fixed
/// identity ("driver") independent of the test harness's thread name.
pub fn set_thread_key(key: &str) {
    THREAD_KEY.with(|k| *k.borrow_mut() = Some(Arc::from(key)));
}

/// The current thread's stable key: the override if set, else the OS
/// thread name, else `"anon"`. Scheduled workloads must name every
/// participating thread uniquely.
pub fn thread_key() -> Arc<str> {
    THREAD_KEY.with(|k| {
        let mut k = k.borrow_mut();
        if let Some(key) = k.as_ref() {
            return Arc::clone(key);
        }
        let key: Arc<str> = match std::thread::current().name() {
            Some(name) => Arc::from(name),
            None => Arc::from("anon"),
        };
        *k = Some(Arc::clone(&key));
        Arc::clone(&key)
    })
}

/// Records one event and returns its trace sequence number. No-op
/// (returning 0) when recording is off.
pub fn record(op: SyncOp) -> u64 {
    if !recording() {
        return 0;
    }
    let h = hub();
    let mut log = lock_log(h);
    let seq = log.events.len() as u64;
    let thread = thread_key();
    log.events.push(SyncEvent { seq, thread, op });
    seq
}

/// Parks at the scheduler gate (scheduled mode only): the preemption
/// point in front of every instrumented operation.
pub fn reach() {
    if !scheduling() {
        return;
    }
    let gate = lock_gate(hub()).clone();
    if let Some(g) = gate {
        g.reach(&thread_key());
    }
}

/// Tells the scheduler this thread's operation would block; yields the
/// turn to another runnable thread before the caller retries.
pub fn yield_blocked() {
    if !scheduling() {
        return;
    }
    let gate = lock_gate(hub()).clone();
    if let Some(g) = gate {
        g.yield_blocked(&thread_key());
    } else {
        std::thread::yield_now();
    }
}

// ---- epoch-tagged id and counter slots -------------------------------

/// Global id wells, one per object class, reset (by epoch tagging) at
/// every `start_*`.
static CHAN_IDS: AtomicU64 = AtomicU64::new(0);
static LOCK_IDS: AtomicU64 = AtomicU64::new(0);
static CELL_IDS: AtomicU64 = AtomicU64::new(0);

fn fresh_from(well: &AtomicU64, epoch: u64) -> u64 {
    loop {
        let cur = well.load(Ordering::Relaxed);
        let (e, n) = (cur >> PAYLOAD_BITS, cur & PAYLOAD_MASK);
        let next_n = if e == epoch { n + 1 } else { 1 };
        let next = (epoch << PAYLOAD_BITS) | next_n;
        if well
            .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return next_n;
        }
    }
}

/// Classes of instrumented objects with their own id wells.
#[derive(Debug, Clone, Copy)]
pub enum IdClass {
    /// Channels (one id per sender/receiver pair).
    Channel,
    /// Mutexes and RwLocks.
    Lock,
    /// Atomic cells.
    Cell,
}

/// Returns this object's id for the current run, lazily assigning one
/// from the class's well. `slot` is an epoch-tagged cache the object
/// embeds; ids are dense from 1 within a run, and an object first seen
/// in a new run gets a fresh id (its cached one is from a dead epoch).
pub fn object_id(class: IdClass, slot: &AtomicU64) -> u64 {
    let epoch = EPOCH.load(Ordering::Relaxed);
    let cur = slot.load(Ordering::Relaxed);
    if cur >> PAYLOAD_BITS == epoch {
        return cur & PAYLOAD_MASK;
    }
    let well = match class {
        IdClass::Channel => &CHAN_IDS,
        IdClass::Lock => &LOCK_IDS,
        IdClass::Cell => &CELL_IDS,
    };
    let id = fresh_from(well, epoch);
    let tagged = (epoch << PAYLOAD_BITS) | id;
    // Another thread may have assigned concurrently; first one wins so
    // all users agree on the id.
    match slot.compare_exchange(cur, tagged, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => id,
        Err(winner) if winner >> PAYLOAD_BITS == epoch => winner & PAYLOAD_MASK,
        Err(_) => id,
    }
}

/// Advances an epoch-tagged per-object counter (e.g. a channel's message
/// numbers): dense from 1 within the current run.
pub fn epoch_counter_next(slot: &AtomicU64) -> u64 {
    let epoch = EPOCH.load(Ordering::Relaxed);
    fresh_from(slot, epoch)
}

/// Annotates a read of logical shared-memory location `loc`. Library
/// code marks the handful of places it touches cross-thread state so the
/// race detector has data accesses to order.
pub fn mem_read(loc: u64) {
    if recording() {
        reach();
        record(SyncOp::MemRead { loc });
    }
}

/// Annotates a write of logical shared-memory location `loc`.
pub fn mem_write(loc: u64) {
    if recording() {
        reach();
        record(SyncOp::MemWrite { loc });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Probe state is process-global; these tests run in the esr-sim test
    // binary alongside nothing else that records, but still serialize on
    // a local mutex so they cannot interleave with each other.
    static GUARD: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        match GUARD.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn off_mode_records_nothing() {
        let _g = locked();
        assert!(!recording());
        assert_eq!(record(SyncOp::MemRead { loc: 1 }), 0);
        assert!(stop().is_empty());
    }

    #[test]
    fn record_mode_captures_ordered_events() {
        let _g = locked();
        start_recording();
        record(SyncOp::MemWrite { loc: 7 });
        record(SyncOp::MemRead { loc: 7 });
        let events = stop();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert!(matches!(events[0].op, SyncOp::MemWrite { loc: 7 }));
        assert!(!recording());
    }

    #[test]
    fn ids_reset_per_epoch() {
        let _g = locked();
        start_recording();
        let slot_a = AtomicU64::new(0);
        let slot_b = AtomicU64::new(0);
        let a1 = object_id(IdClass::Channel, &slot_a);
        let b1 = object_id(IdClass::Channel, &slot_b);
        assert_eq!((a1, b1), (1, 2));
        assert_eq!(object_id(IdClass::Channel, &slot_a), 1, "cached");
        stop();
        start_recording();
        let slot_c = AtomicU64::new(0);
        assert_eq!(
            object_id(IdClass::Channel, &slot_c),
            1,
            "new epoch restarts the well"
        );
        assert_eq!(
            object_id(IdClass::Channel, &slot_a),
            2,
            "stale cached id is re-assigned"
        );
        stop();
    }

    #[test]
    fn epoch_counter_dense_per_run() {
        let _g = locked();
        start_recording();
        let slot = AtomicU64::new(0);
        assert_eq!(epoch_counter_next(&slot), 1);
        assert_eq!(epoch_counter_next(&slot), 2);
        stop();
        start_recording();
        assert_eq!(epoch_counter_next(&slot), 1);
        stop();
    }

    #[test]
    fn thread_key_defaults_to_thread_name() {
        let _g = locked();
        std::thread::Builder::new()
            .name("probe-key-test".into())
            .spawn(|| {
                assert_eq!(&*thread_key(), "probe-key-test");
                set_thread_key("override");
                assert_eq!(&*thread_key(), "override");
            })
            .expect("spawn")
            .join()
            .expect("join");
    }
}
