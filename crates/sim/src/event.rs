//! The event queue: a priority queue of timestamped events with
//! deterministic FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::VirtualTime;

/// A scheduled event: fires at `at`; `seq` breaks ties so that events
/// scheduled earlier fire earlier at the same instant.
#[derive(Debug)]
struct Scheduled<E> {
    at: VirtualTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event wins.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` to fire at absolute time `at`.
    pub fn schedule_at(&mut self, at: VirtualTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event, with its fire time.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// Removes and returns the earliest event only when `pred` accepts
    /// it; otherwise leaves the queue untouched. Lets a handler drain a
    /// run of matching events (e.g. all same-instant deliveries to one
    /// site) without disturbing anything behind them.
    pub fn pop_if(&mut self, pred: impl FnOnce(VirtualTime, &E) -> bool) -> Option<(VirtualTime, E)> {
        let head = self.heap.peek_mut()?;
        if !pred(head.at, &head.payload) {
            return None;
        }
        let s = std::collections::binary_heap::PeekMut::pop(head);
        Some((s.at, s.payload))
    }

    /// The fire time of the earliest pending event.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(VirtualTime(30), "c");
        q.schedule_at(VirtualTime(10), "a");
        q.schedule_at(VirtualTime(20), "b");
        assert_eq!(q.pop(), Some((VirtualTime(10), "a")));
        assert_eq!(q.pop(), Some((VirtualTime(20), "b")));
        assert_eq!(q.pop(), Some((VirtualTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(VirtualTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule_at(VirtualTime(7), ());
        q.schedule_at(VirtualTime(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(VirtualTime(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(VirtualTime(7)));
    }

    #[test]
    fn pop_if_only_takes_matching_head() {
        let mut q = EventQueue::new();
        q.schedule_at(VirtualTime(5), "a");
        q.schedule_at(VirtualTime(5), "b");
        q.schedule_at(VirtualTime(9), "c");
        assert_eq!(q.pop_if(|_, e| *e == "x"), None);
        assert_eq!(q.len(), 3, "a miss leaves the queue untouched");
        assert_eq!(q.pop_if(|t, e| t == VirtualTime(5) && *e == "a").unwrap().1, "a");
        assert_eq!(q.pop_if(|t, _| t == VirtualTime(5)).unwrap().1, "b");
        assert_eq!(q.pop_if(|t, _| t == VirtualTime(5)), None, "head is now at 9");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule_at(VirtualTime(10), 1);
        q.schedule_at(VirtualTime(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.schedule_at(VirtualTime(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }
}
