//! Deterministic random numbers for simulations.
//!
//! Every stochastic choice in the simulator — latency samples, drop
//! decisions, workload key selection — draws from a [`DetRng`] seeded at
//! simulation start, so a run is reproduced exactly by its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::Duration;

/// A seeded deterministic random number generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
    seed: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator started from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator; `salt` distinguishes
    /// children of the same parent (e.g. one per site).
    pub fn fork(&self, salt: u64) -> DetRng {
        DetRng::new(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.random_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.random_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random_range(0.0..1.0)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.random_bool(p)
        }
    }

    /// Exponentially distributed duration with the given mean, capped at
    /// 100× the mean so that a single unlucky draw cannot stall a run.
    pub fn exponential(&mut self, mean: Duration) -> Duration {
        let u: f64 = self.unit();
        // Inverse CDF; guard against ln(0).
        let sample = -(1.0 - u).max(f64::MIN_POSITIVE).ln() * mean.as_micros() as f64;
        let capped = sample.min(mean.as_micros() as f64 * 100.0);
        Duration::from_micros(capped as u64)
    }

    /// Uniformly distributed duration in `[lo, hi]`.
    pub fn uniform_duration(&mut self, lo: Duration, hi: Duration) -> Duration {
        if hi <= lo {
            return lo;
        }
        Duration::from_micros(self.range(lo.as_micros(), hi.as_micros() + 1))
    }

    /// Chooses an index by relative weights. Panics if `weights` is empty
    /// or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut draw = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if draw < *w {
                return i;
            }
            draw -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let sa: Vec<u64> = (0..20).map(|_| a.below(1_000_000)).collect();
        let sb: Vec<u64> = (0..20).map(|_| b.below(1_000_000)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let root = DetRng::new(7);
        let mut c1 = root.fork(1);
        let mut c1b = root.fork(1);
        let mut c2 = root.fork(2);
        assert_eq!(c1.below(100), c1b.below(100));
        let s1: Vec<u64> = (0..10).map(|_| c1.below(100)).collect();
        let s2: Vec<u64> = (0..10).map(|_| c2.below(100)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_roughly_matches_probability() {
        let mut r = DetRng::new(5);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::new(6);
        let mean = Duration::from_millis(10);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| r.exponential(mean).as_micros()).sum();
        let avg = total / n;
        assert!((8_000..12_000).contains(&avg), "avg {avg}us");
    }

    #[test]
    fn uniform_duration_bounds() {
        let mut r = DetRng::new(7);
        let lo = Duration::from_micros(100);
        let hi = Duration::from_micros(200);
        for _ in 0..1000 {
            let d = r.uniform_duration(lo, hi);
            assert!(d >= lo && d <= hi);
        }
        assert_eq!(r.uniform_duration(hi, lo), hi, "inverted range yields lo");
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut r = DetRng::new(8);
        let weights = [0.1, 0.9];
        let ones = (0..10_000).filter(|_| r.weighted_index(&weights) == 1).count();
        assert!(ones > 8_000, "got {ones}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
