//! Stable-queue throughput: the in-memory queue vs the crash-recoverable
//! file-backed queue (enqueue+ack cycles, recovery cost after a crash).

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use esr_storage::stable_queue::{FileQueue, MemQueue, StableQueue};

const BATCH: usize = 256;

fn payload(i: usize) -> Bytes {
    Bytes::from(format!("mset-payload-{i:06}"))
}

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("stable_queue");
    group.throughput(criterion::Throughput::Elements(BATCH as u64));

    group.bench_function(BenchmarkId::new("enqueue_ack", "mem"), |b| {
        b.iter(|| {
            let mut q = MemQueue::new();
            let ids: Vec<_> = (0..BATCH).map(|i| q.enqueue(payload(i))).collect();
            for id in ids {
                black_box(q.ack(id));
            }
        })
    });

    group.bench_function(BenchmarkId::new("enqueue_ack", "file"), |b| {
        let path = std::env::temp_dir().join(format!("esr-bench-{}.q", std::process::id()));
        b.iter(|| {
            let _ = std::fs::remove_file(&path);
            let mut q = FileQueue::open(&path).expect("open");
            let ids: Vec<_> = (0..BATCH).map(|i| q.enqueue(payload(i))).collect();
            for id in ids {
                black_box(q.ack(id));
            }
        });
        let _ = std::fs::remove_file(&path);
    });

    group.bench_function(BenchmarkId::new("recovery", "file"), |b| {
        // Pre-build a log with half the entries acked, then measure the
        // cost of crash recovery (reopen + replay).
        let path = std::env::temp_dir().join(format!("esr-bench-rec-{}.q", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut q = FileQueue::open(&path).expect("open");
            let ids: Vec<_> = (0..BATCH).map(|i| q.enqueue(payload(i))).collect();
            for id in ids.iter().step_by(2) {
                q.ack(*id);
            }
        }
        b.iter(|| {
            let q = FileQueue::open(&path).expect("reopen");
            black_box(q.len())
        });
        let _ = std::fs::remove_file(&path);
    });

    group.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
