//! Lock-manager throughput under the three compatibility tables — the
//! ablation behind Tables 2 and 3: how much concurrency does each
//! protocol's table buy on a query-heavy ET mix?
//!
//! Standard 2PL blocks queries behind update writers; ORDUP's table
//! (Table 2) lets queries through; COMMU's table (Table 3) additionally
//! lets commuting writers share locks. The benchmark acquires and
//! releases a fixed mix of locks and reports both wall time and the
//! grant/queue ratio.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use esr_core::ids::{EtId, ObjectId};
use esr_core::lock::{LockManager, LockMode, Protocol};
use esr_core::op::Operation;
use esr_core::value::Value;

/// One synthetic locking round: `n_ets` ETs touch a small hot object
/// set; a third are queries, a third commuting updaters, a third plain
/// writers. Each ET releases shortly after acquiring, so the queues stay
/// realistic (a lock manager with thousands of waiters on one object is
/// a broken application, not a benchmark). Returns grants for sanity.
fn locking_round(protocol: Protocol, n_ets: u64) -> (u64, u64) {
    let mut m = LockManager::new(protocol);
    // Two hot objects and a window of three live ETs: consecutive live
    // ETs regularly collide, so the protocol's table decides how much
    // runs concurrently.
    let objects = 2u64;
    for i in 0..n_ets {
        let et = EtId(i);
        let obj = ObjectId(i % objects);
        // Mode changes every 4 ETs, so same-object neighbours in the
        // live window often share a mode — including Inc/Inc pairs,
        // where COMMU's Comm cells beat ORDUP's.
        let _ = match (i / 4) % 3 {
            0 => m.acquire(et, obj, LockMode::RQ, None),
            1 => m.acquire(et, obj, LockMode::WU, Some(Operation::Incr(1))),
            _ => m.acquire(
                et,
                obj,
                LockMode::WU,
                Some(Operation::Write(Value::Int(i as i64))),
            ),
        };
        // Each ET ends three steps after it began.
        if i >= 3 {
            m.release_all(EtId(i - 3));
        }
    }
    (m.stats().granted, m.stats().queued)
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_manager");
    group.sample_size(20);
    for protocol in [Protocol::Standard2pl, Protocol::Ordup, Protocol::Commu] {
        group.bench_with_input(
            BenchmarkId::new("mixed_round", protocol.to_string()),
            &protocol,
            |b, &p| b.iter(|| black_box(locking_round(p, 1_000).0)),
        );
    }
    group.finish();

    // Report the concurrency each table buys (printed once, not timed):
    // fewer queued requests = more of the mix ran without waiting.
    for protocol in [Protocol::Standard2pl, Protocol::Ordup, Protocol::Commu] {
        let (_, queued) = locking_round(protocol, 1_000);
        eprintln!("{protocol}: {queued} of 1000 lock requests had to wait");
    }
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
