//! Wire codec throughput: MSet encode/decode and the framed RPC
//! protocol on top of it. These are the per-message CPU costs every
//! propagation pays on the TCP transport, so they bound the daemon's
//! link throughput.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use esr_core::ids::{ClientId, EtId, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_replica::mset::MSet;
use esr_replica::wire::{decode_frame, decode_mset, encode_frame, encode_mset, Frame};

const BATCH: usize = 256;

/// A small counter update: the common case on the COMMU path.
fn small_mset(i: u64) -> MSet {
    MSet::new(
        EtId(i + 1),
        SiteId(i % 3),
        vec![
            ObjectOp::new(ObjectId(i % 8), Operation::Incr(i as i64 + 1)),
            ObjectOp::new(ObjectId(8), Operation::Incr(1)),
        ],
    )
    .sequenced(SeqNo(i))
}

/// A wide mixed-operation update touching many objects (stress case).
fn large_mset(i: u64) -> MSet {
    let ops = (0..32)
        .map(|k| {
            let object = ObjectId(k);
            match k % 4 {
                0 => ObjectOp::new(object, Operation::Incr(k as i64)),
                1 => ObjectOp::new(object, Operation::Write(Value::Int(k as i64))),
                2 => ObjectOp::new(
                    object,
                    Operation::TimestampedWrite(
                        VersionTs::new(i + k, ClientId(k)),
                        Value::Text(format!("value-{k:04}")),
                    ),
                ),
                _ => ObjectOp::new(object, Operation::MulBy(2)),
            }
        })
        .collect();
    MSet::new(EtId(i + 1), SiteId(i % 3), ops)
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    group.throughput(Throughput::Elements(BATCH as u64));

    for (shape, make) in [
        ("small", small_mset as fn(u64) -> MSet),
        ("large", large_mset as fn(u64) -> MSet),
    ] {
        let msets: Vec<MSet> = (0..BATCH as u64).map(make).collect();
        let encoded: Vec<Bytes> = msets.iter().map(encode_mset).collect();
        let framed: Vec<Bytes> = msets
            .iter()
            .map(|m| encode_frame(&Frame::MSet(m.clone())))
            .collect();

        group.bench_function(BenchmarkId::new("encode_mset", shape), |b| {
            b.iter(|| {
                for m in &msets {
                    black_box(encode_mset(black_box(m)));
                }
            })
        });

        group.bench_function(BenchmarkId::new("decode_mset", shape), |b| {
            b.iter(|| {
                for e in &encoded {
                    black_box(decode_mset(black_box(e)).expect("valid encoding"));
                }
            })
        });

        group.bench_function(BenchmarkId::new("encode_frame", shape), |b| {
            b.iter(|| {
                for m in &msets {
                    black_box(encode_frame(black_box(&Frame::MSet(m.clone()))));
                }
            })
        });

        group.bench_function(BenchmarkId::new("decode_frame", shape), |b| {
            b.iter(|| {
                for f in &framed {
                    black_box(decode_frame(black_box(f)).expect("valid encoding"));
                }
            })
        });
    }

    // Control-plane frames are tiny; measure the fixed per-frame cost.
    let controls: Vec<Bytes> = (0..BATCH as u64)
        .map(|i| {
            encode_frame(&Frame::Applied {
                site: SiteId(i % 3),
                et: EtId(i + 1),
                version: Some(VersionTs::new(i + 1, ClientId(i % 3))),
            })
        })
        .collect();
    group.bench_function(BenchmarkId::new("decode_frame", "control"), |b| {
        b.iter(|| {
            for f in &controls {
                black_box(decode_frame(black_box(f)).expect("valid encoding"));
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
