//! Scaling of the serializability and epsilon-serializability checkers
//! with history length (the conflict-graph test is quadratic in events;
//! this bench keeps that honest).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use esr_core::history::{History, HistoryEvent};
use esr_core::ids::{EtId, ObjectId};
use esr_core::op::{ObjectOp, Operation};
use esr_core::serializability::{is_epsilon_serializable, is_serializable};
use esr_core::value::Value;

/// A history of `n` events: interleaved update ETs (each a read+write on
/// its own object, plus one write to a shared object in sequence order —
/// SR by construction) and query ETs sprinkled through.
fn make_history(n: usize) -> History {
    let mut events = Vec::with_capacity(n);
    let shared = ObjectId(0);
    for i in 0..n {
        let et = EtId((i / 3) as u64 + 1);
        let ev = match i % 3 {
            0 => HistoryEvent::new(
                et,
                ObjectOp::new(ObjectId(1 + (i as u64 % 32)), Operation::Read),
            ),
            1 => HistoryEvent::new(
                et,
                ObjectOp::new(shared, Operation::Write(Value::Int(i as i64))),
            ),
            _ => HistoryEvent::new(
                // A query ET reading the shared object mid-flight.
                EtId(1_000_000 + (i as u64 / 3)),
                ObjectOp::new(shared, Operation::Read),
            ),
        };
        events.push(ev);
    }
    History::from_events(events)
}

fn bench_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkers");
    for n in [64usize, 256, 1024] {
        let h = make_history(n);
        group.bench_with_input(BenchmarkId::new("is_serializable", n), &h, |b, h| {
            b.iter(|| black_box(is_serializable(h)))
        });
        group.bench_with_input(
            BenchmarkId::new("is_epsilon_serializable", n),
            &h,
            |b, h| b.iter(|| black_box(is_epsilon_serializable(h))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
