//! MSet apply-path throughput for each replica control method.
//!
//! Measures the per-site cost of processing one delivered update MSet:
//! ORDUP's hold-back bookkeeping vs COMMU's immediate apply vs RITU's
//! LWW arbitration vs RITU-MV's version install vs COMPE's before-image
//! logging. This is the "MSet processing" step of §2.4 in isolation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use esr_core::ids::{ClientId, EtId, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_replica::commu::CommuSite;
use esr_replica::compe::CompeSite;
use esr_replica::mset::MSet;
use esr_replica::ordup::OrdupSite;
use esr_replica::ritu::{RituMvSite, RituOverwriteSite};
use esr_replica::site::ReplicaSite;

const N: u64 = 1_000;
const OBJECTS: u64 = 64;

fn inc_msets() -> Vec<MSet> {
    (0..N)
        .map(|i| {
            MSet::new(
                EtId(i),
                SiteId(1),
                vec![ObjectOp::new(ObjectId(i % OBJECTS), Operation::Incr(1))],
            )
        })
        .collect()
}

fn tw_msets() -> Vec<MSet> {
    (0..N)
        .map(|i| {
            MSet::new(
                EtId(i),
                SiteId(1),
                vec![ObjectOp::new(
                    ObjectId(i % OBJECTS),
                    Operation::TimestampedWrite(
                        VersionTs::new(i + 1, ClientId(0)),
                        Value::Int(i as i64),
                    ),
                )],
            )
        })
        .collect()
}

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_path");
    group.throughput(criterion::Throughput::Elements(N));

    group.bench_function(BenchmarkId::new("deliver", "ORDUP-inorder"), |b| {
        let msets: Vec<MSet> = inc_msets()
            .into_iter()
            .enumerate()
            .map(|(i, m)| m.sequenced(SeqNo(i as u64)))
            .collect();
        b.iter(|| {
            let mut s = OrdupSite::new(SiteId(0));
            for m in &msets {
                s.deliver(black_box(m.clone()));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver", "ORDUP-reversed"), |b| {
        // Worst case: everything held back until the first arrives.
        let mut msets: Vec<MSet> = inc_msets()
            .into_iter()
            .enumerate()
            .map(|(i, m)| m.sequenced(SeqNo(i as u64)))
            .collect();
        msets.reverse();
        b.iter(|| {
            let mut s = OrdupSite::new(SiteId(0));
            for m in &msets {
                s.deliver(black_box(m.clone()));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver", "COMMU"), |b| {
        let msets = inc_msets();
        b.iter(|| {
            let mut s = CommuSite::new(SiteId(0));
            for m in &msets {
                s.deliver(black_box(m.clone()));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver", "RITU-lww"), |b| {
        let msets = tw_msets();
        b.iter(|| {
            let mut s = RituOverwriteSite::new(SiteId(0));
            for m in &msets {
                s.deliver(black_box(m.clone()));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver", "RITU-mv"), |b| {
        let msets = tw_msets();
        b.iter(|| {
            let mut s = RituMvSite::new(SiteId(0));
            for m in &msets {
                s.deliver(black_box(m.clone()));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver", "COMPE"), |b| {
        let msets = inc_msets();
        b.iter(|| {
            let mut s = CompeSite::new(SiteId(0));
            for m in &msets {
                s.deliver(black_box(m.clone()));
            }
            // Commit everything so the log drains like a healthy run.
            for i in 0..N {
                s.commit(EtId(i));
            }
            black_box(s.applied())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);
