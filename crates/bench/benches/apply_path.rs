//! MSet apply-path throughput for each replica control method.
//!
//! Measures the per-site cost of processing one delivered update MSet:
//! ORDUP's hold-back bookkeeping vs COMMU's immediate apply vs RITU's
//! LWW arbitration vs RITU-MV's version install vs COMPE's before-image
//! logging. This is the "MSet processing" step of §2.4 in isolation.
//!
//! Each method is measured twice: `deliver` feeds MSets one at a time
//! (the seed behaviour), `deliver_batch` feeds the same stream in
//! [`BATCH`]-sized chunks, exercising the coalescing fast paths — COMMU
//! folds commuting ops per object, RITU-LWW reduces each object to its
//! max-timestamp write, RITU-MV installs versions in grouped runs, and
//! ORDUP drains its hold-back once per chunk.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use esr_core::ids::{ClientId, EtId, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_replica::commu::CommuSite;
use esr_replica::compe::CompeSite;
use esr_replica::mset::MSet;
use esr_replica::ordup::OrdupSite;
use esr_replica::ritu::{RituMvSite, RituOverwriteSite};
use esr_replica::site::ReplicaSite;

const N: u64 = 16_384;
/// Operations per update MSet — a multi-object update ET, the shape §2.2
/// assumes (an MSet is a *set* of replica maintenance operations).
const OPS_PER_MSET: u64 = 16;
/// Chunk size for the batched variants — the backlog a site drains in
/// one step when it falls behind (or catches up after a partition).
const BATCH: usize = 2048;
/// Each BATCH-sized window of update ETs works over its own REGION of
/// the keyspace — the temporal locality a shifting hot set produces. The
/// store grows to N/BATCH × REGION objects (16 K here, past cache-resident
/// size), while every chunk still carries BATCH × OPS_PER_MSET / REGION
/// ≈ 16 same-object repetitions for the coalescing fast paths to fold.
const REGION: u64 = 2048;

fn object_for(i: u64, j: u64) -> ObjectId {
    // Fibonacci-hash scramble: objects within a window are drawn
    // pseudo-randomly from its REGION (an update ET writes scattered
    // keys, not a consecutive range), deterministically across runs.
    let window = i / BATCH as u64;
    let k = (i * OPS_PER_MSET + j).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ObjectId(window * REGION + (k >> 32) % REGION)
}

fn inc_msets() -> Vec<MSet> {
    (0..N)
        .map(|i| {
            let ops = (0..OPS_PER_MSET)
                .map(|j| ObjectOp::new(object_for(i, j), Operation::Incr(1)))
                .collect();
            MSet::new(EtId(i), SiteId(1), ops)
        })
        .collect()
}

fn tw_msets() -> Vec<MSet> {
    (0..N)
        .map(|i| {
            let ops = (0..OPS_PER_MSET)
                .map(|j| {
                    ObjectOp::new(
                        object_for(i, j),
                        Operation::TimestampedWrite(
                            VersionTs::new(i + 1, ClientId(0)),
                            Value::Int(i as i64),
                        ),
                    )
                })
                .collect();
            MSet::new(EtId(i), SiteId(1), ops)
        })
        .collect()
}

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_path");
    group.throughput(criterion::Throughput::Elements(N * OPS_PER_MSET));

    group.bench_function(BenchmarkId::new("deliver", "ORDUP-inorder"), |b| {
        let msets: Vec<MSet> = inc_msets()
            .into_iter()
            .enumerate()
            .map(|(i, m)| m.sequenced(SeqNo(i as u64)))
            .collect();
        b.iter(|| {
            let mut s = OrdupSite::new(SiteId(0));
            for m in &msets {
                s.deliver(black_box(m.clone()));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver", "ORDUP-reversed"), |b| {
        // Worst case: everything held back until the first arrives.
        let mut msets: Vec<MSet> = inc_msets()
            .into_iter()
            .enumerate()
            .map(|(i, m)| m.sequenced(SeqNo(i as u64)))
            .collect();
        msets.reverse();
        b.iter(|| {
            let mut s = OrdupSite::new(SiteId(0));
            for m in &msets {
                s.deliver(black_box(m.clone()));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver", "COMMU"), |b| {
        let msets = inc_msets();
        b.iter(|| {
            let mut s = CommuSite::new(SiteId(0));
            for m in &msets {
                s.deliver(black_box(m.clone()));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver", "RITU-lww"), |b| {
        let msets = tw_msets();
        b.iter(|| {
            let mut s = RituOverwriteSite::new(SiteId(0));
            for m in &msets {
                s.deliver(black_box(m.clone()));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver", "RITU-mv"), |b| {
        let msets = tw_msets();
        b.iter(|| {
            let mut s = RituMvSite::new(SiteId(0));
            for m in &msets {
                s.deliver(black_box(m.clone()));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver", "COMPE"), |b| {
        let msets = inc_msets();
        b.iter(|| {
            let mut s = CompeSite::new(SiteId(0));
            for m in &msets {
                s.deliver(black_box(m.clone()));
            }
            // Commit everything so the log drains like a healthy run.
            for i in 0..N {
                s.commit(EtId(i));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver_batch", "ORDUP-inorder"), |b| {
        let msets: Vec<MSet> = inc_msets()
            .into_iter()
            .enumerate()
            .map(|(i, m)| m.sequenced(SeqNo(i as u64)))
            .collect();
        b.iter(|| {
            let mut s = OrdupSite::new(SiteId(0));
            for chunk in msets.chunks(BATCH) {
                s.deliver_batch(black_box(chunk.to_vec()));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver_batch", "ORDUP-reversed"), |b| {
        let mut msets: Vec<MSet> = inc_msets()
            .into_iter()
            .enumerate()
            .map(|(i, m)| m.sequenced(SeqNo(i as u64)))
            .collect();
        msets.reverse();
        b.iter(|| {
            let mut s = OrdupSite::new(SiteId(0));
            for chunk in msets.chunks(BATCH) {
                s.deliver_batch(black_box(chunk.to_vec()));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver_batch", "COMMU"), |b| {
        let msets = inc_msets();
        b.iter(|| {
            let mut s = CommuSite::new(SiteId(0));
            for chunk in msets.chunks(BATCH) {
                s.deliver_batch(black_box(chunk.to_vec()));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver_batch", "RITU-lww"), |b| {
        let msets = tw_msets();
        b.iter(|| {
            let mut s = RituOverwriteSite::new(SiteId(0));
            for chunk in msets.chunks(BATCH) {
                s.deliver_batch(black_box(chunk.to_vec()));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver_batch", "RITU-mv"), |b| {
        let msets = tw_msets();
        b.iter(|| {
            let mut s = RituMvSite::new(SiteId(0));
            for chunk in msets.chunks(BATCH) {
                s.deliver_batch(black_box(chunk.to_vec()));
            }
            black_box(s.applied())
        })
    });

    group.bench_function(BenchmarkId::new("deliver_batch", "COMPE"), |b| {
        let msets = inc_msets();
        b.iter(|| {
            let mut s = CompeSite::new(SiteId(0));
            for chunk in msets.chunks(BATCH) {
                s.deliver_batch(black_box(chunk.to_vec()));
            }
            for i in 0..N {
                s.commit(EtId(i));
            }
            black_box(s.applied())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);
