//! Instrumentation overhead on the hottest path in the workspace.
//!
//! The `esr-obs` contract is "a constant number of relaxed atomics per
//! *batch*, one branch per call when detached" — cheap enough to leave
//! attached everywhere, including the batched COMMU apply path that
//! PR 1 optimised. This bench measures exactly that claim: the same
//! [`CommuSite::deliver_batch`] stream as `apply_path`, once with a
//! detached (default) bundle and once attached to a live registry. The
//! acceptance bar is <5% overhead on the instrumented variant.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use esr_core::ids::{EtId, ObjectId, SiteId};
use esr_core::op::{ObjectOp, Operation};
use esr_obs::{MetricsRegistry, SiteInstruments};
use esr_replica::commu::CommuSite;
use esr_replica::mset::MSet;
use esr_replica::site::ReplicaSite;

// Mirrors apply_path.rs so the two benches are comparable.
const N: u64 = 16_384;
const OPS_PER_MSET: u64 = 16;
const BATCH: usize = 2048;
const REGION: u64 = 2048;

fn object_for(i: u64, j: u64) -> ObjectId {
    let window = i / BATCH as u64;
    let k = (i * OPS_PER_MSET + j).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ObjectId(window * REGION + (k >> 32) % REGION)
}

fn inc_msets() -> Vec<MSet> {
    (0..N)
        .map(|i| {
            let ops = (0..OPS_PER_MSET)
                .map(|j| ObjectOp::new(object_for(i, j), Operation::Incr(1)))
                .collect();
            MSet::new(EtId(i), SiteId(1), ops)
        })
        .collect()
}

fn run_batched(mut site: CommuSite, chunks: &[Vec<MSet>]) -> u64 {
    for chunk in chunks {
        site.deliver_batch(black_box(chunk.clone()));
    }
    site.applied()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(criterion::Throughput::Elements(N * OPS_PER_MSET));

    let chunks: Vec<Vec<MSet>> = inc_msets().chunks(BATCH).map(<[MSet]>::to_vec).collect();

    group.bench_function(
        BenchmarkId::new("COMMU-batched", "uninstrumented"),
        |b| {
            b.iter(|| {
                // Default bundle: detached, one branch per batch.
                black_box(run_batched(CommuSite::new(SiteId(0)), &chunks))
            })
        },
    );

    group.bench_function(BenchmarkId::new("COMMU-batched", "instrumented"), |b| {
        let registry = MetricsRegistry::new();
        b.iter(|| {
            let mut site = CommuSite::new(SiteId(0));
            // Re-attaching returns the same registered cells each
            // iteration, exactly like a restarting site.
            site.attach_metrics(SiteInstruments::for_site(&registry, "COMMU", 0));
            black_box(run_batched(site, &chunks))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
