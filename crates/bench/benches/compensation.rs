//! Compensation cost (experiment E8's microbenchmark): the commutative
//! fast path vs suffix rollback-and-replay, as a function of how much
//! log lies after the aborted MSet.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use esr_core::ids::{EtId, ObjectId};
use esr_core::op::{ObjectOp, Operation};
use esr_storage::recovery_log::RecoveryLog;
use esr_storage::store::ObjectStore;

/// Builds a store+log with `suffix_len` records after the first (the
/// eventual abort victim). `commutative` selects Inc-only suffixes
/// (cheap path) or alternating Inc/Mul (forces suffix rollback).
fn build(suffix_len: usize, commutative: bool) -> (ObjectStore, RecoveryLog) {
    let mut store = ObjectStore::new();
    let mut log = RecoveryLog::new();
    let x = ObjectId(0);
    log.apply_mset(&mut store, EtId(0), &[ObjectOp::new(x, Operation::Incr(10))])
        .expect("applies");
    for i in 0..suffix_len {
        let op = if commutative || i % 2 == 0 {
            Operation::Incr(1 + i as i64)
        } else {
            // MulBy(1) conflicts with Incr (different families) without
            // growing the value — a 256-record suffix of MulBy(2) would
            // overflow i64.
            Operation::MulBy(1)
        };
        log.apply_mset(&mut store, EtId(i as u64 + 1), &[ObjectOp::new(x, op)])
            .expect("applies");
    }
    (store, log)
}

fn bench_compensation(c: &mut Criterion) {
    let mut group = c.benchmark_group("compensation");
    for suffix_len in [0usize, 8, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("fast_path", suffix_len),
            &suffix_len,
            |b, &n| {
                b.iter_with_setup(
                    || build(n, true),
                    |(mut store, mut log)| {
                        let report = log
                            .compensate(&mut store, EtId(0))
                            .expect("at risk")
                            .expect("applies");
                        black_box(report.ops_undone)
                    },
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("suffix_rollback", suffix_len),
            &suffix_len,
            |b, &n| {
                b.iter_with_setup(
                    || build(n, false),
                    |(mut store, mut log)| {
                        let report = log
                            .compensate(&mut store, EtId(0))
                            .expect("at risk")
                            .expect("applies");
                        black_box(report.ops_undone + report.ops_replayed)
                    },
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compensation);
criterion_main!(benches);
