//! End-to-end simulation cost of asynchronous replica control vs the
//! synchronous baselines (the harness-level companion of experiment E7).
//!
//! Each iteration simulates a complete 100-update run to quiescence:
//! COMMU through the event-driven `SimCluster`, write-all through the
//! 2PC timeline model, and weighted voting through the quorum model.
//! Criterion reports the simulator's wall-clock cost; the *virtual-time*
//! results (who actually commits faster inside the simulated world) are
//! printed by `cargo run -p esr-bench --bin experiments -- e7`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use esr_core::ids::{ObjectId, SiteId};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_net::faults::PartitionSchedule;
use esr_net::latency::LatencyModel;
use esr_net::topology::LinkConfig;
use esr_replica::cluster::{ClusterConfig, Method, SimCluster};
use esr_replica::quorum::QuorumCluster;
use esr_replica::sync2pc::TwoPcCluster;
use esr_sim::time::{Duration, VirtualTime};

const UPDATES: usize = 100;
const SITES: usize = 4;

fn link() -> LinkConfig {
    LinkConfig::reliable(LatencyModel::Exponential(Duration::from_millis(10)))
}

fn run_commu(seed: u64) -> u64 {
    let cfg = ClusterConfig::new(Method::Commu)
        .with_sites(SITES)
        .with_link(link())
        .with_seed(seed);
    let mut c = SimCluster::new(cfg);
    for i in 0..UPDATES {
        c.advance_to(VirtualTime::from_millis(i as u64 * 5));
        c.submit_update(
            SiteId(i as u64 % SITES as u64),
            vec![ObjectOp::new(ObjectId(i as u64 % 16), Operation::Incr(1))],
        );
    }
    let t = c.run_until_quiescent();
    assert!(c.converged());
    t.as_micros()
}

fn run_2pc(seed: u64) -> u64 {
    let mut c = TwoPcCluster::new(SITES, link(), PartitionSchedule::none(), seed);
    let mut last = VirtualTime::ZERO;
    for i in 0..UPDATES {
        let r = c.submit_update(
            SiteId(i as u64 % SITES as u64),
            &[ObjectOp::new(ObjectId(i as u64 % 16), Operation::Incr(1))],
            VirtualTime::from_millis(i as u64 * 5),
        );
        last = last.max(r.completed);
    }
    last.as_micros()
}

fn run_quorum(seed: u64) -> u64 {
    let mut c = QuorumCluster::new(SITES, link(), PartitionSchedule::none(), seed);
    let mut last = VirtualTime::ZERO;
    for i in 0..UPDATES {
        let r = c.write(
            SiteId(i as u64 % SITES as u64),
            ObjectId(i as u64 % 16),
            Value::Int(i as i64),
            VirtualTime::from_millis(i as u64 * 5),
        );
        last = last.max(r.decided);
    }
    last.as_micros()
}

fn bench_systems(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_vs_async");
    group.bench_function(BenchmarkId::new("run_100_updates", "COMMU"), |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_commu(seed))
        })
    });
    group.bench_function(BenchmarkId::new("run_100_updates", "2PC"), |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_2pc(seed))
        })
    });
    group.bench_function(BenchmarkId::new("run_100_updates", "quorum"), |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_quorum(seed))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_systems);
criterion_main!(benches);
