//! Open-loop load against a live multi-site cluster, with span-derived
//! per-stage latency attribution.
//!
//! Forks one `esrd` (COMMU) per site into child processes, then drives
//! the YCSB-style open-loop driver (`esr_workload::driver`) through the
//! client plane: zipfian keys, a read/update mix, a fixed arrival rate,
//! and N worker threads. End-to-end latency is measured from each op's
//! *scheduled* arrival (coordinated-omission-free). After the run
//! quiesces, a sample of the minted ETs is traced back through every
//! site's span ring (`SpanQuery`), merged into causal timelines, and
//! the critical-path edges are aggregated into per-stage percentiles —
//! so the JSON answers both "how fast is the cluster" and "where does
//! the time go".
//!
//! Usage: `cluster_load [--test] [--ops N] [--rate N] [--clients N]
//!                      [--read-pct N] [--sites N] [--json [PATH]]`
//!   --test    small CI-sized run (200 ops at 400/s, 2 clients)
//!   --json    output path (default BENCH_cluster.json in cwd)

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use esr_core::ids::SiteId;
use esr_runtime::daemon::resolve_addr;
use esr_runtime::{critical_path, merge_timeline, Daemon, DaemonConfig, RpcClient, RtMethod};
use esr_workload::driver::{self, DriverConfig, LatencySummary};
use esr_workload::{percentile_per_mille, KeyDist};

/// How many of the run's ETs get their spans scraped and attributed
/// (per-ET scrape is a full-cluster round trip; a sample is plenty for
/// stable stage percentiles).
const STAGE_SAMPLE: usize = 200;

/// Child mode: host one site of the cluster until the parent kills us.
fn serve(dir: PathBuf, site: u64, sites: u64) -> ! {
    let _daemon = Daemon::start(DaemonConfig {
        site: SiteId(site),
        sites: sites as usize,
        method: RtMethod::Commu,
        dir,
        ckpt_bytes: None,
    })
    .expect("start daemon");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Strips a per-peer `sN ` prefix so one stage bucket aggregates the
/// same edge across peers ("s1 transit" and "s2 transit" → "transit").
fn stage_key(label: &str) -> String {
    match label.split_once(' ') {
        Some((head, rest))
            if head.len() >= 2
                && head.starts_with('s')
                && head[1..].chars().all(|c| c.is_ascii_digit()) =>
        {
            rest.to_owned()
        }
        _ => label.to_owned(),
    }
}

fn latency_json(name: &str, s: &LatencySummary) -> String {
    format!(
        "  \"{name}\": {{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \
         \"p99_us\": {}, \"p999_us\": {}, \"max_us\": {}}}",
        s.count, s.mean_us, s.p50_us, s.p99_us, s.p999_us, s.max_us
    )
}

fn main() {
    let mut cfg = DriverConfig {
        sites: 3,
        objects: 256,
        dist: KeyDist::Zipf(0.99),
        read_pct: 50,
        rate_per_sec: 2000,
        clients: 8,
        total_ops: 10_000,
        et_base: 1_000_000,
        epsilon_limit: u64::MAX,
        seed: 42,
    };
    let mut json_path = PathBuf::from("BENCH_cluster.json");
    let mut args = std::env::args().skip(1);
    fn num(args: &mut impl Iterator<Item = String>, what: &str) -> u64 {
        args.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{what} needs a number"))
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--serve" => {
                let dir = PathBuf::from(args.next().expect("--serve DIR SITE SITES"));
                let site = num(&mut args, "--serve SITE");
                let sites = num(&mut args, "--serve SITES");
                serve(dir, site, sites);
            }
            "--test" | "-t" => {
                cfg.total_ops = 200;
                cfg.rate_per_sec = 400;
                cfg.clients = 2;
            }
            "--ops" => cfg.total_ops = num(&mut args, "--ops"),
            "--rate" => cfg.rate_per_sec = num(&mut args, "--rate"),
            "--clients" => cfg.clients = num(&mut args, "--clients") as usize,
            "--read-pct" => cfg.read_pct = num(&mut args, "--read-pct"),
            "--sites" => cfg.sites = num(&mut args, "--sites"),
            "--json" => {
                if let Some(p) = args.next() {
                    json_path = PathBuf::from(p);
                }
            }
            other => eprintln!("ignoring unknown arg {other:?}"),
        }
    }

    let dir = std::env::temp_dir().join(format!("esr-cluster-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create cluster dir");
    let exe = std::env::current_exe().expect("current exe");
    let mut children: Vec<std::process::Child> = (0..cfg.sites)
        .map(|site| {
            std::process::Command::new(&exe)
                .arg("--serve")
                .arg(&dir)
                .arg(site.to_string())
                .arg(cfg.sites.to_string())
                .spawn()
                .expect("spawn daemon process")
        })
        .collect();

    let deadline = Instant::now() + Duration::from_secs(10);
    for site in 0..cfg.sites {
        while resolve_addr(&dir, SiteId(site)).is_none() {
            assert!(
                Instant::now() < deadline,
                "site {site} did not publish an address"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    println!(
        "driving {} ops at {}/s over {} clients against {} sites ({}% reads)...",
        cfg.total_ops, cfg.rate_per_sec, cfg.clients, cfg.sites, cfg.read_pct
    );
    let report = driver::run(&dir, &cfg).expect("load run");
    println!(
        "issued {} ({} errors) in {:.2}s -> {:.0} ops/s; \
         update p50/p99/p999 {}us/{}us/{}us, read p50/p99 {}us/{}us",
        report.issued,
        report.errors,
        report.elapsed_us as f64 / 1e6,
        report.achieved_rate,
        report.update.p50_us,
        report.update.p99_us,
        report.update.p999_us,
        report.read.p50_us,
        report.read.p99_us,
    );

    // Quiesce before scraping spans so completion-side stages exist.
    let deadline = Instant::now() + Duration::from_secs(30);
    'settle: loop {
        let mut all = true;
        for site in 0..cfg.sites {
            let st = RpcClient::connect_dir(&dir, SiteId(site), Duration::from_secs(5))
                .and_then(|mut c| c.status())
                .expect("status");
            all &= st.settled && st.outbound_pending == 0;
        }
        if all {
            break 'settle;
        }
        assert!(Instant::now() < deadline, "cluster did not settle");
        std::thread::sleep(Duration::from_millis(50));
    }

    // Per-stage attribution: scrape every site's span ring for a sample
    // of ETs, merge causally, and bucket the critical-path edges.
    let sample: Vec<_> = report.ets.iter().take(STAGE_SAMPLE).copied().collect();
    let mut clients: Vec<RpcClient> = (0..cfg.sites)
        .map(|s| {
            RpcClient::connect_dir(&dir, SiteId(s), Duration::from_secs(5)).expect("connect")
        })
        .collect();
    let mut stages: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut span_drops = 0u64;
    for &et in &sample {
        let per_site: Vec<_> = clients
            .iter_mut()
            .enumerate()
            .map(|(s, c)| {
                let (dropped, spans) = c.spans(et.raw()).expect("span scrape");
                span_drops += dropped;
                (SiteId(s as u64), spans)
            })
            .collect();
        let timeline = merge_timeline(&per_site, et);
        for (label, us) in critical_path(&timeline) {
            if let Some(us) = us {
                stages.entry(stage_key(&label)).or_default().push(us);
            }
        }
    }

    let mut out = String::from("{\n  \"bench\": \"cluster_load\",\n");
    out.push_str(&format!(
        "  \"sites\": {}, \"clients\": {}, \"rate_per_sec\": {}, \"total_ops\": {}, \
         \"read_pct\": {}, \"zipf_theta\": 0.99,\n",
        cfg.sites, cfg.clients, cfg.rate_per_sec, cfg.total_ops, cfg.read_pct
    ));
    out.push_str(&format!(
        "  \"errors\": {}, \"elapsed_secs\": {:.3}, \"achieved_rate\": {:.0},\n",
        report.errors,
        report.elapsed_us as f64 / 1e6,
        report.achieved_rate
    ));
    out.push_str(&latency_json("update_latency", &report.update));
    out.push_str(",\n");
    out.push_str(&latency_json("read_latency", &report.read));
    out.push_str(",\n");
    out.push_str(&format!(
        "  \"stage_sample_ets\": {}, \"span_ring_drops\": {span_drops},\n  \"stages_us\": [\n",
        sample.len()
    ));
    let n_stages = stages.len();
    for (i, (label, samples)) in stages.iter_mut().enumerate() {
        samples.sort_unstable();
        out.push_str(&format!(
            "    {{\"stage\": \"{label}\", \"count\": {}, \"p50\": {}, \"p99\": {}, \
             \"p999\": {}}}{}\n",
            samples.len(),
            percentile_per_mille(samples, 500),
            percentile_per_mille(samples, 990),
            percentile_per_mille(samples, 999),
            if i + 1 < n_stages { "," } else { "" },
        ));
        println!(
            "stage {label:<20} n={:<6} p50 {:>7}us  p99 {:>7}us",
            samples.len(),
            percentile_per_mille(samples, 500),
            percentile_per_mille(samples, 990),
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&json_path, out).expect("write json");
    println!("wrote {}", json_path.display());

    for c in &mut children {
        let _ = c.kill();
        let _ = c.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
