//! Recovery cost: full-journal replay vs snapshot + suffix.
//!
//! Builds a write-ahead journal of N accepted MSets (default one
//! million), then boots the same site state both ways and times them:
//!
//!  * **full** — open the journal and `NodeCore::recover` over every
//!    live record, the only option before checkpoints existed;
//!  * **snapshot** — cut a checkpoint covering all but a small tail,
//!    install it, retire the covered prefix (the journal file shrinks
//!    via compaction — the truncation half of the claim), then boot by
//!    `NodeCore::restore` + replay of the remaining suffix.
//!
//! Both boots include their real I/O (journal open, snapshot load and
//! CRC check, codec work), and the restored core is checked
//! bit-identical to the fully replayed one before any number is
//! reported. The JSON records the replay times, the speedup, and the
//! journal size before/after truncation.
//!
//! Usage: `recovery_replay [--entries N] [--tail N] [--test] [--json [PATH]]`
//!   --entries N  journal records to build (default 1_000_000)
//!   --tail N     records left uncovered past the cut (default 10_000)
//!   --test       tiny run (5_000 entries, 500 tail), for CI smoke
//!   --json PATH  output path (default BENCH_ckpt.json in cwd)

use std::path::PathBuf;
use std::time::Instant;

use esr_core::ids::{EtId, ObjectId, SiteId};
use esr_core::op::{ObjectOp, Operation};
use esr_replica::mset::MSet;
use esr_runtime::ctrl::{Effect, NodeCore, NodeEvent};
use esr_runtime::recovery::ApplyJournal;
use esr_runtime::state::{RtMethod, SiteState};
use esr_runtime::{decode_payload, encode_payload};
use esr_storage::snapshot;

const SITE: SiteId = SiteId(1);
const SITES: usize = 3;
const METHOD: RtMethod = RtMethod::Commu;
/// Spread the increments over a plausible working set.
const OBJECTS: u64 = 64;

fn mset(i: u64) -> MSet {
    MSet::new(
        EtId(i + 1),
        SiteId(i % SITES as u64),
        vec![ObjectOp::new(
            ObjectId(i % OBJECTS),
            Operation::Incr((i % 7) as i64 + 1),
        )],
    )
}

fn recover_full(path: &std::path::Path) -> (NodeCore, f64) {
    let t = Instant::now();
    let journal = ApplyJournal::open(path).expect("reopen journal");
    let (core, _) = NodeCore::recover(
        SiteState::new(METHOD, SITE),
        METHOD,
        SITE,
        SITES,
        None,
        0,
        journal.replay(),
    );
    (core, t.elapsed().as_secs_f64())
}

fn main() {
    let mut entries: u64 = 1_000_000;
    let mut tail: u64 = 10_000;
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--entries" => entries = args.next().and_then(|v| v.parse().ok()).expect("--entries N"),
            "--tail" => tail = args.next().and_then(|v| v.parse().ok()).expect("--tail N"),
            "--test" => {
                entries = 5_000;
                tail = 500;
            }
            "--json" => {
                json_path = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| "BENCH_ckpt.json".into()),
                ));
            }
            other => panic!("unknown arg {other}"),
        }
    }
    assert!(tail < entries, "--tail must be smaller than --entries");

    let dir = std::env::temp_dir().join(format!("esr-recovery-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let journal_path = dir.join("site-1.journal");

    // Build the journal: the write-ahead log a long-lived site would
    // hold after `entries` accepted updates and no checkpoints.
    eprintln!("journalling {entries} records...");
    let t = Instant::now();
    let mut journal = ApplyJournal::open(&journal_path).expect("open journal");
    for i in 0..entries {
        journal.record(&mset(i));
    }
    drop(journal);
    let build_secs = t.elapsed().as_secs_f64();
    let journal_bytes_before = std::fs::metadata(&journal_path).expect("stat").len();
    eprintln!(
        "journalled {entries} records in {build_secs:.2}s ({} MB)",
        journal_bytes_before / (1024 * 1024)
    );

    // Baseline: full replay from record zero.
    let (full_core, full_secs) = recover_full(&journal_path);
    eprintln!("full replay: {full_secs:.3}s");

    // Cut a checkpoint covering everything but the tail, from a core
    // that has seen exactly the covered prefix (ids are 0-based, so
    // the cut id is `entries - tail - 1`).
    let cut_id = entries - tail - 1;
    let journal = ApplyJournal::open(&journal_path).expect("reopen for cut");
    let prefix: Vec<MSet> = journal
        .replay_entries()
        .into_iter()
        .filter(|(id, _)| *id <= cut_id)
        .map(|(_, m)| m)
        .collect();
    let (mut prefix_core, _) = NodeCore::recover(
        SiteState::new(METHOD, SITE),
        METHOD,
        SITE,
        SITES,
        None,
        0,
        prefix,
    );
    let payload = prefix_core
        .step(NodeEvent::Checkpoint {
            through: Some(cut_id),
        })
        .into_iter()
        .find_map(|e| match e {
            Effect::Checkpoint(p) => Some(*p),
            _ => None,
        })
        .expect("checkpoint cut yields a payload");
    let image = encode_payload(&payload);
    let snapshot_bytes = image.len() as u64 + snapshot::SNAP_OVERHEAD as u64;
    snapshot::install(&dir, "site-1", 1, &image).expect("install snapshot");

    // Truncate: retire the covered prefix; compaction reclaims it.
    let mut journal = journal;
    let retired = journal.retire_through(cut_id);
    drop(journal);
    let journal_bytes_after = std::fs::metadata(&journal_path).expect("stat").len();
    eprintln!(
        "snapshot {} KB; retired {retired} records, journal {} MB -> {} KB",
        snapshot_bytes / 1024,
        journal_bytes_before / (1024 * 1024),
        journal_bytes_after / 1024
    );

    // Checkpointed boot: load + verify the snapshot, replay the tail.
    let t = Instant::now();
    let (_, raw) = snapshot::load_newest(&dir, "site-1")
        .expect("load snapshot")
        .expect("snapshot present");
    let restored_payload = decode_payload(&raw).expect("image decodes");
    let cut = restored_payload.covered_through.expect("cut id present");
    let journal = ApplyJournal::open(&journal_path).expect("reopen journal");
    let suffix: Vec<MSet> = journal
        .replay_entries()
        .into_iter()
        .filter(|(id, _)| *id > cut)
        .map(|(_, m)| m)
        .collect();
    let replayed = suffix.len() as u64;
    let (restored_core, _) =
        NodeCore::restore(METHOD, SITE, SITES, None, 0, restored_payload, suffix)
            .expect("method matches");
    let snap_secs = t.elapsed().as_secs_f64();
    eprintln!("snapshot boot: {snap_secs:.3}s ({replayed} suffix records)");

    // The whole point: both boots land on the same replica.
    assert_eq!(
        restored_core.state.snapshot(),
        full_core.state.snapshot(),
        "restored replica diverged from full replay"
    );
    assert_eq!(restored_core.journaled_count(), full_core.journaled_count());
    assert_eq!(restored_core.frontier(), full_core.frontier());
    assert_eq!(replayed, tail, "suffix must be exactly the uncovered tail");

    let speedup = full_secs / snap_secs;
    println!(
        "entries={entries} tail={tail} full={full_secs:.3}s snapshot={snap_secs:.3}s \
         speedup={speedup:.1}x journal {journal_bytes_before}B -> {journal_bytes_after}B"
    );

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"bench\": \"recovery_replay\",\n  \"method\": \"commu\",\n  \
             \"entries\": {entries},\n  \"tail\": {tail},\n  \
             \"journal_bytes_before\": {journal_bytes_before},\n  \
             \"journal_bytes_after\": {journal_bytes_after},\n  \
             \"snapshot_bytes\": {snapshot_bytes},\n  \"retired\": {retired},\n  \
             \"full_replay_secs\": {full_secs:.4},\n  \
             \"snapshot_boot_secs\": {snap_secs:.4},\n  \"speedup\": {speedup:.2}\n}}\n"
        );
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {}", path.display());
    }

    let _ = std::fs::remove_dir_all(&dir);
}
