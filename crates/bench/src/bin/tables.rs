//! Regenerates the paper's three tables from the running implementation.
//!
//! ```text
//! cargo run -p esr-bench --bin tables            # all tables
//! cargo run -p esr-bench --bin tables -- table2  # just one
//! ```
//!
//! * **Table 1** — method characteristics, derived from behavioural
//!   probes against the four replica control implementations;
//! * **Table 2** — the ORDUP ET lock compatibility table, printed from
//!   the protocol definition and *verified* cell-by-cell against the
//!   queueing lock manager;
//! * **Table 3** — the COMMU table, with its `Comm` cells additionally
//!   resolved against commuting and non-commuting operation pairs.

use esr_core::ids::{EtId, ObjectId};
use esr_core::lock::{Compat, LockManager, LockMode, LockOutcome, Protocol};
use esr_core::op::Operation;
use esr_core::value::Value;
use esr_workload::exp::table1;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "table1" => print_table1(),
        "table2" => print_table2(),
        "table3" => print_table3(),
        "all" => {
            print_table1();
            println!();
            print_table2();
            println!();
            print_table3();
        }
        other => {
            eprintln!("unknown table {other:?}; expected table1|table2|table3|all");
            std::process::exit(2);
        }
    }
}

fn print_table1() {
    let cols = table1::run();
    print!("{}", table1::render(&cols));
    println!("(all 16 cells verified by behavioural probes)");
}

/// An operation representative of each lock mode, for manager probes.
fn op_for(mode: LockMode, commutative: bool) -> Option<Operation> {
    match mode {
        LockMode::RU | LockMode::RQ => Some(Operation::Read),
        LockMode::WU => Some(if commutative {
            Operation::Incr(1)
        } else {
            Operation::Write(Value::Int(1))
        }),
    }
}

/// Verifies one (held, requested) cell against the real lock manager:
/// returns true when the manager's grant/queue decision matches the
/// table entry.
fn verify_cell(protocol: Protocol, held: LockMode, requested: LockMode) -> bool {
    let check = |commutative: bool, expect_grant: bool| {
        let mut m = LockManager::new(protocol);
        m.acquire(EtId(1), ObjectId(0), held, op_for(held, commutative))
            .expect("first lock grants");
        let out = m
            .acquire(EtId(2), ObjectId(0), requested, op_for(requested, commutative))
            .expect("no deadlock possible with two ETs and one object");
        (out == LockOutcome::Granted) == expect_grant
    };
    match protocol.entry(held, requested) {
        Compat::Ok => check(false, true),
        Compat::Conflict => check(false, false),
        Compat::WhenCommutative => {
            // Comm cells must grant for commuting ops. WU/WU non-commuting
            // must queue; RU/WU pairs involve a Read which never commutes
            // with a write, so they queue in both op choices.
            let grants_commuting = if held == LockMode::WU && requested == LockMode::WU {
                check(true, true)
            } else {
                check(true, false)
            };
            grants_commuting && check(false, false)
        }
    }
}

fn verify_protocol(protocol: Protocol) -> usize {
    let mut verified = 0;
    for held in LockMode::ALL {
        for requested in LockMode::ALL {
            assert!(
                verify_cell(protocol, held, requested),
                "{protocol}: lock manager disagrees with table cell ({held}, {requested})"
            );
            verified += 1;
        }
    }
    verified
}

fn print_table2() {
    println!("Table 2: 2PL Compatibility for ORDUP ETs (from the protocol definition)");
    println!();
    print!("{}", Protocol::Ordup.render_table());
    let n = verify_protocol(Protocol::Ordup);
    println!("({n} cells verified against the queueing lock manager)");
}

fn print_table3() {
    println!("Table 3: 2PL Compatibility for COMMU ETs (from the protocol definition)");
    println!();
    print!("{}", Protocol::Commu.render_table());
    let n = verify_protocol(Protocol::Commu);
    println!("({n} cells verified against the queueing lock manager;");
    println!(" Comm cells grant Inc/Inc and queue Write/Write)");
}
