//! Runs the full experiment suite (E4–E10) and prints each table.
//!
//! ```text
//! cargo run --release -p esr-bench --bin experiments          # all
//! cargo run --release -p esr-bench --bin experiments -- e7    # one
//! cargo run --release -p esr-bench --bin experiments -- quick # small params
//! ```
//!
//! Every table's claims are also asserted (`claim_holds`): the binary
//! exits non-zero if any measured result contradicts the paper's claim.

use esr_workload::exp::{
    e10_partition, e11_spatial, e4_epsilon, e5_bound, e6_convergence, e7_sync_async,
    e8_compensation, e9_vtnc,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let selected: Vec<&str> = args
        .iter()
        .map(|s| s.as_str())
        .filter(|a| *a != "quick")
        .collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);
    let mut failures = 0;

    if want("e4") {
        let p = if quick {
            e4_epsilon::E4Params::quick()
        } else {
            e4_epsilon::E4Params::full()
        };
        let rows = e4_epsilon::run(&p);
        println!("{}", e4_epsilon::render(&p, &rows));
        report("E4", e4_epsilon::claim_holds(&rows), &mut failures);
    }

    if want("e5") {
        let p = if quick {
            e5_bound::E5Params::quick()
        } else {
            e5_bound::E5Params::full()
        };
        let rows = e5_bound::run(&p);
        println!("{}", e5_bound::render(&p, &rows));
        report("E5", e5_bound::claim_holds(&rows), &mut failures);
    }

    if want("e6") {
        let p = if quick {
            e6_convergence::E6Params::quick()
        } else {
            e6_convergence::E6Params::full()
        };
        let rows = e6_convergence::run(&p);
        println!("{}", e6_convergence::render(&p, &rows));
        report("E6", e6_convergence::claim_holds(&rows), &mut failures);
    }

    if want("e7") {
        let p = if quick {
            e7_sync_async::E7Params::quick()
        } else {
            e7_sync_async::E7Params::full()
        };
        let lat = e7_sync_async::run_latency_sweep(&p);
        let size = e7_sync_async::run_size_sweep(&p);
        println!("{}", e7_sync_async::render(&p, &lat, &size));
        report("E7", e7_sync_async::claim_holds(&lat, &size), &mut failures);
    }

    if want("e8") {
        let p = if quick {
            e8_compensation::E8Params::quick()
        } else {
            e8_compensation::E8Params::full()
        };
        let rows = e8_compensation::run(&p);
        println!("{}", e8_compensation::render(&p, &rows));
        report("E8", e8_compensation::claim_holds(&rows), &mut failures);
    }

    if want("e9") {
        let p = if quick {
            e9_vtnc::E9Params::quick()
        } else {
            e9_vtnc::E9Params::full()
        };
        let rows = e9_vtnc::run(&p);
        println!("{}", e9_vtnc::render(&p, &rows));
        report("E9", e9_vtnc::claim_holds(&rows), &mut failures);
    }

    if want("e10") {
        let p = if quick {
            e10_partition::E10Params::quick()
        } else {
            e10_partition::E10Params::full()
        };
        let rows = e10_partition::run(&p);
        println!("{}", e10_partition::render(&p, &rows));
        report("E10", e10_partition::claim_holds(&rows), &mut failures);
    }

    if want("e11") {
        let p = if quick {
            e11_spatial::E11Params::quick()
        } else {
            e11_spatial::E11Params::full()
        };
        let rows = e11_spatial::run(&p);
        println!("{}", e11_spatial::render(&p, &rows));
        report("E11", e11_spatial::claim_holds(&rows), &mut failures);
    }

    if failures > 0 {
        eprintln!("{failures} experiment claim(s) FAILED");
        std::process::exit(1);
    }
}

fn report(name: &str, ok: bool, failures: &mut u32) {
    if ok {
        println!("[{name}] claim holds\n");
    } else {
        println!("[{name}] CLAIM VIOLATED\n");
        *failures += 1;
    }
}
