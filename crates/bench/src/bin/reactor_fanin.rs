//! Client fan-in against one event-driven `esrd`.
//!
//! Forks a single-site daemon into a child process and holds N
//! concurrent `RpcClient` connections open against it, at increasing
//! tiers (1k → 10k by default). Every client completes a submit round
//! (one MSet accepted and applied) and a status round while *all*
//! connections stay open, so the daemon really is multiplexing N live
//! sockets, not serving a churn of short-lived ones. (A separate
//! process for the daemon keeps each side under the per-process fd
//! limit at the 10k tier, and makes its thread/RSS numbers its own.)
//!
//! What the tiers demonstrate: with the poll-driven reactor the daemon
//! runs ONE I/O thread regardless of fan-in — its process thread count
//! stays flat from 1k to 10k clients and memory grows only by the
//! per-connection buffers. A thread-per-connection daemon would need
//! 10k stacks and die well before the top tier. The JSON also records
//! the `esr_reactor_connections` gauge scraped over the wire, proving
//! the reactor sees every connection.
//!
//! Usage: `reactor_fanin [--clients N] [--test] [--json [PATH]]`
//!   --clients N   run a single tier of N clients
//!   --test        single small tier (256), for CI smoke
//!   --json PATH   output path (default BENCH_reactor.json in cwd)

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use esr_core::ids::{EtId, ObjectId, SiteId};
use esr_core::op::{ObjectOp, Operation};
use esr_net::rpc::sys::raise_nofile_limit;
use esr_replica::mset::MSet;
use esr_runtime::daemon::resolve_addr;
use esr_runtime::{Daemon, DaemonConfig, RpcClient, RtMethod};

/// Worker threads driving the blocking clients (the box has few cores;
/// each worker sequentially services many open connections).
const WORKERS: usize = 8;

struct TierResult {
    clients: usize,
    connect_secs: f64,
    submit_secs: f64,
    submit_rps: f64,
    status_secs: f64,
    reactor_connections: u64,
    daemon_threads: u64,
    daemon_rss_kb: u64,
}

/// Reads a numeric field (`VmRSS`, `Threads`) from `/proc/<pid>/status`.
fn proc_status_field(pid: u32, field: &str) -> u64 {
    std::fs::read_to_string(format!("/proc/{pid}/status"))
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix(field).and_then(|rest| {
                    rest.trim_start_matches(':')
                        .split_whitespace()
                        .next()
                        .and_then(|v| v.parse().ok())
                })
            })
        })
        .unwrap_or(0)
}

/// Pulls one gauge value out of a Prometheus text scrape.
fn scrape_gauge(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Connects with retries: a connect burst larger than the listener's
/// accept backlog gets SYNs dropped until the reactor drains the queue,
/// so transient timeouts/refusals are expected and retried.
fn connect_patiently(addr: SocketAddr) -> RpcClient {
    let mut last = None;
    for _ in 0..50 {
        match RpcClient::connect(addr) {
            Ok(c) => return c,
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    panic!("connect client: {:?}", last);
}

/// Fans `per_client` work across [`WORKERS`] threads over the shared
/// client pool; each call receives `(client, global_index)`.
fn fan_out(clients: &[Mutex<RpcClient>], per_client: impl Fn(&mut RpcClient, usize) + Sync) {
    let cursor = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..WORKERS {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= clients.len() {
                    return;
                }
                let mut c = clients[i].lock().expect("client lock");
                per_client(&mut c, i);
            });
        }
    });
}

fn run_tier(addr: SocketAddr, daemon_pid: u32, n: usize, et_base: u64) -> TierResult {
    // Connect phase: open all N connections and keep them open.
    let started = Instant::now();
    let pool = Mutex::new(Vec::with_capacity(n));
    let cursor = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..WORKERS {
            s.spawn(|| loop {
                if cursor.fetch_add(1, Ordering::Relaxed) as usize >= n {
                    return;
                }
                let c = connect_patiently(addr);
                pool.lock().expect("pool lock").push(Mutex::new(c));
            });
        }
    });
    let clients = pool.into_inner().expect("pool");
    let connect_secs = started.elapsed().as_secs_f64();

    // Submit round: every connection completes one accepted update.
    let started = Instant::now();
    fan_out(&clients, |c, i| {
        let et = EtId(et_base + i as u64);
        let mset = MSet::new(
            et,
            SiteId(0),
            vec![ObjectOp::new(ObjectId(i as u64 % 1024), Operation::Incr(1))],
        );
        let acked = c.submit(mset).expect("submit");
        assert_eq!(acked, et);
    });
    let submit_secs = started.elapsed().as_secs_f64();

    // Status round: a second full RPC sweep over the same open sockets.
    let started = Instant::now();
    fan_out(&clients, |c, _| {
        c.status().expect("status");
    });
    let status_secs = started.elapsed().as_secs_f64();

    // Daemon footprint with every connection still open.
    let metrics = clients[0]
        .lock()
        .expect("client lock")
        .metrics()
        .expect("metrics scrape");
    TierResult {
        clients: n,
        connect_secs,
        submit_secs,
        submit_rps: n as f64 / submit_secs.max(1e-9),
        status_secs,
        reactor_connections: scrape_gauge(&metrics, "esr_reactor_connections"),
        daemon_threads: proc_status_field(daemon_pid, "Threads"),
        daemon_rss_kb: proc_status_field(daemon_pid, "VmRSS"),
    }
}

/// Child mode: host the daemon until the parent kills us.
fn serve(dir: PathBuf) -> ! {
    let _ = raise_nofile_limit(20_000);
    let _daemon = Daemon::start(DaemonConfig {
        site: SiteId(0),
        sites: 1,
        method: RtMethod::Commu,
        dir,
        ckpt_bytes: None,
    })
    .expect("start daemon");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn main() {
    let mut tiers: Vec<usize> = vec![1024, 4096, 10_000];
    let mut json_path = PathBuf::from("BENCH_reactor.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--serve" => {
                let dir = args.next().expect("--serve DIR");
                serve(PathBuf::from(dir));
            }
            "--test" | "-t" => tiers = vec![256],
            "--clients" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients N");
                tiers = vec![n];
            }
            "--json" => {
                if let Some(p) = args.next() {
                    json_path = PathBuf::from(p);
                }
            }
            other => eprintln!("ignoring unknown arg {other:?}"),
        }
    }

    let want = tiers.iter().max().copied().unwrap_or(0) as u64 + 512;
    match raise_nofile_limit(want) {
        Ok(limit) if limit < want => {
            eprintln!("warning: fd limit {limit} < {want}; large tiers may fail");
        }
        Err(e) => eprintln!("warning: could not raise fd limit: {e}"),
        _ => {}
    }

    let dir = std::env::temp_dir().join(format!("esr-fanin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create cluster dir");
    let exe = std::env::current_exe().expect("current exe");
    let mut child = std::process::Command::new(exe)
        .arg("--serve")
        .arg(&dir)
        .spawn()
        .expect("spawn daemon process");

    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Some(addr) = resolve_addr(&dir, SiteId(0)) {
            break addr;
        }
        assert!(Instant::now() < deadline, "daemon did not publish an address");
        std::thread::sleep(Duration::from_millis(20));
    };
    let baseline_threads = proc_status_field(child.id(), "Threads");

    let mut results = Vec::new();
    for (t, &n) in tiers.iter().enumerate() {
        let r = run_tier(addr, child.id(), n, (t as u64 + 1) * 1_000_000);
        println!(
            "tier {:>6} clients: connect {:.2}s, submit {:.2}s ({:.0} rps), \
             status {:.2}s, gauge {}, daemon threads {}, daemon rss {} KB",
            r.clients,
            r.connect_secs,
            r.submit_secs,
            r.submit_rps,
            r.status_secs,
            r.reactor_connections,
            r.daemon_threads,
            r.daemon_rss_kb,
        );
        results.push(r);
    }

    let mut out = String::from("{\n  \"bench\": \"reactor_fanin\",\n");
    out.push_str(&format!(
        "  \"daemon_baseline_threads\": {baseline_threads},\n"
    ));
    out.push_str(&format!("  \"workers\": {WORKERS},\n  \"tiers\": [\n"));
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"connect_secs\": {:.3}, \"submit_secs\": {:.3}, \
             \"submit_rps\": {:.0}, \"status_secs\": {:.3}, \"reactor_connections\": {}, \
             \"daemon_threads\": {}, \"daemon_rss_kb\": {}}}{}\n",
            r.clients,
            r.connect_secs,
            r.submit_secs,
            r.submit_rps,
            r.status_secs,
            r.reactor_connections,
            r.daemon_threads,
            r.daemon_rss_kb,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&json_path, out).expect("write json");
    println!("wrote {}", json_path.display());

    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
